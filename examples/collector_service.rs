//! Cluster Resource Collector demo (§III-F): spin up the collector, join a
//! heterogeneous set of simulated servers over real TCP, stream heartbeats,
//! and feed live snapshots into a prediction.
//!
//! ```sh
//! cargo run --release -p predictddl --example collector_service
//! ```

use pddl_cluster::{CollectorClient, CollectorServer, ServerClass, ServerSpec};
use pddl_ddlsim::{SimConfig, Simulator, Workload};

fn main() {
    println!("=== Cluster Resource Collector demo ===");
    let server = CollectorServer::bind("127.0.0.1:0", 4).expect("bind collector");
    println!("collector listening on {}\n", server.addr());

    // Join a heterogeneous cluster: 3 GPU nodes, 2 fast CPU nodes, 1 slow.
    let mut clients = Vec::new();
    let joins = [
        ("gpu-0", ServerClass::GpuP100),
        ("gpu-1", ServerClass::GpuP100),
        ("gpu-2", ServerClass::GpuP100),
        ("cpu-fast-0", ServerClass::CpuE5_2630),
        ("cpu-fast-1", ServerClass::CpuE5_2630),
        ("cpu-slow-0", ServerClass::CpuE5_2650),
    ];
    for (host, class) in joins {
        let spec = ServerSpec::preset(class, host);
        let client = CollectorClient::register(server.addr(), spec).expect("register");
        println!("  {host} joined ({class:?})");
        clients.push((host, client));
    }

    // Heartbeats: put partial load on the CPU nodes (Eq. 1–2 territory).
    for (host, client) in &mut clients {
        let util = match *host {
            "cpu-fast-0" => 0.50,
            "cpu-slow-0" => 0.25,
            _ => 0.0,
        };
        client.heartbeat(util, 0).expect("heartbeat");
    }

    let snap = server.snapshot();
    println!("\nsnapshot: {} servers registered", snap.num_servers());
    println!("  total training FLOPS : {:.2e}", snap.total_training_flops());
    println!("  straggler FLOPS      : {:.2e}", snap.min_training_flops());
    println!("  available RAM        : {:.1} GiB", snap.total_available_ram() / (1u64 << 30) as f64);
    println!("  feature vector       : {:?}", snap.feature_vector().map(|v| (v * 100.0).round() / 100.0));

    // Price a workload on the live heterogeneous snapshot.
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::new("resnet18", "cifar10", 128, 10);
    match sim.expected_time(&w, &snap) {
        Ok(t) => println!("\nsimulated training time of {} on this live cluster: {t:.1}s", w.model),
        Err(e) => println!("\nsimulation failed: {e}"),
    }

    // One node leaves; snapshot shrinks.
    let (host, client) = clients.pop().unwrap();
    client.leave().expect("leave");
    println!("\n{host} left the cluster");
    println!("snapshot now has {} servers", server.snapshot().num_servers());
}
