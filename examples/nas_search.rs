//! Neural-architecture-search acceleration — the paper's second motivating
//! application (§III-A: performance prediction "can be extended for neural
//! architecture search algorithms").
//!
//! Here PredictDDL prices *novel* architectures (random DARTS-style cells,
//! never seen by the predictor) so a NAS loop can discard candidates whose
//! training would blow the time budget — without running any of them.
//!
//! ```sh
//! cargo run --release -p predictddl --example nas_search
//! ```

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, TraceConfig};
use pddl_ghn::train::TrainConfig;
use pddl_ghn::SynthGenerator;
use pddl_zoo::CIFAR10;
use predictddl::{ModelRef, OfflineTrainer, PredictionRequest};

fn main() {
    let mut trainer = OfflineTrainer {
        ghn_train: TrainConfig { num_graphs: 80, epochs: 20, ..TrainConfig::default() },
        trace: TraceConfig {
            models: [
                "resnet18", "resnet50", "vgg11", "vgg16", "alexnet", "squeezenet1_1",
                "mobilenet_v2", "efficientnet_b0", "googlenet", "densenet121",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            dataset_clusters: vec![("cifar10".into(), ServerClass::GpuP100)],
            server_counts: (1..=16).collect(),
            batch_sizes: vec![128],
            epochs: 10,
            sim: SimConfig::default(),
        },
        ..OfflineTrainer::default()
    };
    trainer.seed = 4242;
    println!("=== NAS candidate screening with PredictDDL ===");
    println!("training the predictor once on the zoo trace ...\n");
    let system = trainer.train_full();

    // Sample NAS candidates from the DARTS-style space and price them.
    let mut gen = SynthGenerator::new(CIFAR10, 99);
    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 8);
    let budget_secs = 60.0;
    let n_candidates = 12;

    println!(
        "{:<22} {:>7} {:>10} {:>12} {:>14} {:>8}",
        "candidate", "nodes", "MFLOPs", "params(K)", "pred. time", "verdict"
    );
    let mut kept = 0;
    for _ in 0..n_candidates {
        let graph = gen.sample();
        let req = PredictionRequest {
            model: ModelRef::Graph(graph.clone()),
            dataset: "cifar10".into(),
            batch_size: 128,
            epochs: 10,
            cluster: cluster.clone(),
        };
        let pred = system.predict(&req).expect("prediction");
        let within = pred.seconds <= budget_secs;
        if within {
            kept += 1;
        }
        println!(
            "{:<22} {:>7} {:>10.1} {:>12.1} {:>12.1}s {:>8}",
            graph.name,
            graph.num_nodes(),
            graph.flops_per_example() / 1e6,
            graph.num_params() as f64 / 1e3,
            pred.seconds,
            if within { "keep" } else { "prune" }
        );
        if let Some((nearest, sim)) = pred.nearest_architecture {
            println!("{:<22}   ↳ closest known architecture: {nearest} (cos {sim:.3})", "");
        }
    }
    println!(
        "\n{kept}/{n_candidates} candidates fit the {budget_secs:.0}s training budget on {} servers.",
        cluster.num_servers()
    );
    println!("Each verdict cost one GHN embedding + one regression — no training runs.");
}
