//! Embedding atlas — reproduces the Fig. 5 intuition: GHN embeddings place
//! similar architectures close together under cosine similarity.
//!
//! Prints the nearest neighbors of each zoo family member and a compact
//! similarity matrix across families.
//!
//! ```sh
//! cargo run --release -p predictddl --example embedding_atlas
//! ```

use pddl_ghn::train::TrainConfig;
use pddl_ghn::{cosine_similarity, EmbeddingSet, Ghn, GhnConfig, GhnTrainer, SynthGenerator};
use pddl_tensor::Rng;
use pddl_zoo::{build_model, CIFAR10};

fn main() {
    println!("=== GHN embedding atlas (Fig. 5 mechanism) ===");
    println!("meta-training a GHN on synthetic DARTS-style architectures ...\n");
    let mut rng = Rng::new(11);
    let mut ghn = Ghn::new(GhnConfig::default(), &mut rng);
    let mut gen = SynthGenerator::new(CIFAR10, 31);
    let report = GhnTrainer::new(TrainConfig { num_graphs: 96, epochs: 25, ..Default::default() })
        .train(&mut ghn, &mut gen);
    println!(
        "meta-training loss: {:.4} -> {:.4} over {} epochs\n",
        report.initial_loss,
        report.final_loss,
        report.epoch_losses.len()
    );

    let models = [
        "resnet18",
        "resnet34",
        "resnet50",
        "vgg11",
        "vgg16",
        "vgg19",
        "squeezenet1_0",
        "squeezenet1_1",
        "mobilenet_v2",
        "mobilenet_v3_small",
        "densenet121",
        "densenet169",
        "efficientnet_b0",
        "alexnet",
    ];
    let mut atlas = EmbeddingSet::new();
    let mut vecs = Vec::new();
    for m in models {
        let g = build_model(m, &CIFAR10).expect("zoo model");
        let e = ghn.embed_graph(&g);
        atlas.insert(m, e.clone());
        vecs.push(e);
    }

    println!("nearest neighbor of each architecture (excluding itself):");
    for (i, m) in models.iter().enumerate() {
        let mut best: Option<(&str, f32)> = None;
        for (j, other) in models.iter().enumerate() {
            if i == j {
                continue;
            }
            let s = cosine_similarity(&vecs[i], &vecs[j]);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((other, s));
            }
        }
        let (n, s) = best.unwrap();
        println!("  {m:<20} -> {n:<20} (cos {s:.3})");
    }

    println!("\nfamily-block similarity matrix (mean cosine within/between):");
    let families: [(&str, &[usize]); 4] = [
        ("resnet", &[0, 1, 2]),
        ("vgg", &[3, 4, 5]),
        ("squeezenet", &[6, 7]),
        ("mobilenet", &[8, 9]),
    ];
    print!("{:<12}", "");
    for (name, _) in &families {
        print!("{name:>12}");
    }
    println!();
    for (na, ia) in &families {
        print!("{na:<12}");
        for (_, ib) in &families {
            let mut s = 0.0f32;
            let mut cnt = 0;
            for &i in *ia {
                for &j in *ib {
                    if i != j {
                        s += cosine_similarity(&vecs[i], &vecs[j]);
                        cnt += 1;
                    }
                }
            }
            print!("{:>12.3}", s / cnt as f32);
        }
        println!();
    }
    println!("\nDiagonal (within-family) similarities should dominate the rows.");
}
