//! Quickstart: train PredictDDL once, then predict training times for
//! several architectures on several cluster sizes — no retraining between
//! workloads.
//!
//! ```sh
//! cargo run --release -p predictddl --example quickstart
//! ```

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, Simulator, TraceConfig, Workload};
use pddl_ghn::train::TrainConfig;
use pddl_ghn::GhnConfig;
use predictddl::OfflineTrainer;

fn main() {
    // A moderate offline-training configuration: CIFAR-10 trace over eight
    // models and 1–16 GPU servers, a 32-d GHN.
    let mut trainer = OfflineTrainer {
        ghn_config: GhnConfig::default(),
        ghn_train: TrainConfig { num_graphs: 96, epochs: 25, ..TrainConfig::default() },
        trace: TraceConfig {
            models: [
                "resnet18",
                "resnet50",
                "vgg16",
                "alexnet",
                "squeezenet1_1",
                "mobilenet_v3_small",
                "efficientnet_b0",
                "densenet121",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            dataset_clusters: vec![("cifar10".into(), ServerClass::GpuP100)],
            server_counts: (1..=16).collect(),
            batch_sizes: vec![128],
            epochs: 10,
            sim: SimConfig::default(),
        },
        ..OfflineTrainer::default()
    };
    trainer.seed = 2024;

    println!("=== PredictDDL quickstart ===");
    println!("offline training (GHN + polynomial regressor) ...");
    let system = trainer.train_full();
    println!(
        "  done: GHN {:.1}s, embeddings {:.1}s, regressor fit {:.1}s\n",
        system.train_cost.ghn_secs, system.train_cost.embed_secs, system.train_cost.fit_secs
    );

    // Reusable predictions — including resnet34, which was NOT in the trace.
    let sim = Simulator::new(SimConfig::default());
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>8}",
        "model", "servers", "predicted", "simulated", "ratio"
    );
    for model in ["resnet18", "resnet34", "vgg16", "squeezenet1_1"] {
        for n in [2usize, 8] {
            let w = Workload::new(model, "cifar10", 128, 10);
            let cluster = ClusterState::homogeneous(ServerClass::GpuP100, n);
            let pred = system.predict_workload(&w, &cluster).expect("prediction");
            let actual = sim.expected_time(&w, &cluster).expect("simulation");
            println!(
                "{:<22} {:>8} {:>10.1}s {:>10.1}s {:>8.2}",
                model,
                n,
                pred.seconds,
                actual,
                pred.seconds / actual
            );
        }
    }
    println!("\n(resnet34 was absent from the training trace — the GHN embedding");
    println!(" generalizes across architectures without retraining.)");
}
