//! Cluster-scheduler integration (the paper's §VI future work): drive a
//! discrete-event job-queue simulation where the allocation policy sees only
//! PredictDDL's predictions, and compare against a prediction-free baseline
//! and a perfect-information oracle.
//!
//! ```sh
//! cargo run --release -p predictddl --example scheduler_sim
//! ```

use pddl_cluster::ServerClass;
use pddl_ddlsim::{SimConfig, Simulator, TraceConfig, Workload};
use pddl_ghn::train::TrainConfig;
use pddl_sched::{
    DeadlineAware, FcfsFixed, NaiveEstimator, OracleEstimator, PredictDdlEstimator,
    QueueSimulator, RuntimeEstimator, SchedJob,
};
use pddl_sched::policy::Policy;
use predictddl::OfflineTrainer;

fn queue() -> Vec<SchedJob> {
    let jobs = [
        ("vgg16", 0.0, 120.0),
        ("squeezenet1_1", 0.0, 40.0),
        ("resnet50", 10.0, 130.0),
        ("densenet161", 10.0, 160.0),
        ("efficientnet_b0", 20.0, 80.0),
        ("alexnet", 20.0, 110.0),
        ("mobilenet_v3_large", 30.0, 90.0),
        ("resnext50_32x4d", 30.0, 170.0),
    ];
    jobs.iter()
        .enumerate()
        .map(|(i, &(model, submit, deadline))| {
            SchedJob::new(i, Workload::new(model, "cifar10", 128, 2), submit)
                .with_deadline(deadline)
                .with_server_range(1, 8)
        })
        .collect()
}

fn main() {
    println!("=== prediction-driven scheduling (PredictDDL → SLURM-style queue) ===\n");
    let mut trainer = OfflineTrainer {
        ghn_train: TrainConfig { num_graphs: 80, epochs: 20, ..TrainConfig::default() },
        trace: TraceConfig {
            dataset_clusters: vec![("cifar10".into(), ServerClass::GpuP100)],
            ..TraceConfig::default()
        },
        ..OfflineTrainer::default()
    };
    trainer.seed = 0x5C4ED;
    println!("training PredictDDL once (minutes) ...\n");
    let system = trainer.train_full();

    let sim = Simulator::new(SimConfig::default());
    let cluster = QueueSimulator::new(12, ServerClass::GpuP100, &sim);
    let jobs = queue();

    let pddl = PredictDdlEstimator { system: &system, class: ServerClass::GpuP100 };
    let oracle = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
    let naive = NaiveEstimator { assumed_secs: 300.0 };

    println!(
        "{:<34} {:>10} {:>11} {:>12} {:>14}",
        "policy + estimator", "makespan", "mean wait", "deadlines", "server-secs"
    );
    let runs: Vec<(&str, &dyn Policy, &dyn RuntimeEstimator)> = vec![
        ("fcfs-fixed(8) + none", &FcfsFixed { servers_per_job: 8 }, &naive),
        ("deadline-aware + naive", &DeadlineAware, &naive),
        ("deadline-aware + PredictDDL", &DeadlineAware, &pddl),
        ("deadline-aware + oracle", &DeadlineAware, &oracle),
    ];
    for (label, policy, est) in runs {
        let trace = cluster.run(&jobs, policy, est);
        let m = &trace.metrics;
        println!(
            "{label:<34} {:>9.0}s {:>10.1}s {:>9}/{:<2} {:>13.0}",
            m.makespan, m.mean_wait, m.deadlines_met, m.deadlines_total, m.server_seconds
        );
    }
    println!("\nThe PredictDDL-driven policy should track the oracle closely —");
    println!("right-sizing each job from one cheap prediction per candidate");
    println!("width — while the naive estimator over- or under-allocates.");
}
