//! Deadline-aware resource allocation — the paper's motivating use case
//! ("allocating the required cluster resources for completing critical
//! model training tasks before a deadline", §Abstract).
//!
//! Given a queue of training jobs with deadlines, use PredictDDL to find
//! the smallest cluster that meets each deadline, instead of over-allocating.
//!
//! ```sh
//! cargo run --release -p predictddl --example deadline_scheduler
//! ```

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, Simulator, TraceConfig, Workload};
use pddl_ghn::train::TrainConfig;
use predictddl::{OfflineTrainer, PredictDdl};

struct Job {
    workload: Workload,
    deadline_secs: f64,
}

/// Smallest GPU-server count whose predicted completion beats the deadline,
/// searched over the available pool.
fn smallest_feasible(system: &PredictDdl, job: &Job, pool: usize) -> Option<(usize, f64)> {
    for n in 1..=pool {
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, n);
        if let Ok(pred) = system.predict_workload(&job.workload, &cluster) {
            if pred.seconds <= job.deadline_secs {
                return Some((n, pred.seconds));
            }
        }
    }
    None
}

fn main() {
    let mut trainer = OfflineTrainer {
        ghn_train: TrainConfig { num_graphs: 80, epochs: 20, ..TrainConfig::default() },
        trace: TraceConfig {
            models: [
                "resnet18", "resnet50", "vgg16", "alexnet", "squeezenet1_1",
                "mobilenet_v3_large", "efficientnet_b0", "densenet121",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            dataset_clusters: vec![("cifar10".into(), ServerClass::GpuP100)],
            server_counts: (1..=20).collect(),
            batch_sizes: vec![128],
            epochs: 10,
            sim: SimConfig::default(),
        },
        ..OfflineTrainer::default()
    };
    trainer.seed = 77;
    println!("=== deadline-aware scheduler (PredictDDL-driven) ===");
    println!("training the predictor once ...\n");
    let system = trainer.train_full();

    let queue = vec![
        Job { workload: Workload::new("vgg16", "cifar10", 128, 10), deadline_secs: 120.0 },
        Job { workload: Workload::new("resnet50", "cifar10", 128, 10), deadline_secs: 90.0 },
        Job { workload: Workload::new("squeezenet1_1", "cifar10", 128, 10), deadline_secs: 30.0 },
        Job { workload: Workload::new("densenet121", "cifar10", 128, 10), deadline_secs: 45.0 },
        Job { workload: Workload::new("efficientnet_b0", "cifar10", 128, 10), deadline_secs: 15.0 },
    ];
    let pool = 20;
    let sim = Simulator::new(SimConfig::default());

    println!(
        "{:<20} {:>10} {:>9} {:>12} {:>12} {:>8}",
        "job", "deadline", "servers", "predicted", "actual", "met?"
    );
    let mut allocated = 0usize;
    for job in &queue {
        match smallest_feasible(&system, job, pool) {
            Some((n, predicted)) => {
                let cluster = ClusterState::homogeneous(ServerClass::GpuP100, n);
                let actual = sim.expected_time(&job.workload, &cluster).unwrap();
                allocated += n;
                println!(
                    "{:<20} {:>9.0}s {:>9} {:>10.1}s {:>10.1}s {:>8}",
                    job.workload.model,
                    job.deadline_secs,
                    n,
                    predicted,
                    actual,
                    if actual <= job.deadline_secs * 1.1 { "yes" } else { "MISS" }
                );
            }
            None => println!(
                "{:<20} {:>9.0}s {:>9}",
                job.workload.model, job.deadline_secs, "infeasible"
            ),
        }
    }
    println!("\ntotal servers allocated across queue: {allocated} (pool {pool} per job)");
    println!("A naive scheduler would give every job the full pool; PredictDDL");
    println!("right-sizes each allocation from one prediction per candidate size.");
}
