//! The original GHN capability, end-to-end: predicting *parameters* for
//! unseen architectures (Zhang et al. 2019 / Knyazev et al. 2021 — the
//! "last module" PredictDDL skips, implemented in `pddl_ghn::hypernet`).
//!
//! Meta-trains the hypernetwork on MLP classifiers of widths {2,4,6,8} over
//! a fixed synthetic 2-D task, then compares predicted weights against
//! random initialization on *unseen* widths — the GHN-2 headline result in
//! miniature.
//!
//! ```sh
//! cargo run --release -p predictddl --example weight_prediction
//! ```

use pddl_ghn::hypernet::{task_dataset, TargetArch, WeightHyperNet};
use pddl_ghn::GhnConfig;
use pddl_tensor::Rng;

fn main() {
    println!("=== GHN weight prediction for unseen architectures ===\n");
    let mut rng = Rng::new(42);
    let mut hyper = WeightHyperNet::new(GhnConfig::tiny(), &mut rng);

    let train_widths = [2usize, 4, 6, 8];
    println!("meta-training on widths {train_widths:?} (1,500 steps) ...");
    let losses = hyper.meta_train(&train_widths, 1500, 5e-3, 11);
    println!(
        "  task loss: {:.4} -> {:.4}\n",
        losses[..50].iter().sum::<f32>() / 50.0,
        losses[losses.len() - 50..].iter().sum::<f32>() / 50.0
    );

    let (x, y) = task_dataset(96, 11);
    println!(
        "{:<18} {:>16} {:>16} {:>10}",
        "architecture", "predicted loss", "random init", "factor"
    );
    for h in [3usize, 5, 7, 9, 10] {
        let arch = TargetArch { hidden: h };
        let predicted = hyper.task_loss(&arch, &x, &y);
        let random: f32 = (0..8)
            .map(|s| WeightHyperNet::random_init_loss(&arch, &x, &y, 100 + s))
            .sum::<f32>()
            / 8.0;
        let seen = if train_widths.contains(&h) { "" } else { " (unseen)" };
        println!(
            "mlp2-{h:<2}-2{seen:<9} {predicted:>16.4} {random:>16.4} {:>9.1}×",
            random / predicted
        );
    }
    println!("\nPredicted parameters for architectures the GHN never saw beat");
    println!("random initialization without a single gradient step on the");
    println!("target network (capacity-limited tiny widths excepted) — the");
    println!("property PredictDDL reuses as a complexity signal rather than");
    println!("for initialization.");
}
