#!/usr/bin/env bash
# Offline compile-check harness.
#
# In containers without network access or a cargo registry cache, the
# workspace cannot resolve its crates.io dependencies, so `cargo check`
# fails before compiling anything. This script temporarily patches the
# external deps to the type-check stubs in stubs/ (see stubs/README.md),
# runs the requested cargo command, and restores Cargo.toml.
#
# Usage:
#   scripts/offline_check.sh check            # cargo check, lib/bin/example targets
#   scripts/offline_check.sh clippy           # cargo clippy -D warnings on the same
#   scripts/offline_check.sh doc              # cargo doc with -D warnings (CI doc gate)
#   scripts/offline_check.sh test-telemetry   # run pddl-telemetry's real tests
#   scripts/offline_check.sh test-faults      # run pddl-faults' real tests
#   scripts/offline_check.sh test-par         # run pddl-par's real tests (queue, pool)
#   scripts/offline_check.sh test-golden      # run the golden-trace fixture test
#   scripts/offline_check.sh test-bench       # run pddl-bench's tests (report schema)
#   scripts/offline_check.sh test-tensor      # run the GEMM equivalence/determinism suite
#   scripts/offline_check.sh test-simd        # tensor suite twice: native kernels + forced scalar
#   scripts/offline_check.sh test-trace       # trace unit tests + type-check the trace tier
#   scripts/offline_check.sh test-shard       # router unit tests + type-check the shard tier
#   scripts/offline_check.sh metrics-expo     # exposition + golden trace/metrics shape tests
#   scripts/offline_check.sh bench-serve      # run the inproc serving benchmark
#   scripts/offline_check.sh bench-shard      # run the in-proc sharded-fleet benchmark
#   scripts/offline_check.sh bench-tensor     # run the GEMM benchmark (BENCH_tensor.json)
#   scripts/offline_check.sh gate-unwrap      # no-unwrap grep gate on the wire parser
#   scripts/offline_check.sh gate-protocol-docs # every WIRE_OPS op documented in PROTOCOL.md
#   scripts/offline_check.sh <any cargo args> # e.g. "check -p predictddl --tests"
#
# test-telemetry / test-faults / test-par / test-golden / test-bench /
# test-tensor actually *run*: those paths use no external crate at runtime (pure std
# + the in-tree JSON parser). bench-serve runs `pddl-loadgen --transport
# inproc` — the mode that produces the committed BENCH_serve.json
# baseline (the tcp transport needs serde at runtime and stays in CI).
# Everything else is type-check only — the serde_json stub errors at
# runtime, so networked CI remains the place where the full wire-layer
# suites (soak, load, wire_fuzz, controller_tcp, ...) execute.
#
# Proptest-based test targets are excluded from the aggregate targets
# (the proptest stub is an empty crate).

set -euo pipefail
cd "$(dirname "$0")/.."

# The peer-facing wire parser must stay panic-free: any unwrap() outside
# its #[cfg(test)] module fails this gate (and the same gate in CI).
gate_unwrap() {
  local file=crates/cluster/src/protocol.rs
  if awk '/#\[cfg\(test\)\]/{exit} {print}' "$file" | grep -n 'unwrap()'; then
    echo "error: unwrap() in non-test code of $file — return WireError instead" >&2
    return 1
  fi
  echo "gate-unwrap: $file clean"
}

# Doc-coverage gate: every op named in the controller's WIRE_OPS registry
# must have a `### `op`` section in PROTOCOL.md, so the wire reference
# cannot silently fall behind the code.
gate_protocol_docs() {
  local src=crates/core/src/protocol.rs doc=PROTOCOL.md missing=0
  local ops
  ops=$(awk '/pub const WIRE_OPS/,/\];/' "$src" | grep -o '"[a-z_]*"' | tr -d '"')
  if [ -z "$ops" ]; then
    echo "error: could not extract WIRE_OPS from $src" >&2
    return 1
  fi
  for op in $ops; do
    if ! grep -q "^### \`$op\`" "$doc"; then
      echo "error: wire op '$op' has no '### \`$op\`' section in $doc" >&2
      missing=1
    fi
  done
  [ "$missing" -eq 0 ] || return 1
  echo "gate-protocol-docs: $doc covers $(echo "$ops" | wc -w) wire ops"
}

if [ "${1:-}" = "gate-unwrap" ]; then
  gate_unwrap
  exit 0
fi

if [ "${1:-}" = "gate-protocol-docs" ]; then
  gate_protocol_docs
  exit 0
fi

if grep -q '^\[patch.crates-io\]' Cargo.toml; then
  echo "Cargo.toml already contains a patch section; refusing" >&2
  exit 1
fi

cp Cargo.toml Cargo.toml.offline-check.bak
cleanup() {
  mv Cargo.toml.offline-check.bak Cargo.toml
  rm -f Cargo.lock
}
trap cleanup EXIT

cat >> Cargo.toml <<'EOF'

[patch.crates-io]
serde = { path = "stubs/serde" }
serde_json = { path = "stubs/serde_json" }
parking_lot = { path = "stubs/parking_lot" }
proptest = { path = "stubs/proptest" }
criterion = { path = "stubs/criterion" }
EOF

export CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-target/offline-check}"

# Integration/unit test targets that do not use proptest and therefore
# type-check against the stubs.
NON_PROPTEST_TESTS=(
  --test controller_tcp
  --test end_to_end
  --test reusability
  --test ernest_pipeline
  --test live_cluster
  --test dataset_extension
  --test wire_fuzz
  --test soak
  --test load
  --test golden_traces
  --test trace
  --test shard
  --test registry
  --test sched
)

case "${1:-check}" in
  check)
    gate_unwrap
    gate_protocol_docs
    cargo check --workspace --offline --lib --bins --examples --benches
    cargo check -p predictddl --offline "${NON_PROPTEST_TESTS[@]}"
    cargo check -p pddl-bench --offline --tests
    cargo check -p pddl-tensor --offline --test gemm_equivalence
    ;;
  clippy)
    cargo clippy --workspace --offline --lib --bins --examples --benches -- -D warnings
    cargo clippy -p predictddl --offline "${NON_PROPTEST_TESTS[@]}" -- -D warnings
    cargo clippy -p pddl-bench --offline --tests -- -D warnings
    cargo clippy -p pddl-tensor --offline --test gemm_equivalence -- -D warnings
    ;;
  doc)
    # Same gate as CI: rustdoc warnings (missing docs, broken intra-doc
    # links) fail the build. Stub deps keep their own docs out of scope
    # via --no-deps.
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --offline --no-deps
    ;;
  test-telemetry)
    cargo test -p pddl-telemetry --offline
    ;;
  test-faults)
    cargo test -p pddl-faults --offline
    ;;
  test-par)
    cargo test -p pddl-par --offline
    ;;
  test-golden)
    cargo test -p predictddl --offline --test golden_traces
    ;;
  test-bench)
    cargo test -p pddl-bench --offline
    ;;
  test-tensor)
    # Lib tests plus the equivalence/determinism/pack-reuse suite; the
    # proptest target is excluded (stubbed offline).
    cargo test -p pddl-tensor --offline --lib --test gemm_equivalence
    ;;
  test-simd)
    # The dispatch-layer gate: the whole tensor suite on whatever
    # microkernel the host dispatches to, then again pinned to the
    # portable scalar fallback via PDDL_FORCE_SCALAR=1 — so a kernel bug
    # that only one backend exhibits cannot hide behind the other.
    cargo test -p pddl-tensor --offline --lib --test gemm_equivalence
    PDDL_FORCE_SCALAR=1 cargo test -p pddl-tensor --offline --lib --test gemm_equivalence
    ;;
  test-trace)
    # The flight-recorder/span/waterfall unit tests run for real (pure
    # std); the TCP trace tier needs serde at runtime, so offline it is
    # type-checked only and executes in networked CI.
    cargo test -p pddl-telemetry --offline trace
    cargo check -p predictddl --offline --test trace
    ;;
  test-shard)
    # The router's ring/key/membership unit tests run for real (the
    # route table and routing key are hand-rolled, serde-free at
    # runtime); the TCP fleet tier needs serde, so offline it is
    # type-checked only and executes in networked CI.
    cargo test -p pddl-router --offline
    cargo check -p predictddl --offline --test shard
    ;;
  test-registry)
    # The crash-safe store is plain std, so its seeded torn-write /
    # recovery / retention unit suite runs for real offline, as do the
    # tier's serde-free tests (the seeded crash sweep over raw artifacts
    # and the golden manifest fixture). The checkpoint/TCP-reload tests
    # need serde at runtime, so offline they are type-checked only and
    # execute in networked CI.
    cargo test -p pddl-registry --offline
    cargo test -p predictddl --offline --test registry -- \
      open_recovers_newest_verifiable_version_for_every_seed \
      manifest_format_matches_golden_fixture
    cargo check -p predictddl --offline --test registry
    ;;
  test-sched)
    # The whole sched tier is serde-free at runtime (engine, live
    # predictor, and golden trace fixtures are pure std), so it runs for
    # real offline — in release, because it drives a 10⁵-job engine run.
    # The crate's proptest target is excluded (stubbed offline).
    cargo test -p pddl-sched --offline --release --lib
    cargo test -p predictddl --offline --release --test sched
    ;;
  metrics-expo)
    # Prometheus exposition renderer + the golden fixtures pinning the
    # exposition, trace-dump, and waterfall shapes byte-for-byte.
    cargo test -p pddl-telemetry --offline expo
    cargo test -p pddl-telemetry --offline --test golden_shapes
    ;;
  bench-serve)
    shift
    cargo run -p pddl-bench --offline --release --bin pddl-loadgen -- \
      --transport inproc "$@"
    ;;
  bench-shard)
    # The sharded-fleet benchmark: in-process shard pools behind the
    # real consistent-hash ring — scaling sweep, rebalance accounting,
    # and the mid-load shard-kill phase (produces BENCH_shard.json).
    shift
    cargo run -p pddl-bench --offline --release --bin pddl-loadgen -- \
      --transport fleet "$@"
    ;;
  bench-tensor)
    shift
    cargo run -p pddl-bench --offline --release --bin pddl-tensorbench -- "$@"
    ;;
  bench-sched)
    # The scheduling/continual-refit benchmark: burst-load policy
    # comparison plus the mid-run cost-shift frozen-vs-online scenario
    # (produces BENCH_sched.json).
    shift
    cargo run -p pddl-bench --offline --release --bin pddl-schedbench -- "$@"
    ;;
  *)
    cargo --offline "$@"
    ;;
esac
