//! Sequential rayon stub: `par_*` methods return ordinary std iterators,
//! which provide the same adapter surface (`map`, `filter_map`, `collect`,
//! `min_by`, `enumerate`, `for_each`, ...).

pub mod prelude {
    pub trait IntoParallelRefIterator<'data> {
        type Item;
        fn par_iter(&'data self) -> std::slice::Iter<'data, Self::Item>;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> std::slice::Iter<'data, T> {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> std::slice::Iter<'data, T> {
            self.iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'data> {
        type Item;
        fn par_iter_mut(&'data mut self) -> std::slice::IterMut<'data, Self::Item>;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> std::slice::IterMut<'data, T> {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> std::slice::IterMut<'data, T> {
            self.iter_mut()
        }
    }

    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    pub trait IntoParallelIterator {
        type IntoIter;
        fn into_par_iter(self) -> Self::IntoIter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type IntoIter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
}
