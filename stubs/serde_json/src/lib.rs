//! Type-check-only serde_json stub. Serialization returns empty strings,
//! deserialization always errors: enough to compile, useless at runtime.

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_writer<W: std::io::Write, T: ?Sized + serde::Serialize>(
    _writer: W,
    _value: &T,
) -> Result<()> {
    Ok(())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("from_str unavailable in stub".into()))
}

pub fn from_reader<R: std::io::Read, T: serde::de::DeserializeOwned>(_rdr: R) -> Result<T> {
    Err(Error("from_reader unavailable in stub".into()))
}
