//! parking_lot stub over std::sync primitives (poison panics instead of
//! being recoverable — fine for compile checks and tests).

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
