//! Type-check-only serde stub: blanket impls make every type
//! `Serialize`/`Deserialize` so derive-generated bounds are satisfied
//! without generating any code.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod ser {
    pub use super::Serialize;
}

pub mod de {
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
    pub use super::Deserialize;
}
