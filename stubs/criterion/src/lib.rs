//! Minimal criterion stub: runs each benchmark body once so bench targets
//! type-check (and can smoke-run) without the real statistics machinery.

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench(stub): {id}");
        f(&mut Bencher);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("bench-group(stub): {name}");
        let _ = self;
        BenchmarkGroup { _marker: std::marker::PhantomData }
    }
}

pub struct BenchmarkGroup<'a> {
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("  bench(stub): {id}");
        f(&mut Bencher);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
