//! Empty proptest stub: present so dependency resolution succeeds offline.
//! Targets that use `proptest!` are excluded from offline compile checks
//! (see scripts/offline_check.sh).
