//! No-op serde derive stub: accepts the `#[serde(...)]` helper attribute
//! and emits nothing. The stub `serde` crate's blanket impls satisfy the
//! `Serialize`/`Deserialize` bounds instead.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
