//! Chaos soak: an in-process controller, collector, and a small fleet of
//! resilient clients running under a deterministic [`pddl_faults`] plan.
//!
//! For every fault-plan seed the test asserts the exactly-once contract:
//! each client request yields exactly one accepted reply whose prediction
//! is **bit-identical** (`f64::to_bits`) to a serially computed ground
//! truth, no matter how many resets, truncations, dropped responses, or
//! delays the plan injects along the way. Afterwards the controller's
//! live-connection gauge must return to its pre-round value — handler
//! threads are reaped, not leaked.
//!
//! The default run uses three seeds and finishes in seconds; set
//! `PDDL_SOAK_SECS=<n>` to keep cycling through derived seeds for at
//! least `n` seconds (e.g. a nightly job).
//!
//! Garbage injection is deliberately left out of the soak plan: corrupting
//! request bytes in flight can mutate a *payload* while leaving the
//! `(client, id)` identity intact, which is a semantically different
//! request — not a transport fault the envelope protocol claims to mask.
//! Garbage bytes are covered by `tests/wire_fuzz.rs` and the `pddl-faults`
//! unit tests, where the assertion is "structured error, no panic".

use pddl_cluster::{
    ClusterState, CollectorClient, CollectorServer, RetryPolicy, ServerClass, ServerSpec,
};
use pddl_ddlsim::Workload;
use pddl_faults::{Direction, FaultPlan, FaultyWrite, FAULT_PLAN_ENV};
use pddl_telemetry::trace::flight_recorder;
use pddl_telemetry::TraceContext;
use std::io::Write;
use predictddl::{Controller, ControllerClient, OfflineTrainer, PredictionRequest};
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 25;
const SEEDS: [u64; 3] = [7, 1913, 0xC0FFEE];

/// Transport faults only — see the module docs for why `garbage` stays 0.
fn plan_spec(seed: u64) -> String {
    format!("seed={seed},delay=0.06:2,reset=0.02,truncate=0.02,garbage=0.0,drop=0.02")
}

/// A generous budget: the plan's per-op fault rate makes multi-failure
/// request chains common, and a budget exhaustion fails the whole soak.
fn soak_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 24,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        attempt_timeout: Duration::from_millis(750),
        jitter_seed: seed,
    }
}

fn workload_matrix() -> Vec<PredictionRequest> {
    let models = ["resnet18", "vgg16", "squeezenet1_1", "alexnet"];
    (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|i| {
            PredictionRequest::zoo(
                Workload::new(models[i % models.len()], "cifar10", 64 + 32 * (i % 3), 1 + i % 4),
                ClusterState::homogeneous(ServerClass::GpuP100, 1 + i % 8),
            )
        })
        .collect()
}

fn gauge(name: &str) -> i64 {
    pddl_telemetry::snapshot().gauge(name).unwrap_or(0)
}

fn counter(name: &str) -> u64 {
    pddl_telemetry::snapshot().counter(name).unwrap_or(0)
}

/// Polls a gauge back down to `target` — handler threads decrement on
/// exit, shortly after the sockets drop.
fn await_gauge(name: &str, target: i64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = gauge(name);
        if v <= target {
            return;
        }
        assert!(Instant::now() < deadline, "{name} stuck at {v}, want <= {target}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One full chaos round under `seed`'s fault plan.
fn soak_round(seed: u64, truth: &[(PredictionRequest, Result<u64, String>)]) {
    let spec = plan_spec(seed);

    // The same spec must reproduce the same fault sequence byte for byte —
    // this is what makes a soak failure reproducible from its seed alone.
    let run = |spec: &str| {
        let plan = FaultPlan::parse(spec).unwrap();
        let mut w = FaultyWrite::new(Vec::new(), plan.schedule(3, Direction::Write));
        let outcomes: Vec<_> = (0..256)
            .map(|i| w.write(&[i as u8; 16]).map_err(|e| e.kind()))
            .collect();
        (outcomes, format!("{:?}", w.log()))
    };
    assert_eq!(run(&spec), run(&spec), "fault schedule not reproducible");

    std::env::set_var(FAULT_PLAN_ENV, &spec);
    let controller = Controller::serve("127.0.0.1:0", OfflineTrainer::tiny().train_full())
        .expect("bind under fault plan");
    let addr = controller.addr();
    std::env::remove_var(FAULT_PLAN_ENV);

    let idle_connections = gauge("controller.active_connections");
    flight_recorder().reset();

    // Every request carries a client-minted trace context; the first two
    // per client are promoted into the retained set right after they
    // complete, so the round can assert trace identity survived the
    // chaos (retries and reconnects merge into ONE trace, not several).
    let trace_id = |i: usize| 0x50AC_0000_0000 + i as u64;
    const PROMOTED_PER_CLIENT: usize = 2;

    let results: Vec<Vec<(usize, Result<u64, String>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut client = ControllerClient::connect_resilient(
                        addr,
                        soak_policy(seed ^ c as u64),
                    )
                    .expect("resilient connect");
                    (0..REQUESTS_PER_CLIENT)
                        .map(|r| {
                            let i = c * REQUESTS_PER_CLIENT + r;
                            let outcome = client
                                .predict_with_trace(&truth[i].0, TraceContext::root(trace_id(i)))
                                .expect("request lost despite retry budget");
                            if r < PROMOTED_PER_CLIENT {
                                flight_recorder().promote(trace_id(i), "soak");
                            }
                            (i, outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string()))
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Exactly one reply per request, each bit-identical to ground truth.
    let mut seen = vec![0usize; truth.len()];
    for (i, outcome) in results.into_iter().flatten() {
        seen[i] += 1;
        assert_eq!(outcome, truth[i].1, "seed {seed} request {i} diverged from serial");
    }
    assert!(seen.iter().all(|&n| n == 1), "seed {seed}: lost or duplicated replies");

    // Trace identity under chaos: each promoted request is retained as
    // exactly one trace holding its own id, and deterministic span
    // derivation keeps retried/replayed spans deduplicated.
    let retained = flight_recorder().retained();
    for c in 0..CLIENTS {
        for r in 0..PROMOTED_PER_CLIENT {
            let id = trace_id(c * REQUESTS_PER_CLIENT + r);
            let matches: Vec<_> = retained.iter().filter(|t| t.trace_id == id).collect();
            assert_eq!(matches.len(), 1, "seed {seed}: trace {id:#x} retained {} times", matches.len());
            let spans = &matches[0].spans;
            assert!(!spans.is_empty(), "seed {seed}: trace {id:#x} retained without spans");
            let mut ids: Vec<u64> = spans.iter().map(|sp| sp.span_id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                spans.len(),
                "seed {seed}: trace {id:#x} double-recorded spans across retries"
            );
        }
    }

    drop(controller);
    await_gauge("controller.active_connections", idle_connections);
}

/// Collector under the same chaos: heartbeats retry through resets and
/// dropped acks, and the inventory converges to the full fleet.
fn collector_round(seed: u64) {
    let spec = plan_spec(seed);
    std::env::set_var(FAULT_PLAN_ENV, &spec);
    let server = CollectorServer::bind("127.0.0.1:0", 4).expect("bind collector");
    std::env::remove_var(FAULT_PLAN_ENV);
    let addr = server.addr();

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let spec =
                    ServerSpec::preset(ServerClass::GpuP100, format!("soak-node-{seed:x}-{c}"));
                let mut client =
                    CollectorClient::register_with_retry(addr, spec, soak_policy(seed ^ c as u64))
                        .expect("register under chaos");
                for beat in 0..20 {
                    client
                        .heartbeat(0.1 * (beat % 10) as f64, beat % 4)
                        .expect("heartbeat lost despite retry budget");
                }
            });
        }
    });

    let state = server.snapshot();
    assert_eq!(state.servers.len(), CLIENTS, "seed {seed}: inventory incomplete");
    assert!(state.servers.iter().all(|st| !st.stale));
}

#[test]
fn soak_exactly_once_under_fault_plans() {
    // Serial ground truth, computed once on a fault-free system.
    let system = OfflineTrainer::tiny().train_full();
    let requests = workload_matrix();
    let truth: Vec<(PredictionRequest, Result<u64, String>)> = requests
        .iter()
        .map(|req| {
            let serial = system
                .predict(req)
                .map(|p| p.seconds.to_bits())
                .map_err(|e| e.to_string());
            (req.clone(), serial)
        })
        .collect();

    // The pooled batch path must agree with the serial path bit-for-bit
    // before any chaos enters the picture.
    let pooled = system.predict_many(&requests);
    for (i, r) in pooled.into_iter().enumerate() {
        let pooled_bits = r.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
        assert_eq!(pooled_bits, truth[i].1, "pooled result {i} diverged from serial");
    }

    let faults_before = counter("faults.injected_resets")
        + counter("faults.truncated_writes")
        + counter("faults.dropped_writes")
        + counter("faults.injected_delays");

    for seed in SEEDS {
        soak_round(seed, &truth);
        collector_round(seed);
    }

    // Opt-in extended soak: keep cycling derived seeds for PDDL_SOAK_SECS.
    if let Ok(secs) = std::env::var("PDDL_SOAK_SECS") {
        let budget = Duration::from_secs(secs.parse().expect("PDDL_SOAK_SECS must be u64"));
        let start = Instant::now();
        let mut seed = 0x50AC_u64;
        while start.elapsed() < budget {
            soak_round(seed, &truth);
            collector_round(seed);
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
    }

    let faults_after = counter("faults.injected_resets")
        + counter("faults.truncated_writes")
        + counter("faults.dropped_writes")
        + counter("faults.injected_delays");
    assert!(
        faults_after > faults_before,
        "fault plan injected nothing ({faults_before} -> {faults_after}); soak exercised nothing"
    );

    // Retries (if any were needed) are visible in the stats counters.
    let retries = counter("controller_client.retries") + counter("collector_client.retries");
    let dedups = counter("controller.request_dedups");
    println!(
        "soak: {} injected faults, {retries} client retries, {dedups} deduplicated replays",
        faults_after - faults_before
    );
}
