//! The sched tier: the continual-refit loop under the large-scale
//! discrete-event engine, pinned end to end.
//!
//! Four contracts, each load-bearing for `BENCH_sched.json`:
//!
//! 1. **Determinism** — a fixed `EngineConfig` yields bit-identical
//!    metrics across repeat runs *and* across concurrent OS threads (the
//!    engine shares telemetry counters process-wide, so this catches any
//!    accidental cross-run coupling).
//! 2. **Drift discipline** — one mid-run cost shift fires Page–Hinkley
//!    exactly once, two shifts exactly twice, and every fire lands at or
//!    after its shift time. A refit that over- or under-corrects shows up
//!    here as an extra (or missing) fire.
//! 3. **Online = batch** — the Sherman–Morrison path tracks a cold
//!    `batch_ridge` solve of the same window to ≤1e-8 relative error, so
//!    the incremental model is the closed-form model, not an
//!    approximation of it.
//! 4. **Conservation** — truncating a run mid-flight with `horizon` loses
//!    no jobs: `completed + in_queue + in_flight == submitted` for every
//!    policy.
//!
//! On top of those, two golden fixtures pin full engine traces (three
//! policies each, stable and mid-run-shift scenarios) bit-for-bit, with
//! `f64` bit patterns stored as decimal strings and compared byte for
//! byte — no float parsing anywhere, so every last ulp is covered. On an
//! intentional engine change, regenerate with
//! `PDDL_REGEN_GOLDEN=1 cargo test --test sched` and review the diff.
//!
//! The tier is serde-free (engine + fixtures are pure std), so it runs
//! for real under `scripts/offline_check.sh test-sched`.

use pddl_regress::{batch_ridge, OnlineRidge};
use pddl_sched::{
    run_engine, ArrivalSpec, CostShift, EngineConfig, EngineTrace, PolicyKind,
};
use pddl_tensor::Rng;
use std::path::PathBuf;

/// The three policies the golden fixtures pin (autoscale is exercised by
/// the engine's own tests and the committed benchmark; keeping it out of
/// the fixtures halves regeneration churn when tuning autoscale knobs).
const GOLDEN_POLICIES: [PolicyKind; 3] =
    [PolicyKind::Fifo, PolicyKind::SjfPredicted, PolicyKind::DeadlineAware];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// Every numeric outcome of one run as exact bit patterns: metric floats,
/// metric ints, the accuracy summary, per-bucket curve points, drift-fire
/// times, and resolved shift times.
fn render_trace(policy: PolicyKind, t: &EngineTrace) -> String {
    let mut s = String::new();
    let b = |v: f64| v.to_bits().to_string();
    s.push_str(&format!("    {{\n      \"policy\": \"{}\",\n", policy.name()));
    s.push_str("      \"ints\": {");
    let ints = t.metrics.int_fields();
    for (i, (name, v)) in ints.iter().enumerate() {
        let sep = if i + 1 < ints.len() { ", " } else { "" };
        s.push_str(&format!("\"{name}\": {v}{sep}"));
    }
    s.push_str("},\n      \"float_bits\": {");
    let floats = t.metrics.float_fields();
    for (i, (name, v)) in floats.iter().enumerate() {
        let sep = if i + 1 < floats.len() { ", " } else { "" };
        s.push_str(&format!("\"{name}\": \"{}\"{sep}", b(*v)));
    }
    s.push_str("},\n      \"accuracy_bits\": {");
    let a = &t.accuracy;
    for (i, (name, v)) in [
        ("pre_shift_online", a.pre_shift_online),
        ("pre_shift_frozen", a.pre_shift_frozen),
        ("post_shift_online", a.post_shift_online),
        ("post_shift_frozen", a.post_shift_frozen),
        ("recovery_ratio", a.recovery_ratio),
        ("frozen_vs_online", a.frozen_vs_online),
    ]
    .iter()
    .enumerate()
    {
        let sep = if i < 5 { ", " } else { "" };
        s.push_str(&format!("\"{name}\": \"{}\"{sep}", b(*v)));
    }
    s.push_str("},\n      \"curve_bits\": [");
    for (i, p) in a.curve.iter().enumerate() {
        let sep = if i + 1 < a.curve.len() { ", " } else { "" };
        s.push_str(&format!(
            "[\"{}\", \"{}\", \"{}\", {}]{sep}",
            b(p.t_end),
            b(p.online_err),
            b(p.frozen_err),
            p.jobs
        ));
    }
    s.push_str("],\n      \"drift_time_bits\": [");
    for (i, d) in t.drift.iter().enumerate() {
        let sep = if i + 1 < t.drift.len() { ", " } else { "" };
        s.push_str(&format!("\"{}\"{sep}", b(d.time)));
    }
    s.push_str("],\n      \"shift_time_bits\": [");
    for (i, st) in t.shift_times.iter().enumerate() {
        let sep = if i + 1 < t.shift_times.len() { ", " } else { "" };
        s.push_str(&format!("\"{}\"{sep}", b(*st)));
    }
    s.push_str("]\n    }");
    s
}

fn golden_traces(cfg_for: impl Fn(PolicyKind) -> EngineConfig) -> Vec<(PolicyKind, EngineTrace)> {
    GOLDEN_POLICIES.iter().map(|&p| (p, run_engine(&cfg_for(p)))).collect()
}

fn render_fixture(name: &str, traces: &[(PolicyKind, EngineTrace)]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n  \"fixture\": \"{name}\",\n  \"version\": 1,\n  \"policies\": [\n"
    ));
    for (i, (policy, t)) in traces.iter().enumerate() {
        s.push_str(&render_trace(*policy, t));
        s.push_str(if i + 1 < traces.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Byte-for-byte fixture check with `PDDL_REGEN_GOLDEN=1` regeneration.
fn check_golden(name: &str, live: &str) {
    let path = fixtures_dir().join(format!("{name}.json"));
    if std::env::var("PDDL_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(fixtures_dir()).expect("create fixtures dir");
        std::fs::write(&path, live).expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let stored = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}; regenerate with PDDL_REGEN_GOLDEN=1", path.display()));
    assert_eq!(
        stored, live,
        "{name} drifted from its golden fixture; if the engine change is \
         intentional, regenerate with PDDL_REGEN_GOLDEN=1 and review the diff"
    );
}

/// The stable golden scenario: moderate Poisson load, no shift.
fn stable_cfg(policy: PolicyKind) -> EngineConfig {
    let mut cfg = EngineConfig::new(policy, 3000, 17);
    cfg.servers = 32;
    cfg.pretrain_per_pair = 2;
    cfg.arrivals = ArrivalSpec::PoissonLoad { rho: 0.6 };
    cfg.accuracy_buckets = 8;
    cfg
}

/// The shift golden scenario: a 2.5× cost-model shift at the midpoint.
fn shift_cfg(policy: PolicyKind) -> EngineConfig {
    let mut cfg = EngineConfig::new(policy, 12_000, 23);
    cfg.servers = 32;
    cfg.arrivals = ArrivalSpec::PoissonLoad { rho: 0.45 };
    cfg.shifts = vec![CostShift { at_fraction: 0.5, factor: 2.5 }];
    cfg.post_shift_skip = 400;
    cfg.accuracy_buckets = 8;
    cfg
}

// ---------------------------------------------------------------------------
// 1. Determinism
// ---------------------------------------------------------------------------

#[test]
fn metrics_are_bit_identical_across_runs_and_threads() {
    let cfg = || {
        let mut c = EngineConfig::new(PolicyKind::SjfPredicted, 4000, 77);
        c.servers = 32;
        c.shifts = vec![CostShift { at_fraction: 0.6, factor: 2.0 }];
        c.post_shift_skip = 300;
        c
    };
    let reference = render_trace(PolicyKind::SjfPredicted, &run_engine(&cfg()));
    // Repeat run in this thread.
    assert_eq!(
        reference,
        render_trace(PolicyKind::SjfPredicted, &run_engine(&cfg())),
        "repeat run diverged"
    );
    // Four concurrent runs: telemetry counters are process-global, so this
    // catches any state the engine accidentally shares across instances.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = cfg();
            std::thread::spawn(move || render_trace(PolicyKind::SjfPredicted, &run_engine(&c)))
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(reference, h.join().expect("engine thread"), "thread {i} diverged");
    }
}

// ---------------------------------------------------------------------------
// 2. Drift discipline
// ---------------------------------------------------------------------------

#[test]
fn drift_fires_exactly_once_per_shift() {
    // One shift → one fire, at or after the shift time.
    let mut cfg = EngineConfig::new(PolicyKind::Fifo, 20_000, 91);
    cfg.servers = 32;
    cfg.arrivals = ArrivalSpec::PoissonLoad { rho: 0.45 };
    cfg.shifts = vec![CostShift { at_fraction: 0.5, factor: 2.5 }];
    cfg.post_shift_skip = 500;
    let one = run_engine(&cfg);
    assert_eq!(one.drift.len(), 1, "one shift → one fire: {:?}", one.drift);
    assert_eq!(one.metrics.drift_events, 1);
    assert!(
        one.drift[0].time >= one.shift_times[0],
        "fire at {} precedes the shift at {}",
        one.drift[0].time,
        one.shift_times[0]
    );

    // Two well-separated shifts → exactly two fires, one after each.
    cfg.shifts = vec![
        CostShift { at_fraction: 0.35, factor: 2.5 },
        CostShift { at_fraction: 0.7, factor: 2.5 },
    ];
    let two = run_engine(&cfg);
    assert_eq!(two.drift.len(), 2, "two shifts → two fires: {:?}", two.drift);
    assert_eq!(two.metrics.drift_events, 2);
    assert!(two.drift[0].time >= two.shift_times[0]);
    assert!(two.drift[0].time < two.shift_times[1], "first fire must precede the second shift");
    assert!(two.drift[1].time >= two.shift_times[1]);
    // Each fire triggered a recovery refit.
    assert!(two.metrics.refits >= 2, "refits {}", two.metrics.refits);
}

// ---------------------------------------------------------------------------
// 3. Online = batch
// ---------------------------------------------------------------------------

#[test]
fn online_ridge_matches_batch_solve_within_1e8() {
    let lambda = 1e-3;
    let features = 6;
    let mut rng = Rng::new(0x5C_4ED);
    let mut online = OnlineRidge::new(features, lambda, 4096);
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for i in 0..400 {
        let x: Vec<f64> = (0..features).map(|_| rng.normal() as f64).collect();
        let y = x.iter().enumerate().map(|(j, v)| (j as f64 - 2.0) * v).sum::<f64>()
            + 0.1 * rng.normal() as f64;
        online.observe(&x, y);
        xs.push(x);
        ys.push(y);
        // Spot-check along the stream, not only at the end, so a drifting
        // rank-1 update cannot cancel back to the batch answer by luck.
        if (i + 1) % 100 == 0 {
            let batch = batch_ridge(&xs, &ys, lambda);
            let sm = online.coefficients();
            assert_eq!(sm.len(), batch.len());
            for (a, b) in sm.iter().zip(batch.iter()) {
                let scale = b.abs().max(1.0);
                assert!(
                    (a - b).abs() / scale <= 1e-8,
                    "after {} obs: SM {a} vs batch {b}",
                    i + 1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Conservation under truncation
// ---------------------------------------------------------------------------

#[test]
fn truncated_horizon_conserves_jobs_under_every_policy() {
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::SjfPredicted,
        PolicyKind::DeadlineAware,
        PolicyKind::AutoscalePredicted,
    ] {
        let mut cfg = EngineConfig::new(policy, 3000, 41);
        cfg.servers = 32;
        cfg.pretrain_per_pair = 2;
        let full = run_engine(&cfg);
        cfg.horizon = Some(full.metrics.makespan * 0.4);
        let m = run_engine(&cfg).metrics;
        assert!(
            m.in_queue + m.in_flight > 0,
            "{}: horizon must cut mid-run to test anything",
            policy.name()
        );
        assert_eq!(
            m.completed + m.in_queue + m.in_flight,
            m.submitted,
            "{}: jobs leaked at the horizon",
            policy.name()
        );
        assert!(m.submitted <= 3000);
    }
}

// ---------------------------------------------------------------------------
// 5. Scale
// ---------------------------------------------------------------------------

#[test]
fn hundred_thousand_jobs_complete_with_sane_metrics() {
    let mut cfg = EngineConfig::new(PolicyKind::SjfPredicted, 100_000, 13);
    cfg.arrivals = ArrivalSpec::PoissonLoad { rho: 0.7 };
    let t = run_engine(&cfg);
    let m = &t.metrics;
    assert_eq!(m.completed, 100_000);
    assert_eq!(m.in_queue, 0);
    assert_eq!(m.in_flight, 0);
    assert!(m.utilization > 0.0 && m.utilization <= 1.0, "utilization {}", m.utilization);
    assert!(m.p50_wait <= m.p95_wait && m.p95_wait <= m.p99_wait);
    assert!(m.server_seconds <= m.capacity_seconds);
    // No shift configured → the detector must stay quiet over 10⁵ jobs.
    assert_eq!(m.drift_events, 0, "false drift fire at scale");
    assert_eq!(m.updates, 100_000, "every completion must update the live model");
}

// ---------------------------------------------------------------------------
// 6. Golden fixtures
// ---------------------------------------------------------------------------

#[test]
fn golden_stable_traces_match_fixture() {
    let traces = golden_traces(stable_cfg);
    // A stable scenario is only a useful pin if the loop stayed healthy.
    for (policy, t) in &traces {
        assert_eq!(t.drift.len(), 0, "{}: stable scenario must not fire", policy.name());
        assert_eq!(t.metrics.completed, 3000, "{}", policy.name());
    }
    check_golden("sched_trace_stable", &render_fixture("sched_trace_stable", &traces));
}

#[test]
fn golden_shift_traces_match_fixture() {
    let traces = golden_traces(shift_cfg);
    // The shift scenario is only a useful pin if the loop actually
    // engaged: every policy's first fire lands at the shift. FIFO and SJF
    // keep allocations stationary, so for them the shift is the *only*
    // fire; deadline-aware re-sizes allocations off its own predictions
    // after the shift makes the pre-shift-slack deadlines hopeless, and
    // the detector legitimately flags that policy-induced regime wander
    // too — the fixture pins its full fire list bit-for-bit instead.
    for (policy, t) in &traces {
        assert!(
            !t.drift.is_empty() && t.drift[0].time >= t.shift_times[0],
            "{}: first fire must land at the shift; shifts {:?}, fires {:?}",
            policy.name(),
            t.shift_times,
            t.drift
        );
        if matches!(policy, PolicyKind::Fifo | PolicyKind::SjfPredicted) {
            assert_eq!(t.drift.len(), 1, "{}: one shift → one fire", policy.name());
        }
    }
    check_golden("sched_trace_shift", &render_fixture("sched_trace_shift", &traces));
}
