//! Property-based tests (proptest) over cross-crate invariants.

use pddl_cluster::protocol::{read_line_bounded, WireError};
use pddl_cluster::{ClusterState, ServerClass};
use pddl_faults::FaultPlan;
use pddl_par::{PushError, TaskQueue};
use predictddl::parse_frame;
use std::io::BufReader;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use pddl_ghn::{cosine_similarity, Ghn, GhnConfig};
use pddl_graph::{CompGraph, NodeAttrs, OpKind};
use pddl_regress::poly::PolyFeatures;
use pddl_regress::split::train_test_split;
use pddl_regress::{batch_ridge, DriftConfig, OnlineRidge, PageHinkley};
use pddl_tensor::linalg::qr;
use pddl_tensor::{Matrix, Rng};
use proptest::prelude::*;

/// Random small DAG built layer-by-layer (always valid).
fn arb_graph() -> impl Strategy<Value = CompGraph> {
    (2usize..10, any::<u64>()).prop_map(|(layers, seed)| {
        let mut rng = Rng::new(seed);
        let mut g = CompGraph::new("prop");
        let mut prev = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 16), "in");
        let mut frontier = vec![prev];
        for i in 0..layers {
            let kind = *rng.pick(&[
                OpKind::Conv,
                OpKind::Relu,
                OpKind::BatchNorm,
                OpKind::MaxPool,
                OpKind::DepthwiseConv,
            ]);
            let c = 4 << rng.below(4);
            let attrs = match kind {
                OpKind::Conv => NodeAttrs::conv(c, c, 3, 1, 16),
                OpKind::DepthwiseConv => NodeAttrs::group_conv(c, c, 3, 1, c, 16),
                _ => NodeAttrs::elementwise(c, 16),
            };
            let src = frontier[rng.below(frontier.len())];
            prev = g.chain(src, kind, attrs, format!("n{i}"));
            frontier.push(prev);
        }
        let _ = g.chain(prev, OpKind::Output, NodeAttrs::elementwise(8, 16), "out");
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QR reconstruction holds for random matrices.
    #[test]
    fn qr_reconstructs_random_matrices(seed in any::<u64>(), m in 3usize..12, extra in 0usize..6) {
        let n = (m - 2).max(1);
        let _ = extra;
        let mut rng = Rng::new(seed);
        let a = Matrix::rand_normal(m, n, 1.0, &mut rng);
        let (q, r) = qr(&a);
        let recon = q.matmul(&r);
        prop_assert!((&recon - &a).max_abs() < 1e-3);
    }

    /// Polynomial expansion always has the closed-form width.
    #[test]
    fn poly_dim_formula_holds(d in 1usize..8, rows in 1usize..5, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let x = Matrix::rand_normal(rows, d, 1.0, &mut rng);
        for degree in 1..=3usize {
            let p = PolyFeatures::new(degree, true);
            let t = p.transform(&x);
            prop_assert_eq!(t.cols(), p.out_dim(d));
            prop_assert_eq!(t.rows(), rows);
        }
    }

    /// Random generated DAGs validate, topo-sort, and embed to finite
    /// fixed-size vectors; cosine self-similarity is 1.
    #[test]
    fn random_graphs_embed_cleanly(g in arb_graph()) {
        prop_assert_eq!(g.validate(), Ok(()));
        let order = g.topo_order().unwrap();
        prop_assert_eq!(order.len(), g.num_nodes());
        let mut rng = Rng::new(1234);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let e = ghn.embed_graph(&g);
        prop_assert_eq!(e.len(), GhnConfig::tiny().hidden_dim);
        prop_assert!(e.iter().all(|x| x.is_finite()));
        prop_assert!((cosine_similarity(&e, &e) - 1.0).abs() < 1e-5);
    }

    /// Train/test splits always partition the index set.
    #[test]
    fn splits_partition(n in 2usize..500, frac in 0.1f64..0.9, seed in any::<u64>()) {
        let (tr, te) = train_test_split(n, frac, seed);
        prop_assert!(!tr.is_empty() && !te.is_empty());
        let mut all: Vec<usize> = tr.iter().chain(&te).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
    }

    /// Simulator output is positive, finite, and monotone in epochs.
    #[test]
    fn simulator_monotone_in_epochs(
        epochs in 1usize..8,
        servers in 1usize..12,
        model_idx in 0usize..5,
    ) {
        let models = ["resnet18", "vgg16", "squeezenet1_1", "alexnet", "mobilenet_v2"];
        let sim = Simulator::new(SimConfig::default());
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, servers);
        let t1 = sim
            .expected_time(&Workload::new(models[model_idx], "cifar10", 64, epochs), &cluster)
            .unwrap();
        let t2 = sim
            .expected_time(&Workload::new(models[model_idx], "cifar10", 64, epochs + 1), &cluster)
            .unwrap();
        prop_assert!(t1.is_finite() && t1 > 0.0);
        prop_assert!(t2 > t1, "more epochs must take longer: {} vs {}", t1, t2);
    }

    /// Cluster feature vectors are always finite and fixed-width.
    #[test]
    fn cluster_features_always_finite(n in 1usize..30, class_idx in 0usize..3) {
        let class = [ServerClass::CpuE5_2630, ServerClass::CpuE5_2650, ServerClass::GpuP100][class_idx];
        let f = ClusterState::homogeneous(class, n).feature_vector();
        prop_assert!(f.iter().all(|x| x.is_finite()));
    }

    /// Arbitrary peer bytes through the bounded reader and the frame
    /// parser produce structured outcomes only: no panics, and no line
    /// longer than the limit ever escapes.
    #[test]
    fn wire_layer_survives_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        cap in 8usize..256,
    ) {
        let mut reader = BufReader::with_capacity(cap, bytes.as_slice());
        loop {
            match read_line_bounded(&mut reader, 512) {
                Ok(None) => break,
                Ok(Some(line)) => {
                    prop_assert!(line.len() <= 512, "over-limit line escaped");
                    let _ = parse_frame(&line);
                }
                Err(WireError::FrameTooLong { limit }) => {
                    prop_assert_eq!(limit, 512);
                    break;
                }
                Err(WireError::Malformed { .. }) => continue,
                Err(WireError::Io(e)) => panic!("in-memory reader raised io error: {e}"),
            }
        }
    }

    /// Fault-plan specs survive parse → to_spec → parse exactly, so a
    /// schedule logged from a failing run can be replayed verbatim.
    #[test]
    fn fault_plan_spec_round_trips(
        seed in any::<u64>(),
        p_delay in 0.0f64..0.2,
        p_reset in 0.0f64..0.2,
        p_truncate in 0.0f64..0.2,
        p_garbage in 0.0f64..0.2,
        p_drop in 0.0f64..0.2,
        max_delay_ms in 1u64..50,
    ) {
        let plan = FaultPlan { seed, p_delay, max_delay_ms, p_reset, p_truncate, p_garbage, p_drop };
        let round = FaultPlan::parse(&plan.to_spec()).unwrap();
        prop_assert_eq!(plan, round);
    }

    /// Bounded admission queue, N producers → 1 consumer, under seeded
    /// interleavings: items from each producer are popped in push order
    /// (sheds leave gaps, never reorderings), nothing is lost or
    /// duplicated (`popped + shed == submitted`), and the queue never
    /// holds more than its capacity.
    #[test]
    fn task_queue_preserves_fifo_per_producer(
        seed in any::<u64>(),
        capacity in 1usize..6,
        producers in 1usize..4,
        per_producer in 1usize..48,
    ) {
        let q = Arc::new(TaskQueue::bounded(capacity));
        let shed = Arc::new(AtomicU64::new(0));
        let popped: Vec<(usize, usize)> = std::thread::scope(|s| {
            let consumer = {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            };
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let q = Arc::clone(&q);
                    let shed = Arc::clone(&shed);
                    s.spawn(move || {
                        let mut rng =
                            Rng::new(seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        for i in 0..per_producer {
                            match q.try_push((p, i)) {
                                Ok(()) => {}
                                Err(PushError::Full(item)) => {
                                    assert_eq!(item, (p, i), "shed returned a different item");
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(PushError::Closed(_)) => {
                                    panic!("queue closed while producers were live")
                                }
                            }
                            assert!(q.len() <= capacity, "queue over capacity");
                            if rng.below(3) == 0 {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            q.close();
            consumer.join().unwrap()
        });

        prop_assert_eq!(
            popped.len() as u64 + shed.load(Ordering::Relaxed),
            (producers * per_producer) as u64,
            "popped + shed must equal submitted"
        );
        prop_assert!(q.peak() <= capacity, "high-water mark over capacity");
        prop_assert_eq!(q.pop(), None, "closed + drained queue must report empty");
        // Per-producer order: the popped subsequence of each producer's
        // items must be strictly increasing in push index.
        for p in 0..producers {
            let seq: Vec<usize> =
                popped.iter().filter(|(q_p, _)| *q_p == p).map(|&(_, i)| i).collect();
            prop_assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "producer {} popped out of order: {:?}", p, seq
            );
        }
    }

    /// The same conservation bound with competing consumers: every
    /// admitted item is dispatched to exactly one consumer.
    #[test]
    fn task_queue_dispatches_exactly_once(
        seed in any::<u64>(),
        capacity in 1usize..6,
        producers in 1usize..4,
        consumers in 2usize..4,
        per_producer in 1usize..48,
    ) {
        let q = Arc::new(TaskQueue::bounded(capacity));
        let shed = Arc::new(AtomicU64::new(0));
        let popped: Vec<(usize, usize)> = std::thread::scope(|s| {
            let takers: Vec<_> = (0..consumers)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(item) = q.pop() {
                            got.push(item);
                        }
                        got
                    })
                })
                .collect();
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let q = Arc::clone(&q);
                    let shed = Arc::clone(&shed);
                    s.spawn(move || {
                        let mut rng =
                            Rng::new(seed ^ (p as u64).wrapping_mul(0xD134_2543_DE82_EF95));
                        for i in 0..per_producer {
                            match q.try_push((p, i)) {
                                Ok(()) => {}
                                Err(PushError::Full(_)) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(PushError::Closed(_)) => {
                                    panic!("queue closed while producers were live")
                                }
                            }
                            if rng.below(4) == 0 {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            q.close();
            takers.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });

        prop_assert_eq!(
            popped.len() as u64 + shed.load(Ordering::Relaxed),
            (producers * per_producer) as u64,
            "popped + shed must equal submitted"
        );
        let mut unique = popped.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), popped.len(), "an item was dispatched twice");
        prop_assert!(q.peak() <= capacity, "high-water mark over capacity");
    }
}

// ---------------------------------------------------------------------------
// Consistent-hash ring (pddl-router): the fleet's placement invariants.
// ---------------------------------------------------------------------------

use pddl_router::{HashRing, DEFAULT_VNODES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lookups are total (every key owned while any shard exists) and a
    /// pure function of the membership *set* — the order shards were
    /// added, and any interleaved add/remove churn that lands on the
    /// same set, must not change a single placement.
    #[test]
    fn ring_lookup_total_and_order_independent(
        seed in any::<u64>(),
        mut shards in proptest::collection::vec(0u64..64, 1..8),
    ) {
        shards.sort_unstable();
        shards.dedup();
        let built = HashRing::with_shards(DEFAULT_VNODES, &shards);

        // Same set, reversed insertion order, plus add/remove churn of a
        // shard that is not in the final set.
        let mut churned = HashRing::new(DEFAULT_VNODES);
        let stranger = 1000;
        churned.add_shard(stranger);
        for &s in shards.iter().rev() {
            churned.add_shard(s);
        }
        churned.remove_shard(stranger);

        let mut key = seed;
        for _ in 0..512 {
            key = key.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let owner = built.lookup(key);
            prop_assert!(owner.is_some(), "key {key} unowned on a non-empty ring");
            prop_assert!(
                shards.contains(&owner.unwrap()),
                "key {key} owned by a shard outside the membership"
            );
            prop_assert_eq!(
                owner, churned.lookup(key),
                "placement depends on membership history, not just the set"
            );
        }
    }

    /// Resizing N -> N+1 moves at most ~K/(N+1) keys (the consistent-
    /// hashing bound, with slack for vnode share variance), every moved
    /// key lands on the new shard, and nothing else changes owner.
    #[test]
    fn ring_resize_moves_bounded_and_only_onto_new_shard(
        seed in any::<u64>(),
        n in 1usize..8,
    ) {
        let shards: Vec<u64> = (0..n as u64).collect();
        let before = HashRing::with_shards(DEFAULT_VNODES, &shards);
        let mut after = before.clone();
        let new_shard = n as u64;
        after.add_shard(new_shard);

        const K: usize = 4096;
        let mut key = seed;
        let mut moved = 0usize;
        for _ in 0..K {
            key = key.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let (a, b) = (before.lookup(key).unwrap(), after.lookup(key).unwrap());
            if a != b {
                prop_assert_eq!(
                    b, new_shard,
                    "key {} moved {} -> {}: movement must only target the new shard",
                    key, a, b
                );
                moved += 1;
            }
        }
        // Expected movement is K * (new shard's ring share) ~= K/(n+1);
        // allow 50% slack for vnode share variance plus sampling noise.
        // A modulo rehash moves ~K*n/(n+1) and fails this immediately.
        let bound = K * 3 / (2 * (n + 1)) + 32;
        prop_assert!(
            moved <= bound,
            "resize {} -> {} moved {}/{} keys, bound {}",
            n, n + 1, moved, K, bound
        );
    }
}

// ---------------------------------------------------------------------------
// Checkpoint registry (pddl-registry): the on-disk format and store
// invariants the reload path depends on.
// ---------------------------------------------------------------------------

use pddl_registry::{ArtifactEntry, Manifest, ProbeRecord, Registry, FORMAT_VERSION};
use std::path::PathBuf;

fn prop_root(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "pddl-prop-registry-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn arb_manifest() -> impl Strategy<Value = Manifest> {
    let artifact = ("[a-z._-]{1,24}", any::<u64>(), any::<u64>())
        .prop_map(|(name, len, fnv1a)| ArtifactEntry { name, len, fnv1a });
    let probe = (".{0,32}", any::<u64>())
        .prop_map(|(key, bits)| ProbeRecord { key, seconds_bits: bits });
    (
        any::<u64>(),
        any::<u64>(),
        ".{0,40}",
        proptest::collection::vec(artifact, 0..5),
        proptest::collection::vec(probe, 0..5),
    )
        .prop_map(|(version, created_unix, label, artifacts, probes)| Manifest {
            format: FORMAT_VERSION,
            version,
            created_unix,
            label,
            artifacts,
            probes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The manifest renderer and parser are exact inverses for any
    /// manifest — arbitrary labels (quotes, backslashes, control chars,
    /// non-ASCII), full-range u64 hashes, and any f64 bit pattern in the
    /// probes survive the JSON round trip bit-for-bit.
    #[test]
    fn manifest_json_round_trips_exactly(manifest in arb_manifest()) {
        let rendered = manifest.to_json();
        let parsed = Manifest::from_json(&rendered)
            .map_err(|e| TestCaseError::fail(format!("rendered manifest rejected: {e}")))?;
        prop_assert_eq!(&parsed, &manifest);
        // Rendering is deterministic: parse → render is a fixed point.
        prop_assert_eq!(parsed.to_json(), rendered);
    }

    /// Retention keeps exactly the newest `retain` versions plus every
    /// pinned one, and the survivors stay fully readable. The pinned
    /// version is never collected no matter how many publishes follow.
    #[test]
    fn retention_never_collects_pinned_or_live(
        publishes in 1usize..10,
        retain in 1usize..4,
        pin_after in 0usize..4,
    ) {
        let root = prop_root("retain");
        let (reg, _) = Registry::open(&root, retain)
            .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
        let art = [("system.json".to_string(), b"{\"p\":1}".to_vec())];
        let mut published = Vec::new();
        let mut pinned = None;
        for i in 0..publishes {
            let v = reg.publish(&format!("p{i}"), &art, &[])
                .map_err(|e| TestCaseError::fail(format!("publish: {e}")))?;
            published.push(v);
            if i == pin_after.min(publishes - 1) {
                reg.pin(v).map_err(|e| TestCaseError::fail(format!("pin: {e}")))?;
                pinned = Some(v);
            }
        }
        let live = reg.versions();
        let pinned = pinned.expect("one version was pinned");
        prop_assert!(live.contains(&pinned), "pinned version was collected");
        let newest: Vec<u64> =
            published.iter().rev().take(retain).copied().collect();
        for v in &newest {
            prop_assert!(live.contains(v), "version {} in the retention window was collected", v);
        }
        // Nothing outside the window survives except the pinned version.
        for v in &live {
            prop_assert!(
                newest.contains(v) || *v == pinned,
                "version {} survived outside the retention window unpinned", v
            );
        }
        // Survivors stay readable and content-verified.
        for v in &live {
            prop_assert_eq!(
                reg.read_artifact(*v, "system.json")
                    .map_err(|e| TestCaseError::fail(format!("read: {e}")))?,
                art[0].1.clone()
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    /// Concurrent publishers over one root never collide: every publish
    /// gets a unique version number, numbering is gapless across the
    /// union, and each writer's own sequence is strictly monotonic.
    #[test]
    fn concurrent_publishes_are_unique_and_monotonic(
        writers in 2usize..5,
        per_writer in 1usize..5,
    ) {
        let root = prop_root("concurrent");
        let (reg, _) = Registry::open(&root, 0)
            .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
        let reg = Arc::new(reg);
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || -> Vec<u64> {
                    (0..per_writer)
                        .map(|i| {
                            reg.publish(
                                &format!("w{w}-{i}"),
                                &[(format!("a{w}.json"), vec![w as u8; 64])],
                                &[],
                            )
                            .expect("publish")
                        })
                        .collect()
                })
            })
            .collect();
        let per_thread: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for seq in &per_thread {
            prop_assert!(seq.windows(2).all(|w| w[0] < w[1]), "a writer saw non-monotonic versions");
        }
        let mut all: Vec<u64> = per_thread.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<u64> = (1..=(writers * per_writer) as u64).collect();
        prop_assert_eq!(all, expected, "version numbers must be unique and gapless");
        std::fs::remove_dir_all(&root).ok();
    }
}

/// Seeded regression dataset: `n` points of `d` standard-normal features
/// with a linear ground truth plus small noise.
fn refit_data(seed: u64, n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = Rng::new(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..d).map(|_| rng.normal() as f64).collect();
        let y = x.iter().enumerate().map(|(j, v)| (j as f64 + 1.0) * v).sum::<f64>()
            + 0.05 * rng.normal() as f64;
        xs.push(x);
        ys.push(y);
    }
    (xs, ys)
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = Rng::new(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        idx.swap(i, rng.below(i + 1));
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The continual-refit loop's Sherman–Morrison chain IS the
    /// closed-form ridge solve: feeding any permutation of a dataset
    /// through `OnlineRidge` lands within 1e-8 of `batch_ridge` on the
    /// same points — the incremental model is never an approximation.
    #[test]
    fn online_ridge_equals_batch_for_random_orders(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        n in 20usize..80,
        d in 2usize..5,
    ) {
        let (xs, ys) = refit_data(seed, n, d);
        let idx = shuffled_indices(n, order_seed);
        let mut online = OnlineRidge::new(d, 1e-3, n + 1);
        let mut fed_xs = Vec::with_capacity(n);
        let mut fed_ys = Vec::with_capacity(n);
        for &i in &idx {
            online.observe(&xs[i], ys[i]);
            fed_xs.push(xs[i].clone());
            fed_ys.push(ys[i]);
        }
        let batch = batch_ridge(&fed_xs, &fed_ys, 1e-3);
        prop_assert_eq!(online.coefficients().len(), batch.len());
        for (a, b) in online.coefficients().iter().zip(batch.iter()) {
            let scale = b.abs().max(1.0);
            prop_assert!(
                (a - b).abs() / scale <= 1e-8,
                "SM {} vs batch {} after {} obs", a, b, n
            );
        }
    }

    /// The canonical-order window refit erases feeding order entirely:
    /// two models fed the same multiset in different orders refit to
    /// bit-identical coefficients (the determinism contract behind the
    /// sched tier's golden fixtures).
    #[test]
    fn window_refit_is_order_independent(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        n in 10usize..60,
        d in 2usize..5,
    ) {
        let (xs, ys) = refit_data(seed, n, d);
        let mut forward = OnlineRidge::new(d, 1e-3, n + 1);
        for (x, y) in xs.iter().zip(&ys) {
            forward.observe(x, *y);
        }
        // dy = 0 translation is a pure canonical-order window refit.
        forward.translate_targets_and_refit(0.0, 0);
        let mut permuted = OnlineRidge::new(d, 1e-3, n + 1);
        for &i in &shuffled_indices(n, order_seed) {
            permuted.observe(&xs[i], ys[i]);
        }
        permuted.translate_targets_and_refit(0.0, 0);
        let fwd: Vec<u64> = forward.coefficients().iter().map(|c| c.to_bits()).collect();
        let per: Vec<u64> = permuted.coefficients().iter().map(|c| c.to_bits()).collect();
        prop_assert_eq!(fwd, per, "refit must be bit-identical across orders");
    }

    /// Page–Hinkley with default margins never false-fires on a
    /// stationary standard-normal residual stream, whatever the seed —
    /// drift events in the sched tier always mean a real shift.
    #[test]
    fn page_hinkley_never_fires_without_drift(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let mut ph = PageHinkley::new(DriftConfig::default());
        for _ in 0..2000 {
            let z = rng.normal() as f64;
            prop_assert!(
                ph.observe(z).is_none(),
                "false fire at obs {} (statistic {})", ph.observations(), ph.statistic()
            );
        }
    }
}
