//! Controller integration over real TCP: the Fig. 7 listener path.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::Workload;
use predictddl::{Controller, ControllerClient, OfflineTrainer, PredictionRequest, RequestError};

fn serve_tiny() -> Controller {
    let system = OfflineTrainer::tiny().train_full();
    Controller::serve("127.0.0.1:0", system).expect("bind")
}

#[test]
fn predict_over_tcp() {
    let controller = serve_tiny();
    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    );
    let pred = client.predict(&req).unwrap().unwrap();
    assert!(pred.seconds > 0.0);
    assert_eq!(controller.requests_served(), 1);
}

#[test]
fn multiple_requests_on_one_connection() {
    let controller = serve_tiny();
    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    for model in ["resnet18", "vgg16", "squeezenet1_1"] {
        let req = PredictionRequest::zoo(
            Workload::new(model, "cifar10", 128, 2),
            ClusterState::homogeneous(ServerClass::GpuP100, 2),
        );
        let pred = client.predict(&req).unwrap().unwrap();
        assert!(pred.seconds > 0.0, "{model}");
    }
    assert_eq!(controller.requests_served(), 3);
}

#[test]
fn concurrent_clients() {
    let controller = serve_tiny();
    let addr = controller.addr();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = ControllerClient::connect(addr).unwrap();
                let req = PredictionRequest::zoo(
                    Workload::new("resnet18", "cifar10", 128, 2),
                    ClusterState::homogeneous(ServerClass::GpuP100, 1 + i % 4),
                );
                client.predict(&req).unwrap().unwrap().seconds
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 0.0);
    }
    assert_eq!(controller.requests_served(), 6);
}

#[test]
fn error_propagates_over_wire() {
    let controller = serve_tiny();
    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "tiny-imagenet", 128, 2), // no GHN in tiny trace
        ClusterState::homogeneous(ServerClass::CpuE5_2630, 2),
    );
    let result = client.predict(&req).unwrap();
    assert!(matches!(result, Err(RequestError::NeedsOfflineTraining { .. })));
}

#[test]
fn stats_op_reflects_served_requests() {
    // The telemetry registry is process-global, so other tests running in
    // this binary contribute too: assert deltas with >=, never exact counts.
    let controller = serve_tiny();
    let mut client =
        ControllerClient::connect_with_timeout(controller.addr(), std::time::Duration::from_secs(10))
            .unwrap();

    let before = client.stats().unwrap();
    let ok_before = before.counter("controller.requests_ok").unwrap_or(0);
    let err_before = before.counter("controller.requests_err").unwrap_or(0);

    for _ in 0..3 {
        let req = PredictionRequest::zoo(
            Workload::new("resnet18", "cifar10", 128, 2),
            ClusterState::homogeneous(ServerClass::GpuP100, 2),
        );
        client.predict(&req).unwrap().unwrap();
    }
    let bad = PredictionRequest::zoo(
        Workload::new("resnet18", "tiny-imagenet", 128, 2), // no GHN in tiny trace
        ClusterState::homogeneous(ServerClass::GpuP100, 2),
    );
    assert!(client.predict(&bad).unwrap().is_err());

    let after = client.stats().unwrap();
    let ok_after = after.counter("controller.requests_ok").unwrap();
    let err_after = after.counter("controller.requests_err").unwrap();
    assert!(ok_after >= ok_before + 3, "ok: {ok_before} -> {ok_after}");
    assert!(err_after > err_before, "err: {err_before} -> {err_after}");
    assert!(ok_after > 0);

    let latency = after.histogram("controller.request_latency").unwrap();
    assert!(latency.count >= 4);
    assert!(latency.p50 <= latency.p95, "{latency:?}");
    assert!(latency.p95 <= latency.p99, "{latency:?}");
    assert!(latency.min <= latency.max, "{latency:?}");

    // The live-connection gauge counts at least this client's connection.
    assert!(after.gauge("controller.active_connections").unwrap_or(0) >= 1);
}

#[test]
fn stats_op_over_raw_wire() {
    use std::io::{BufRead, BufReader, Write};
    let controller = serve_tiny();
    let stream = std::net::TcpStream::connect(controller.addr()).unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    w.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"status\":\"stats\""), "{line}");
    assert!(line.contains("\"snapshot\""), "{line}");
    // Stats requests are not prediction requests and must not count as one.
    assert_eq!(controller.requests_served(), 0);
}

#[test]
fn malformed_line_gets_typed_error() {
    use std::io::{BufRead, BufReader, Write};
    let controller = serve_tiny();
    let stream = std::net::TcpStream::connect(controller.addr()).unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"this is not json\n").unwrap();
    w.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("err"), "{line}");
    assert!(line.contains("malformed"), "{line}");
}
