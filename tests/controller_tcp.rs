//! Controller integration over real TCP: the Fig. 7 listener path.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::Workload;
use predictddl::{Controller, ControllerClient, OfflineTrainer, PredictionRequest, RequestError};

fn serve_tiny() -> Controller {
    let system = OfflineTrainer::tiny().train_full();
    Controller::serve("127.0.0.1:0", system).expect("bind")
}

#[test]
fn predict_over_tcp() {
    let controller = serve_tiny();
    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    );
    let pred = client.predict(&req).unwrap().unwrap();
    assert!(pred.seconds > 0.0);
    assert_eq!(controller.requests_served(), 1);
}

#[test]
fn multiple_requests_on_one_connection() {
    let controller = serve_tiny();
    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    for model in ["resnet18", "vgg16", "squeezenet1_1"] {
        let req = PredictionRequest::zoo(
            Workload::new(model, "cifar10", 128, 2),
            ClusterState::homogeneous(ServerClass::GpuP100, 2),
        );
        let pred = client.predict(&req).unwrap().unwrap();
        assert!(pred.seconds > 0.0, "{model}");
    }
    assert_eq!(controller.requests_served(), 3);
}

#[test]
fn concurrent_clients() {
    let controller = serve_tiny();
    let addr = controller.addr();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = ControllerClient::connect(addr).unwrap();
                let req = PredictionRequest::zoo(
                    Workload::new("resnet18", "cifar10", 128, 2),
                    ClusterState::homogeneous(ServerClass::GpuP100, 1 + i % 4),
                );
                client.predict(&req).unwrap().unwrap().seconds
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 0.0);
    }
    assert_eq!(controller.requests_served(), 6);
}

#[test]
fn error_propagates_over_wire() {
    let controller = serve_tiny();
    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "tiny-imagenet", 128, 2), // no GHN in tiny trace
        ClusterState::homogeneous(ServerClass::CpuE5_2630, 2),
    );
    let result = client.predict(&req).unwrap();
    assert!(matches!(result, Err(RequestError::NeedsOfflineTraining { .. })));
}

#[test]
fn malformed_line_gets_typed_error() {
    use std::io::{BufRead, BufReader, Write};
    let controller = serve_tiny();
    let stream = std::net::TcpStream::connect(controller.addr()).unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"this is not json\n").unwrap();
    w.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("err"), "{line}");
    assert!(line.contains("malformed"), "{line}");
}
