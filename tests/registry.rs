//! Registry tier: crash/torn-write recovery of the checkpoint store,
//! zero-downtime hot reload over real TCP, probe-gated rollback, warm
//! restart of the embedding cache, and the golden manifest fixture
//! pinning the on-disk format.
//!
//! Regenerate the manifest fixture (after an intentional format change)
//! with `PDDL_REGEN_GOLDEN=1 cargo test --test registry`.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::Workload;
use pddl_registry::{
    ArtifactEntry, CrashPlan, CrashPoint, Manifest, ProbeRecord, Registry, FORMAT_VERSION,
};
use predictddl::{
    load_checkpoint, save_checkpoint, spawn_watcher, Controller, ControllerClient, LiveSystem,
    OfflineTrainer, PredictDdl, PredictionRequest, ReloadManager, ServeConfig, SYSTEM_ARTIFACT,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn unique_root(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "pddl-registry-tier-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn tiny_system() -> PredictDdl {
    OfflineTrainer::tiny().train_full()
}

fn fixed_request() -> PredictionRequest {
    PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    )
}

/// Raw (non-checkpoint) artifact set for fast crash-plan sweeps.
fn raw_artifacts() -> Vec<(String, Vec<u8>)> {
    vec![
        ("system.json".to_string(), (0..2048u32).flat_map(|i| i.to_le_bytes()).collect()),
        ("embed_cache.json".to_string(), vec![7u8; 513]),
    ]
}

/// The acceptance sweep: for every seeded crash plan, a publish that dies
/// mid-write must leave the registry recoverable — a fresh open() (the
/// "process restart") lands on the newest *verifiable* version, the
/// debris is quarantined (never deleted), and the recovered version's
/// artifacts re-verify on read. 100% of seeds, no exceptions.
#[test]
fn open_recovers_newest_verifiable_version_for_every_seed() {
    let arts = raw_artifacts();
    for seed in 0..32u64 {
        let root = unique_root("seed");
        let good = {
            let (reg, _) = Registry::open(&root, 0).unwrap();
            reg.publish("good-1", &arts, &[]).unwrap();
            let good = reg.publish("good-2", &arts, &[]).unwrap();
            let crash = CrashPlan::new(seed).pick(&arts);
            let doomed = reg.publish_crashing("doomed", &arts, crash).unwrap();
            assert!(doomed > good, "seed {seed}: doomed version is newer");
            good
        };
        // Process restart: recovery must land on the last good version.
        let (reg, report) = Registry::open(&root, 0).unwrap();
        assert_eq!(
            report.recovered,
            Some(good),
            "seed {seed}: open() must recover the newest verifiable version"
        );
        assert_eq!(reg.latest(), Some(good), "seed {seed}");
        for (name, bytes) in &arts {
            assert_eq!(
                &reg.read_artifact(good, name).unwrap(),
                bytes,
                "seed {seed}: recovered artifact {name} content-verified"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }
}

/// A process killed mid-checkpoint of a *real* trained system can never
/// make a restarted server observe half a model: the torn candidate is
/// quarantined and the previous checkpoint serves bit-identical
/// predictions.
#[test]
fn crash_mid_checkpoint_never_serves_half_swapped_model() {
    let system = tiny_system();
    let req = fixed_request();
    let baseline = system.predict(&req).unwrap().seconds.to_bits();

    let root = unique_root("kill");
    let v1 = {
        let (reg, _) = Registry::open(&root, 4).unwrap();
        let v1 = save_checkpoint(&reg, &system, "good").unwrap();
        // The "new model" dies mid-write in the worst way: the artifact is
        // committed truncated while the manifest records the full hash —
        // only content verification can catch it.
        let system_json = reg.read_artifact(v1, SYSTEM_ARTIFACT).unwrap();
        let keep = system_json.len() / 2;
        let arts = vec![(SYSTEM_ARTIFACT.to_string(), system_json)];
        reg.publish_crashing("killed", &arts, CrashPoint::TornCommitted { artifact: 0, keep })
            .unwrap();
        v1
    };

    // Restart: open recovers v1, quarantines the torn candidate, and the
    // loaded checkpoint reproduces the original predictions exactly.
    let (reg, report) = Registry::open(&root, 4).unwrap();
    assert_eq!(report.recovered, Some(v1));
    assert_eq!(report.quarantined.len(), 1, "torn candidate quarantined");
    let loaded = load_checkpoint(&reg, v1).unwrap();
    assert_eq!(
        loaded.predict(&req).unwrap().seconds.to_bits(),
        baseline,
        "recovered checkpoint is bit-identical"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// The headline acceptance test: live reload during load drops zero
/// requests, and an unchanged model predicts bit-identically across the
/// swap.
#[test]
fn tcp_reload_under_load_drops_nothing_and_is_bit_identical() {
    let system = tiny_system();
    let root = unique_root("live");
    let (registry, _) = Registry::open(&root, 4).unwrap();
    let v1 = save_checkpoint(&registry, &system, "v1").unwrap();
    // v2 is the same model republished — the "retrain produced an
    // unchanged system" case where bit-identity must hold across the swap.
    let v2 = save_checkpoint(&registry, &load_checkpoint(&registry, v1).unwrap(), "v2").unwrap();

    let serving = load_checkpoint(&registry, v1).unwrap();
    let live = Arc::new(LiveSystem::new(serving, v1));
    let manager = ReloadManager::new(registry, Arc::clone(&live));
    let controller =
        Controller::serve_live("127.0.0.1:0", Arc::clone(&live), ServeConfig::default(), Some(manager))
            .unwrap();
    let addr = controller.addr();

    let req = fixed_request();
    let mut probe = ControllerClient::connect(addr).unwrap();
    let before = probe.predict(&req).unwrap().unwrap().seconds.to_bits();

    // Load generators: hammer predictions across the swap; every single
    // request must succeed (no sheds, no transport errors, no app errors).
    let stop = Arc::new(AtomicBool::new(false));
    let loadgen: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let req = req.clone();
            std::thread::spawn(move || -> Result<(usize, Vec<u64>), String> {
                let mut client =
                    ControllerClient::connect(addr).map_err(|e| e.to_string())?;
                let mut ok = 0usize;
                let mut bits = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let pred = client
                        .predict(&req)
                        .map_err(|e| format!("transport: {e}"))?
                        .map_err(|e| format!("app: {e}"))?;
                    bits.push(pred.seconds.to_bits());
                    ok += 1;
                }
                Ok((ok, bits))
            })
        })
        .collect();

    // Let the load run, then swap mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    let reply = probe.reload(Some(v2)).unwrap().expect("reload accepted");
    assert_eq!((reply.version, reply.previous, reply.epoch), (v2, v1, 1));
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Release);

    let mut total = 0usize;
    for h in loadgen {
        let (ok, bits) = h.join().unwrap().expect("zero dropped/failed requests");
        total += ok;
        for b in bits {
            assert_eq!(b, before, "prediction drifted across the hot swap");
        }
    }
    assert!(total > 0, "load generators actually ran ({total} requests)");
    assert_eq!(controller.live_version(), v2);
    assert_eq!(controller.live_epoch(), 1);
    let after = probe.predict(&req).unwrap().unwrap().seconds.to_bits();
    assert_eq!(after, before, "unchanged model is bit-identical after reload");
    std::fs::remove_dir_all(&root).ok();
}

/// A candidate failing its golden probes is rejected over the wire with
/// the typed line; the old version keeps serving untouched.
#[test]
fn failing_probe_is_rejected_over_tcp_and_rolls_back() {
    let system = tiny_system();
    let root = unique_root("rollback");
    let (registry, _) = Registry::open(&root, 4).unwrap();
    let v1 = save_checkpoint(&registry, &system, "good").unwrap();
    // Poisoned candidate: valid system artifact, impossible probe.
    let system_json = registry.read_artifact(v1, SYSTEM_ARTIFACT).unwrap();
    let poisoned = vec![ProbeRecord::from_seconds("poisoned|probe", 987654.321)];
    let v2 = registry
        .publish("poisoned", &[(SYSTEM_ARTIFACT.to_string(), system_json)], &poisoned)
        .unwrap();

    let live = Arc::new(LiveSystem::new(load_checkpoint(&registry, v1).unwrap(), v1));
    let manager = ReloadManager::new(registry, Arc::clone(&live));
    let controller =
        Controller::serve_live("127.0.0.1:0", live, ServeConfig::default(), Some(manager)).unwrap();

    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    let req = fixed_request();
    let before = client.predict(&req).unwrap().unwrap().seconds.to_bits();

    let verdict = client.reload(Some(v2)).unwrap();
    let reason = verdict.expect_err("poisoned candidate must be rejected");
    assert!(
        reason.starts_with("probe_mismatch:"),
        "typed rejection reason, got: {reason}"
    );
    assert_eq!(controller.live_version(), v1, "rollback: v1 still live");
    assert_eq!(controller.live_epoch(), 0, "no swap happened");
    let after = client.predict(&req).unwrap().unwrap().seconds.to_bits();
    assert_eq!(after, before, "old model keeps serving, bit-identical");
    std::fs::remove_dir_all(&root).ok();
}

/// A controller without a registry answers the reload op with the typed
/// `no_registry` rejection instead of an untyped error.
#[test]
fn reload_without_registry_is_rejected_typed() {
    let controller = Controller::serve("127.0.0.1:0", tiny_system()).unwrap();
    let mut client = ControllerClient::connect(controller.addr()).unwrap();
    assert_eq!(client.reload(None).unwrap(), Err("no_registry".to_string()));
    // The connection survives the rejection — it is a reply, not a hangup.
    assert!(client.predict(&fixed_request()).unwrap().is_ok());
}

/// Warm restart: a fresh process opening the registry gets the embedding
/// cache exactly as the publisher left it, so resident workloads skip the
/// GHN forward pass from the first request on.
#[test]
fn warm_restart_rehydrates_embedding_cache() {
    let system = tiny_system();
    let req = fixed_request();
    system.predict(&req).unwrap(); // warm one entry
    let warmed = system.cache.snapshot_entries();
    assert!(!warmed.is_empty(), "prediction warmed the cache");

    let root = unique_root("warm");
    let v = {
        let (reg, _) = Registry::open(&root, 4).unwrap();
        save_checkpoint(&reg, &system, "warm").unwrap()
    };
    // "New process": a fresh registry handle over the same root.
    let (reg, _) = Registry::open(&root, 4).unwrap();
    let restarted = load_checkpoint(&reg, v).unwrap();
    assert_eq!(restarted.cache.snapshot_entries(), warmed);
    let stats_before = restarted.cache.stats();
    restarted.predict(&req).unwrap();
    let stats_after = restarted.cache.stats();
    assert_eq!(
        stats_after.hits,
        stats_before.hits + 1,
        "first request after warm restart is a cache hit"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// `serve --watch-registry`: the poller notices a version published by an
/// external process handle and swaps to it without any wire op.
#[test]
fn watcher_auto_reloads_externally_published_version() {
    let system = tiny_system();
    let root = unique_root("watch");
    let (registry, _) = Registry::open(&root, 4).unwrap();
    let v1 = save_checkpoint(&registry, &system, "v1").unwrap();

    let live = Arc::new(LiveSystem::new(load_checkpoint(&registry, v1).unwrap(), v1));
    let manager = ReloadManager::new(registry, Arc::clone(&live));
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = spawn_watcher(Arc::clone(&manager), Duration::from_millis(20), Arc::clone(&stop));

    // External retrainer: a separate handle over the same root.
    let (external, _) = Registry::open(&root, 4).unwrap();
    let v2 = save_checkpoint(&external, &system, "v2").unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while live.version() != v2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Release);
    watcher.join().unwrap();
    assert_eq!(live.version(), v2, "watcher swapped to the external publish");
    assert_eq!(live.epoch(), 1);
    std::fs::remove_dir_all(&root).ok();
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join("registry_manifest.json")
}

/// Deterministic sample manifest: every field class the format carries
/// (escaped label, multiple artifacts, probe bit patterns).
fn golden_manifest() -> Manifest {
    Manifest {
        format: FORMAT_VERSION,
        version: 42,
        created_unix: 1_722_470_400,
        label: "nightly \"retrain\" #7".to_string(),
        precision: "bf16".to_string(),
        artifacts: vec![
            ArtifactEntry { name: "system.json".into(), len: 8192, fnv1a: 0xcbf2_9ce4_8422_2325 },
            ArtifactEntry { name: "embed_cache.json".into(), len: 517, fnv1a: 0x0100_0000_01b3_0000 },
        ],
        probes: vec![
            ProbeRecord::from_seconds("resnet18|cifar10|b128|e2|GpuP100x4", 1234.5625),
            ProbeRecord::from_seconds("vgg16|cifar10|b128|e2|CpuE5_2630x8", 0.1),
        ],
    }
}

/// Pins the on-disk manifest JSON byte-for-byte. A failing diff means the
/// checkpoint format changed: bump `FORMAT_VERSION` (old readers must
/// reject newer manifests) and regenerate with `PDDL_REGEN_GOLDEN=1`.
#[test]
fn manifest_format_matches_golden_fixture() {
    let rendered = golden_manifest().to_json();
    let path = fixture_path();
    if std::env::var("PDDL_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("registry manifest fixture regenerated — commit the fixture diff");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with PDDL_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        stored,
        rendered,
        "manifest rendering drifted from the pinned on-disk format \
         (intentional? bump FORMAT_VERSION and regenerate with PDDL_REGEN_GOLDEN=1)"
    );
    // And the pinned bytes still parse back to the same manifest.
    assert_eq!(Manifest::from_json(&stored).unwrap(), golden_manifest());
}
