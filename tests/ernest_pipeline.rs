//! Ernest baseline end-to-end: experiment design → simulated collection →
//! NNLS fit → prediction, plus the pooled-vs-per-workload contrast that
//! drives the paper's Fig. 9 comparison.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use pddl_ernest::design::{default_candidates, greedy_a_optimal};
use pddl_ernest::model::{ErnestModel, ErnestSample};

fn collect_samples(sim: &Simulator, w: &Workload, class: ServerClass) -> Vec<ErnestSample> {
    let candidates = default_candidates(8);
    let picks = greedy_a_optimal(&candidates, 7);
    picks
        .iter()
        .map(|&i| {
            let c = candidates[i];
            let cluster = ClusterState::homogeneous(class, c.machines);
            let mut probe = w.clone();
            probe.epochs = 1;
            let secs = sim.expected_time(&probe, &cluster).unwrap() * c.scale;
            ErnestSample { scale: c.scale, machines: c.machines, time_secs: secs }
        })
        .collect()
}

/// Per-workload Ernest (its NSDI use case) predicts the SAME workload's
/// scaling with moderate error on CPU clusters, where runtime is dominated
/// by the s/m work term Ernest models well.
#[test]
fn per_workload_ernest_is_reasonable_on_cpu_scaling() {
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::new("vgg16", "tiny-imagenet", 128, 1);
    let samples = collect_samples(&sim, &w, ServerClass::CpuE5_2630);
    let model = ErnestModel::fit(&samples);
    assert!(model.is_physical());
    for n in [4usize, 8] {
        let cluster = ClusterState::homogeneous(ServerClass::CpuE5_2630, n);
        let actual = sim.expected_time(&w, &cluster).unwrap();
        let pred = model.predict(1.0, n);
        let ratio = pred / actual;
        assert!(
            (0.4..2.5).contains(&ratio),
            "per-workload Ernest ratio {ratio} at n={n}"
        );
    }
}

/// Pooled Ernest (one black-box model over many architectures — the
/// reusability scenario of Fig. 9) collapses to an average curve: fast
/// architectures are over-predicted and slow ones under-predicted.
#[test]
fn pooled_ernest_averages_across_architectures() {
    let sim = Simulator::new(SimConfig::default());
    let models = ["squeezenet1_1", "vgg16", "resnet50", "alexnet"];
    // Pool full-scale observations from all workloads, as a black box that
    // cannot distinguish them.
    let mut pooled = Vec::new();
    for m in models {
        let w = Workload::new(m, "cifar10", 128, 2);
        for n in [1usize, 2, 4, 8, 16] {
            let cluster = ClusterState::homogeneous(ServerClass::GpuP100, n);
            pooled.push(ErnestSample {
                scale: 1.0,
                machines: n,
                time_secs: sim.expected_time(&w, &cluster).unwrap(),
            });
        }
    }
    let model = ErnestModel::fit(&pooled);

    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
    let fast = Workload::new("squeezenet1_1", "cifar10", 128, 2);
    let slow = Workload::new("vgg16", "cifar10", 128, 2);
    let fast_ratio =
        model.predict(1.0, 4) / sim.expected_time(&fast, &cluster).unwrap();
    let slow_ratio =
        model.predict(1.0, 4) / sim.expected_time(&slow, &cluster).unwrap();
    assert!(fast_ratio > 1.3, "fast workload should be over-predicted: {fast_ratio}");
    assert!(slow_ratio < 0.8, "slow workload should be under-predicted: {slow_ratio}");
}

/// The experiment design picks cheap (small-scale, few-machine) runs — total
/// collection cost must be far below one full training run of the target.
#[test]
fn designed_collection_is_cheaper_than_full_run() {
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::new("resnet50", "cifar10", 128, 10);
    let samples = collect_samples(&sim, &w, ServerClass::GpuP100);
    let collection: f64 = samples.iter().map(|s| s.time_secs).sum();
    let full = sim
        .expected_time(&w, &ClusterState::homogeneous(ServerClass::GpuP100, 4))
        .unwrap();
    assert!(
        collection < 2.0 * full,
        "collection {collection:.0}s vs full run {full:.0}s"
    );
}
