//! Seeded wire-layer fuzzing: arbitrary, truncated, and corrupted bytes
//! fed into the bounded frame reader and both request parsers must come
//! back as structured errors (or clean parses) — never a panic, never an
//! unbounded buffer.
//!
//! The generator is a [`pddl_faults::FaultRng`], so every failure is
//! reproducible from the seed printed in the assertion message. 10 000
//! cases per seed, three seeds.

use pddl_cluster::protocol::{read_line_bounded, read_msg_bounded, ClientMsg, WireError};
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::Workload;
use pddl_faults::FaultRng;
use predictddl::{parse_frame, ParsedFrame, PredictionRequest, RequestEnvelope, TraceHeader};
use std::io::BufReader;

const CASES_PER_SEED: usize = 10_000;
const SEEDS: [u64; 3] = [1, 42, 0xDEAD_BEEF];

/// Frame bound used throughout the fuzz run — small enough that the
/// generator can exceed it cheaply.
const LIMIT: usize = 1024;

fn sample_request(rng: &mut FaultRng) -> PredictionRequest {
    let models = ["resnet18", "vgg16", "mobilenet_v2", "alexnet"];
    let model = models[rng.below(models.len() as u64) as usize];
    PredictionRequest::zoo(
        Workload::new(model, "cifar10", 32 << rng.below(4), 1 + rng.below(8) as usize),
        ClusterState::homogeneous(ServerClass::GpuP100, 1 + rng.below(16) as usize),
    )
}

/// One adversarial byte buffer. Mixes pure noise, printable noise, and
/// mutations (bit flips, truncations, splices) of well-formed frames.
fn gen_case(rng: &mut FaultRng) -> Vec<u8> {
    match rng.below(6) {
        // Pure random bytes, newlines included by chance.
        0 => (0..rng.below(256)).map(|_| rng.byte()).collect(),
        // Random printable ASCII line.
        1 => {
            let mut buf: Vec<u8> =
                (0..rng.below(200)).map(|_| 0x20 + (rng.byte() % 0x5f)).collect();
            buf.push(b'\n');
            buf
        }
        // A valid frame with a few corrupted bytes.
        2 => {
            let mut buf = serde_json::to_string(&sample_request(rng)).unwrap().into_bytes();
            for _ in 0..1 + rng.below(4) {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] = rng.byte();
            }
            buf.push(b'\n');
            buf
        }
        // A valid frame cut off mid-token (no terminator: EOF mid-frame).
        3 => {
            let full = serde_json::to_string(&sample_request(rng)).unwrap().into_bytes();
            let cut = 1 + rng.below(full.len() as u64 - 1) as usize;
            full[..cut].to_vec()
        }
        // Two frames spliced at random cut points.
        4 => {
            let a = serde_json::to_string(&sample_request(rng)).unwrap().into_bytes();
            let b = serde_json::to_string(&sample_request(rng)).unwrap().into_bytes();
            let ca = rng.below(a.len() as u64) as usize;
            let cb = rng.below(b.len() as u64) as usize;
            let mut buf = a[..ca].to_vec();
            buf.extend_from_slice(&b[cb..]);
            buf.push(b'\n');
            buf
        }
        // Deep but in-bounds noise right up against the frame limit.
        _ => {
            let len = LIMIT - 1 - rng.below(32) as usize;
            let mut buf: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
            buf.retain(|&b| b != b'\n');
            buf.push(b'\n');
            buf
        }
    }
}

/// Drains a byte buffer through the bounded reader exactly as a connection
/// handler would, feeding every extracted line to both parsers. Returns on
/// EOF or the first structured error; panics only if a parser panics —
/// which is the bug class this test exists to catch.
fn drain(bytes: &[u8], buf_cap: usize, seed: u64, case: usize) {
    let mut reader = BufReader::with_capacity(buf_cap, bytes);
    loop {
        match read_line_bounded(&mut reader, LIMIT) {
            Ok(None) => break,
            Ok(Some(line)) => {
                assert!(
                    line.len() <= LIMIT,
                    "seed {seed} case {case}: line over limit ({} bytes)",
                    line.len()
                );
                // Both peer-facing parsers must classify or reject.
                let _ = parse_frame(&line);
            }
            Err(WireError::FrameTooLong { .. }) => break,
            Err(WireError::Malformed { .. }) => continue,
            Err(WireError::Io(e)) => panic!("seed {seed} case {case}: io error {e}"),
        }
    }
    // The typed-message reader takes the same bytes without panicking.
    let mut reader = BufReader::with_capacity(buf_cap, bytes);
    loop {
        match read_msg_bounded::<ClientMsg>(&mut reader, LIMIT) {
            Ok(None) => break,
            Ok(Some(_)) => continue,
            Err(_) => break,
        }
    }
}

#[test]
fn arbitrary_bytes_never_panic_the_wire_layer() {
    for seed in SEEDS {
        let mut rng = FaultRng::new(seed);
        for case in 0..CASES_PER_SEED {
            let bytes = gen_case(&mut rng);
            // Tiny buffer capacities exercise fill_buf boundary handling.
            let cap = 8 + rng.below(120) as usize;
            drain(&bytes, cap, seed, case);
        }
    }
}

#[test]
fn fuzz_is_seed_deterministic() {
    let gen_all = |seed: u64| -> Vec<Vec<u8>> {
        let mut rng = FaultRng::new(seed);
        (0..64).map(|_| gen_case(&mut rng)).collect()
    };
    assert_eq!(gen_all(99), gen_all(99));
    assert_ne!(gen_all(99), gen_all(100));
}

#[test]
fn overlong_frames_get_structured_rejection() {
    let mut rng = FaultRng::new(7);
    for case in 0..200 {
        let len = LIMIT + 1 + rng.below(4 * LIMIT as u64) as usize;
        let mut bytes: Vec<u8> = (0..len)
            .map(|_| match rng.byte() {
                b'\n' => b'x',
                b => b,
            })
            .collect();
        // Half the cases never terminate the line at all.
        if rng.below(2) == 0 {
            bytes.push(b'\n');
        }
        let mut reader = BufReader::with_capacity(32, bytes.as_slice());
        match read_line_bounded(&mut reader, LIMIT) {
            Err(WireError::FrameTooLong { limit }) => assert_eq!(limit, LIMIT),
            other => panic!("case {case}: expected FrameTooLong, got {other:?}"),
        }
    }
}

#[test]
fn valid_frames_always_classify() {
    let mut rng = FaultRng::new(0xF00D);
    for _ in 0..500 {
        let req = sample_request(&mut rng);
        let single = serde_json::to_string(&req).unwrap();
        assert!(matches!(parse_frame(&single), Ok(ParsedFrame::Single(_))), "{single}");

        let batch = serde_json::to_string(&vec![req.clone(), req.clone()]).unwrap();
        assert!(matches!(parse_frame(&batch), Ok(ParsedFrame::Batch(b)) if b.len() == 2));

        // Alternate bare and trace-carrying envelopes: both wire shapes
        // must classify, and the header must survive the round trip.
        let trace = (rng.below(2) == 0).then(|| TraceHeader {
            trace_id: rng.next_u64(),
            span_id: rng.next_u64(),
            parent_id: 0,
        });
        let env = RequestEnvelope { client: rng.next_u64(), id: rng.next_u64(), trace, req };
        let enveloped = serde_json::to_string(&env).unwrap();
        match parse_frame(&enveloped) {
            Ok(ParsedFrame::Enveloped(e)) => {
                assert_eq!((e.client, e.id), (env.client, env.id));
                assert_eq!(
                    e.trace.map(|t| (t.trace_id, t.span_id)),
                    env.trace.map(|t| (t.trace_id, t.span_id)),
                );
            }
            other => panic!("envelope misclassified: {other:?}"),
        }
    }
    assert!(matches!(parse_frame("{\"op\":\"stats\"}"), Ok(ParsedFrame::Stats)));
    assert!(matches!(parse_frame("{\"op\":\"trace\"}"), Ok(ParsedFrame::Trace)));
    assert!(matches!(parse_frame("{\"op\":\"metrics\"}"), Ok(ParsedFrame::Metrics)));
    assert!(parse_frame("not json").is_err());
    assert!(parse_frame("[{\"bad\":1}]").is_err());
}
