//! End-to-end integration: simulator trace → offline training → reusable
//! predictions, across crates.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{generate_trace, SimConfig, Simulator, TraceConfig, Workload};
use pddl_regress::metrics::mean_relative_error;
use pddl_regress::split::train_test_split;
use predictddl::{OfflineTrainer, PredictionRequest};

/// A medium-size pipeline: train on 80% of a multi-model CIFAR-10 trace,
/// verify held-out relative error is small (the paper reports 1–4% on
/// CIFAR-10; we allow a loose 25% bound for the tiny-GHN test config).
#[test]
fn offline_training_predicts_heldout_configurations() {
    let mut trace_cfg = TraceConfig::small();
    trace_cfg.models = vec![
        "resnet18".into(),
        "vgg16".into(),
        "squeezenet1_1".into(),
        "alexnet".into(),
        "mobilenet_v3_small".into(),
        "efficientnet_b0".into(),
    ];
    trace_cfg.server_counts = vec![1, 2, 4, 6, 8, 12, 16];
    let records = generate_trace(&trace_cfg);
    assert!(records.len() > 30);

    let (train_idx, test_idx) = train_test_split(records.len(), 0.8, 42);
    let train: Vec<_> = train_idx.iter().map(|&i| records[i].clone()).collect();

    let mut trainer = OfflineTrainer::tiny();
    trainer.ghn_train.num_graphs = 48;
    trainer.ghn_train.epochs = 15;
    let system = trainer.train_from_records(&train);

    let mut pred = Vec::new();
    let mut actual = Vec::new();
    for &i in &test_idx {
        let r = &records[i];
        let p = system
            .predict_workload(&r.workload, &r.cluster())
            .expect("prediction succeeds");
        pred.push(p.seconds as f32);
        actual.push(r.time_secs as f32);
    }
    let err = mean_relative_error(&pred, &actual);
    assert!(err < 0.25, "held-out mean relative error {err}");
}

/// The full prediction flow through the request API, including the nearest-
/// architecture diagnostics.
#[test]
fn prediction_response_is_complete() {
    let system = OfflineTrainer::tiny().train_full();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    );
    let pred = system.predict(&req).unwrap();
    assert!(pred.seconds > 0.0);
    let (name, sim) = pred.nearest_architecture.unwrap();
    assert_eq!(name, "resnet18", "self-match expected");
    assert!(sim > 0.999);
}

/// The simulator's own expectation should correlate strongly with PredictDDL
/// predictions across the zoo (sanity of the whole stack).
#[test]
fn predictions_track_simulator_ordering() {
    let system = OfflineTrainer::tiny().train_full();
    let sim = Simulator::new(SimConfig::default());
    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
    // vgg16 is in the tiny trace; squeezenet1_1 too. Predicted ordering must
    // match simulated ordering.
    let t_small = system
        .predict_workload(&Workload::new("squeezenet1_1", "cifar10", 128, 2), &cluster)
        .unwrap()
        .seconds;
    let t_big = system
        .predict_workload(&Workload::new("vgg16", "cifar10", 128, 2), &cluster)
        .unwrap()
        .seconds;
    let s_small = sim
        .expected_time(&Workload::new("squeezenet1_1", "cifar10", 128, 2), &cluster)
        .unwrap();
    let s_big = sim
        .expected_time(&Workload::new("vgg16", "cifar10", 128, 2), &cluster)
        .unwrap();
    assert!(s_big > s_small);
    assert!(t_big > t_small, "predicted ordering inverted: {t_small} vs {t_big}");
}

/// Malformed requests fail with typed errors, not panics.
#[test]
fn failure_injection_bad_requests() {
    let system = OfflineTrainer::tiny().train_full();
    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 2);

    // Unknown model.
    let r = system.predict(&PredictionRequest::zoo(
        Workload::new("gpt99", "cifar10", 128, 2),
        cluster.clone(),
    ));
    assert!(matches!(r, Err(predictddl::RequestError::UnknownModel(_))));

    // Zero batch.
    let r = system.predict(&PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 0, 2),
        cluster.clone(),
    ));
    assert!(matches!(r, Err(predictddl::RequestError::InvalidParams(_))));

    // Empty cluster.
    let r = system.predict(&PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::default(),
    ));
    assert!(matches!(r, Err(predictddl::RequestError::InvalidCluster(_))));
}
