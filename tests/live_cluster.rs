//! Integration: the Cluster Resource Collector feeding live snapshots into
//! prediction — the full §III-F → §III-C data path, over real TCP.

use pddl_cluster::{CollectorClient, CollectorServer, ServerClass, ServerSpec};
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use predictddl::{OfflineTrainer, PredictionRequest};

#[test]
fn collector_snapshot_drives_prediction() {
    // Stand up the collector and join four GPU nodes.
    let server = CollectorServer::bind("127.0.0.1:0", 2).unwrap();
    let mut clients = Vec::new();
    for i in 0..4 {
        let spec = ServerSpec::preset(ServerClass::GpuP100, format!("gpu-{i}"));
        clients.push(CollectorClient::register(server.addr(), spec).unwrap());
    }
    let snapshot = server.snapshot();
    assert_eq!(snapshot.num_servers(), 4);

    // Predict on the live snapshot.
    let system = OfflineTrainer::tiny().train_full();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        snapshot.clone(),
    );
    let pred = system.predict(&req).unwrap();
    assert!(pred.seconds > 0.0);

    // The same snapshot must be simulatable (ground-truth path).
    let sim = Simulator::new(SimConfig::default());
    let actual = sim
        .expected_time(&Workload::new("resnet18", "cifar10", 128, 2), &snapshot)
        .unwrap();
    let ratio = pred.seconds / actual;
    assert!((0.3..3.0).contains(&ratio), "live-cluster ratio {ratio}");
}

#[test]
fn utilization_changes_flow_into_features() {
    let server = CollectorServer::bind("127.0.0.1:0", 2).unwrap();
    let mut clients = Vec::new();
    for i in 0..3 {
        let spec = ServerSpec::preset(ServerClass::CpuE5_2630, format!("cpu-{i}"));
        clients.push(CollectorClient::register(server.addr(), spec).unwrap());
    }
    let idle = server.snapshot().feature_vector();
    // Load up one node; the mean-utilization feature and available-RAM
    // feature must both move.
    clients[0].heartbeat(0.9, 0).unwrap();
    let loaded = server.snapshot().feature_vector();
    assert!(loaded[7] > idle[7], "mean utilization did not rise");
    assert!(loaded[3] < idle[3], "available RAM did not fall");
}

#[test]
fn departed_node_shrinks_the_cluster_seen_by_the_simulator() {
    let server = CollectorServer::bind("127.0.0.1:0", 2).unwrap();
    let mut clients = Vec::new();
    for i in 0..3 {
        let spec = ServerSpec::preset(ServerClass::GpuP100, format!("gpu-{i}"));
        clients.push(CollectorClient::register(server.addr(), spec).unwrap());
    }
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::new("vgg16", "cifar10", 128, 1);
    let t3 = sim.expected_time(&w, &server.snapshot()).unwrap();
    clients.pop().unwrap().leave().unwrap();
    let t2 = sim.expected_time(&w, &server.snapshot()).unwrap();
    assert_eq!(server.snapshot().num_servers(), 2);
    // VGG-16 is compute-bound: fewer workers → slower.
    assert!(t2 > t3, "losing a worker should slow training: {t3} -> {t2}");
}
