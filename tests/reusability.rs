//! The paper's central claim: the prediction model is trained **once per
//! dataset** and reused for architectures it never saw, without retraining.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{generate_trace, SimConfig, Simulator, TraceConfig, Workload};
use pddl_regress::metrics::mean_relative_error;
use predictddl::OfflineTrainer;

/// Train on a subset of architectures; predict an architecture that is NOT
/// in the training trace (same dataset). Error must stay bounded — the GHN
/// embedding generalizes across architectures.
#[test]
fn predicts_unseen_architecture_without_retraining() {
    // Train WITHOUT resnet34/vgg13 (held-out architectures).
    let mut cfg = TraceConfig::small();
    cfg.models = vec![
        "resnet18".into(),
        "resnet50".into(),
        "vgg11".into(),
        "vgg16".into(),
        "squeezenet1_0".into(),
        "squeezenet1_1".into(),
        "alexnet".into(),
        "mobilenet_v2".into(),
        "mobilenet_v3_small".into(),
        "efficientnet_b0".into(),
        "densenet121".into(),
    ];
    cfg.server_counts = vec![1, 2, 4, 8, 12, 16];
    let records = generate_trace(&cfg);

    let mut trainer = OfflineTrainer::tiny();
    trainer.ghn_train.num_graphs = 64;
    trainer.ghn_train.epochs = 20;
    let system = trainer.train_from_records(&records);

    // Predict the held-out architectures at configs inside the sweep range.
    let sim = Simulator::new(SimConfig::default());
    let mut pred = Vec::new();
    let mut actual = Vec::new();
    for model in ["resnet34", "vgg13"] {
        for n in [2usize, 4, 8] {
            let w = Workload::new(model, "cifar10", 128, 2);
            let cluster = ClusterState::homogeneous(ServerClass::GpuP100, n);
            pred.push(system.predict_workload(&w, &cluster).unwrap().seconds as f32);
            actual.push(sim.expected_time(&w, &cluster).unwrap() as f32);
        }
    }
    let err = mean_relative_error(&pred, &actual);
    // Unseen-architecture error is necessarily larger than in-trace error,
    // but must remain usable (paper's motivation: black boxes fail here
    // entirely).
    assert!(err < 0.5, "unseen-architecture error {err}");
}

/// Interpolation between family members: resnet34 predictions must land
/// between resnet18 and resnet50 at the same cluster config.
#[test]
fn unseen_family_member_interpolates() {
    let mut cfg = TraceConfig::small();
    cfg.models = vec![
        "resnet18".into(),
        "resnet50".into(),
        "vgg16".into(),
        "squeezenet1_1".into(),
    ];
    cfg.server_counts = vec![1, 2, 4, 8];
    let records = generate_trace(&cfg);
    let mut trainer = OfflineTrainer::tiny();
    trainer.ghn_config.hidden_dim = 16;
    trainer.ghn_config.mlp_hidden = 16;
    trainer.ghn_train.num_graphs = 80;
    trainer.ghn_train.epochs = 25;
    let system = trainer.train_from_records(&records);

    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
    let t = |m: &str| {
        system
            .predict_workload(&Workload::new(m, "cifar10", 128, 2), &cluster)
            .unwrap()
            .seconds
    };
    let (t18, t34, t50) = (t("resnet18"), t("resnet34"), t("resnet50"));
    // The unseen resnet34 must land strictly above resnet18 and at most
    // marginally above resnet50 (small-GHN test config gets a 15% slack on
    // the upper bound).
    assert!(
        t18 < t34 && t34 < 1.15 * t50,
        "family ordering broken: r18={t18:.1} r34={t34:.1} r50={t50:.1}"
    );
}

/// Changing only the cluster (not the workload) requires no retraining and
/// tracks the scaling direction of the simulator.
#[test]
fn same_model_different_cluster_no_retraining() {
    let system = {
        let mut cfg = TraceConfig::small();
        cfg.server_counts = vec![1, 2, 4, 8, 16];
        let records = generate_trace(&cfg);
        let mut trainer = OfflineTrainer::tiny();
        trainer.ghn_train.num_graphs = 32;
        trainer.ghn_train.epochs = 12;
        trainer.train_from_records(&records)
    };
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::new("vgg16", "cifar10", 128, 2);
    let t_pred: Vec<f64> = [1usize, 4, 16]
        .iter()
        .map(|&n| {
            system
                .predict_workload(&w, &ClusterState::homogeneous(ServerClass::GpuP100, n))
                .unwrap()
                .seconds
        })
        .collect();
    let t_sim: Vec<f64> = [1usize, 4, 16]
        .iter()
        .map(|&n| {
            sim.expected_time(&w, &ClusterState::homogeneous(ServerClass::GpuP100, n))
                .unwrap()
        })
        .collect();
    // Both should agree that 16 servers beat 1 server for VGG-16.
    assert!(t_sim[2] < t_sim[0]);
    assert!(
        t_pred[2] < t_pred[0],
        "prediction misses scaling: {t_pred:?} vs {t_sim:?}"
    );
}
