//! The §III-G offline-retraining loop: when a request arrives for a dataset
//! with no pretrained GHN, the system collects a trace, trains that
//! dataset's GHN, refits the regression on the union — and existing GHNs
//! are reused, not retrained.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{TraceConfig, Workload};
use predictddl::{OfflineTrainer, RequestError};

fn tiny_trainer() -> OfflineTrainer {
    let mut t = OfflineTrainer::tiny();
    // Keep the extension trace small: restrict models and sweep.
    t.trace = TraceConfig {
        models: vec!["resnet18".into(), "vgg16".into(), "squeezenet1_1".into()],
        dataset_clusters: vec![("cifar10".into(), ServerClass::GpuP100)],
        server_counts: vec![1, 2, 4, 8],
        batch_sizes: vec![128],
        epochs: 2,
        sim: Default::default(),
    };
    t
}

#[test]
fn extension_enables_previously_failing_dataset() {
    let trainer = tiny_trainer();
    let mut system = trainer.train_full(); // CIFAR-10 only
    let cpu = ClusterState::homogeneous(ServerClass::CpuE5_2630, 4);
    let w = Workload::new("resnet18", "tiny-imagenet", 128, 2);

    // Before: the Task Checker routes to offline training.
    assert!(matches!(
        system.predict_workload(&w, &cpu),
        Err(RequestError::NeedsOfflineTraining { .. })
    ));

    // Extend (collects a Tiny-ImageNet trace, trains its GHN, refits).
    let mut ext = tiny_trainer();
    ext.trace.dataset_clusters = vec![("tiny-imagenet".into(), ServerClass::CpuE5_2630)];
    ext.extend_with_dataset(&mut system, "tiny-imagenet").unwrap();

    // After: predictions work for both datasets.
    let pred = system.predict_workload(&w, &cpu).unwrap();
    assert!(pred.seconds > 0.0);
    let gpu = ClusterState::homogeneous(ServerClass::GpuP100, 4);
    let old = system
        .predict_workload(&Workload::new("vgg16", "cifar10", 128, 2), &gpu)
        .unwrap();
    assert!(old.seconds > 0.0, "old dataset must keep working");
}

#[test]
fn existing_ghn_is_reused_not_retrained() {
    let trainer = tiny_trainer();
    let mut system = trainer.train_full();
    // Fingerprint the CIFAR-10 GHN through an embedding.
    let g = pddl_zoo::build_model("resnet18", &pddl_zoo::CIFAR10).unwrap();
    let before = system.registry.get("cifar10").unwrap().embed_graph(&g);

    let mut ext = tiny_trainer();
    ext.trace.dataset_clusters = vec![("tiny-imagenet".into(), ServerClass::CpuE5_2630)];
    ext.extend_with_dataset(&mut system, "tiny-imagenet").unwrap();

    let after = system.registry.get("cifar10").unwrap().embed_graph(&g);
    assert_eq!(before, after, "CIFAR-10 GHN must be byte-identical after extension");
    assert!(system.registry.has("tiny-imagenet"));
}

#[test]
fn extending_known_dataset_is_a_noop() {
    let trainer = tiny_trainer();
    let mut system = trainer.train_full();
    let n_records = system.records.len();
    trainer.extend_with_dataset(&mut system, "cifar10").unwrap();
    assert_eq!(system.records.len(), n_records);
}

#[test]
fn unknown_dataset_extension_errors() {
    let trainer = tiny_trainer();
    let mut system = trainer.train_full();
    let err = trainer
        .extend_with_dataset(&mut system, "imagenet-21k")
        .unwrap_err();
    assert!(err.contains("imagenet-21k"), "{err}");
}
