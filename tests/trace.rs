//! Trace tier: end-to-end request tracing over the TCP controller.
//!
//! Four scenarios, all against an in-process controller speaking real
//! sockets:
//!
//! 1. a client-minted [`TraceContext`] carried through the wire envelope
//!    yields a correctly *parented* span tree in the `{"op":"trace"}`
//!    dump — root `request` span, pipeline children under it, and the
//!    inference stages (`embed_cache` / `ghn_embed` / `regress`) under
//!    the worker's `dispatch` span, with cache hit and miss
//!    distinguished by span status;
//! 2. retained trace ids are **deterministic** under a seeded
//!    [`pddl_faults`] plan: a zero queue deadline sheds every request,
//!    and two identically-seeded chaos rounds retain exactly the
//!    client-minted id set, with retries merged (unique span ids);
//! 3. the trace dump survives wire chaos: with truncating/resetting
//!    faults injected, `{"op":"trace"}` still eventually returns one
//!    frame of valid, parseable JSON;
//! 4. `{"op":"metrics"}` serves Prometheus text exposition naming the
//!    tracing metrics.
//!
//! The flight recorder is process-global, so the scenarios serialize on
//! a lock and reset it at entry.

use pddl_cluster::{ClusterState, RetryPolicy, ServerClass};
use pddl_ddlsim::Workload;
use pddl_faults::FAULT_PLAN_ENV;
use pddl_telemetry::trace::{
    flight_recorder, parse_trace_dump, render_waterfall, stage_id, stages, ParsedTrace,
};
use pddl_telemetry::TraceContext;
use predictddl::{Controller, ControllerClient, OfflineTrainer, PredictionRequest, ServeConfig};
use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Serializes scenarios: they all mutate the process-global recorder.
fn recorder_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn request(model: &str) -> PredictionRequest {
    PredictionRequest::zoo(
        Workload::standard(model, "cifar10"),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    )
}

fn span_set<'a>(t: &'a ParsedTrace, stage: &str) -> Vec<&'a pddl_telemetry::trace::ParsedSpan> {
    t.spans.iter().filter(|s| s.stage == stage).collect()
}

#[test]
fn traced_request_yields_parented_span_tree_over_wire() {
    let _g = recorder_lock().lock().unwrap_or_else(|e| e.into_inner());
    flight_recorder().reset();

    let controller = Controller::serve("127.0.0.1:0", OfflineTrainer::tiny().train_full())
        .expect("bind controller");
    let mut client = ControllerClient::connect(controller.addr()).expect("connect");

    // Same workload twice on one connection: the first embed is a cache
    // miss (GHN forward pass), the second a hit.
    let cold = TraceContext::root(0x7AC0_0001);
    let warm = TraceContext::root(0x7AC0_0002);
    client
        .predict_with_trace(&request("resnet18"), cold)
        .expect("transport")
        .expect("cold prediction");
    client
        .predict_with_trace(&request("resnet18"), warm)
        .expect("transport")
        .expect("warm prediction");

    // Successful requests are only *retained* past their own latency
    // (tail sampling keeps the happy path out of the dump); promote both
    // explicitly so the wire dump must carry the full trees.
    flight_recorder().promote(cold.trace_id, "slow");
    flight_recorder().promote(warm.trace_id, "slow");

    let dump = client.trace_dump().expect("op trace");
    let traces = parse_trace_dump(&dump).expect("parse dump");
    let find = |id: u64| {
        traces
            .iter()
            .find(|t| t.trace_id == id)
            .unwrap_or_else(|| panic!("trace {id:#x} not retained"))
    };
    let cold_t = find(cold.trace_id);
    let warm_t = find(warm.trace_id);

    // Root span: the context's own span id, parent 0, stage `request`.
    let root = span_set(cold_t, stages::REQUEST);
    assert_eq!(root.len(), 1, "exactly one root span");
    assert_eq!(root[0].span_id, cold.span_id);
    assert_eq!(root[0].parent_id, 0);
    assert_eq!(root[0].status, "ok");

    // Pipeline stages recorded by the reader and pool parent directly on
    // the root; `accept` anchors the first traced frame of a connection.
    for stage in [stages::ACCEPT, stages::FRAME_READ, stages::QUEUE_WAIT, stages::SERIALIZE] {
        let spans = span_set(cold_t, stage);
        assert_eq!(spans.len(), 1, "one {stage} span in cold trace");
        assert_eq!(spans[0].parent_id, cold.span_id, "{stage} parented on root");
    }

    // The worker's dispatch span wraps the inference stages: dispatch is
    // a deterministic child of the root, and embed/regress are its
    // children, not the root's.
    let dispatch_ctx = cold.child(stage_id(stages::DISPATCH).wrapping_add(1));
    let dispatch = span_set(cold_t, stages::DISPATCH);
    assert_eq!(dispatch.len(), 1);
    assert_eq!(dispatch[0].span_id, dispatch_ctx.span_id);
    assert_eq!(dispatch[0].parent_id, cold.span_id);
    for stage in [stages::EMBED_CACHE, stages::GHN_EMBED, stages::REGRESS] {
        let spans = span_set(cold_t, stage);
        assert_eq!(spans.len(), 1, "one {stage} span in cold trace");
        assert_eq!(spans[0].parent_id, dispatch_ctx.span_id, "{stage} under dispatch");
    }

    // Cache hit vs miss is visible in span status, and a hit skips the
    // GHN forward pass entirely.
    assert_eq!(span_set(cold_t, stages::EMBED_CACHE)[0].status, "miss");
    assert_eq!(span_set(warm_t, stages::EMBED_CACHE)[0].status, "hit");
    assert!(span_set(warm_t, stages::GHN_EMBED).is_empty(), "warm trace has no ghn_embed");
    // The connection's accept marker belongs to the first traced frame.
    assert!(span_set(warm_t, stages::ACCEPT).is_empty());

    // The CLI waterfall renders every retained stage.
    let waterfall = render_waterfall(&traces);
    for stage in [stages::REQUEST, stages::QUEUE_WAIT, stages::EMBED_CACHE, stages::REGRESS] {
        assert!(waterfall.contains(stage), "waterfall missing {stage}:\n{waterfall}");
    }
}

/// Transport chaos for the fault rounds (no garbage: payload corruption
/// is a different contract — see `tests/wire_fuzz.rs`).
fn plan_spec(seed: u64) -> String {
    format!("seed={seed},delay=0.05:1,reset=0.04,truncate=0.04,garbage=0.0,drop=0.03")
}

fn chaos_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 24,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
        attempt_timeout: Duration::from_millis(500),
        jitter_seed: seed,
    }
}

/// One shed-everything chaos round: returns the retained trace-id set
/// and asserts every retained trace merged its retries (no duplicate
/// span ids).
fn shed_round(seed: u64, trace_ids: &[u64]) -> BTreeSet<u64> {
    flight_recorder().reset();
    let spec = plan_spec(seed);
    std::env::set_var(FAULT_PLAN_ENV, &spec);
    let config = ServeConfig {
        // Zero deadline expires every admitted job: deterministic sheds,
        // so retention does not depend on load timing. A 1ms retry hint
        // keeps the clients' (futile) retry budgets cheap to drain.
        request_deadline: Duration::ZERO,
        retry_after_ms: 1,
        ..ServeConfig::default()
    };
    let controller =
        Controller::serve_with("127.0.0.1:0", OfflineTrainer::tiny().train_full(), config)
            .expect("bind under fault plan");
    std::env::remove_var(FAULT_PLAN_ENV);

    let mut client = ControllerClient::connect_resilient(controller.addr(), chaos_policy(seed))
        .expect("resilient connect");
    let req = request("alexnet");
    for &id in trace_ids {
        // Every attempt sheds; the retry budget drains and the overload
        // surfaces as an error. The *trace* is the product here.
        let _ = client.predict_with_trace(&req, TraceContext::root(id));
    }
    drop(client);
    drop(controller);

    let retained = flight_recorder().retained();
    for t in &retained {
        assert_eq!(t.verdict, "shed", "zero deadline retains as shed");
        let mut ids: Vec<u64> = t.spans.iter().map(|s| s.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), t.spans.len(), "retried trace {:#x} double-recorded spans", t.trace_id);
    }
    retained.iter().map(|t| t.trace_id).collect()
}

#[test]
fn retained_trace_ids_are_deterministic_under_seeded_faults() {
    let _g = recorder_lock().lock().unwrap_or_else(|e| e.into_inner());
    let trace_ids: Vec<u64> = (1..=12u64).map(|i| 0xDE7E_0000 + i).collect();
    let want: BTreeSet<u64> = trace_ids.iter().copied().collect();

    for seed in [11u64, 0xFA57] {
        let first = shed_round(seed, &trace_ids);
        let second = shed_round(seed, &trace_ids);
        // Same seed, same minted ids -> the same retained set, and it is
        // exactly the minted set: chaos reorders and retries requests
        // but cannot invent or lose a trace identity.
        assert_eq!(first, second, "seed {seed}: retained ids diverged between rounds");
        assert_eq!(first, want, "seed {seed}: retained ids are not the minted set");
    }
    flight_recorder().reset();
}

#[test]
fn trace_dump_stays_valid_json_under_wire_faults() {
    let _g = recorder_lock().lock().unwrap_or_else(|e| e.into_inner());
    flight_recorder().reset();

    let spec = plan_spec(0xD1CE);
    std::env::set_var(FAULT_PLAN_ENV, &spec);
    let controller = Controller::serve("127.0.0.1:0", OfflineTrainer::tiny().train_full())
        .expect("bind under fault plan");
    std::env::remove_var(FAULT_PLAN_ENV);

    let mut client = ControllerClient::connect_resilient(controller.addr(), chaos_policy(3))
        .expect("resilient connect");
    for i in 0..8u64 {
        let ctx = TraceContext::root(0xF00D_0000 + i);
        client
            .predict_with_trace(&request("squeezenet1_1"), ctx)
            .expect("request lost despite retry budget")
            .expect("prediction");
        flight_recorder().promote(ctx.trace_id, "slow");
    }

    // The dump op rides the same faulty transport; individual attempts
    // may die to a reset or a truncated frame (hence the fresh
    // read-timeout connection each try), but some attempt must deliver
    // one intact frame of valid JSON.
    let addr = controller.addr();
    let mut parsed = None;
    for _ in 0..32 {
        let Ok(mut probe) =
            ControllerClient::connect_with_timeout(addr, Duration::from_millis(500))
        else {
            continue;
        };
        if let Ok(dump) = probe.trace_dump() {
            parsed = Some(parse_trace_dump(&dump).expect("dump frame is not valid trace JSON"));
            break;
        }
    }
    let traces = parsed.expect("trace dump never survived the fault plan");
    assert!(traces.len() >= 8, "expected all promoted traces, got {}", traces.len());
    assert!(traces.iter().all(|t| !t.spans.is_empty()));
    flight_recorder().reset();
}

#[test]
fn metrics_op_serves_prometheus_exposition() {
    let _g = recorder_lock().lock().unwrap_or_else(|e| e.into_inner());

    let controller = Controller::serve("127.0.0.1:0", OfflineTrainer::tiny().train_full())
        .expect("bind controller");
    let mut client = ControllerClient::connect(controller.addr()).expect("connect");
    client
        .predict_with_trace(&request("vgg16"), TraceContext::root(0x3E7))
        .expect("transport")
        .expect("prediction");

    let expo = client.metrics_text().expect("op metrics");
    for needle in [
        "# TYPE pddl_controller_requests_total counter",
        "# TYPE pddl_trace_stage_queue_wait summary",
        "pddl_controller_traced_requests",
        "pddl_trace_stage_regress_count",
    ] {
        assert!(expo.contains(needle), "exposition missing {needle:?}:\n{expo}");
    }
}
