//! Load tier: the bounded serving core under saturation.
//!
//! Where `tests/soak.rs` asks "does the wire survive faults?", this tier
//! asks "does the controller survive *demand*?". A deliberately tiny
//! serving core (2 workers, queue depth 2 — capacity for 4 requests in
//! flight) is driven by a fleet several times that size, and the test
//! asserts the overload contract end to end:
//!
//! * **accounting** — every request ends in exactly one of two states:
//!   a reply bit-identical (`f64::to_bits`) to a serially computed
//!   ground truth, or a typed `{"error":"overloaded",...}` shed. No
//!   hangs, no silent drops, no third outcome.
//! * **convergence** — resilient clients (`connect_resilient`) treat the
//!   shed as transient, honor the server's `retry_after_ms` hint, and
//!   all complete once their own backoff spreads the load out.
//! * **deadlines** — with a zero queue-wait deadline every admitted
//!   request expires into the same typed overload shape
//!   (`reason:"deadline"`), and the connection stays usable.
//! * **connection caps** — a connection over `max_connections` gets the
//!   typed overload (`reason:"connection_limit"`) and a close, and the
//!   slot is reusable once the fleet shrinks.
//! * **reaping** — the live-connection count returns to zero after
//!   clients disconnect *without any new connection arriving* (the old
//!   thread-per-connection loop only reaped finished handlers on the
//!   next accept), and repeated rounds do not accumulate OS threads.
//! * **chaos** — the same saturation assertions hold under a seeded
//!   `pddl-faults` plan, composing backpressure with transport faults.
//!
//! The default run finishes in seconds; set `PDDL_LOAD_SECS=<n>` to keep
//! cycling derived fault seeds for at least `n` seconds (mirroring
//! `PDDL_SOAK_SECS`).

use pddl_cluster::retry::overload_retry_hint;
use pddl_cluster::{ClusterState, RetryPolicy, ServerClass};
use pddl_ddlsim::Workload;
use pddl_faults::FAULT_PLAN_ENV;
use predictddl::{Controller, ControllerClient, OfflineTrainer, PredictionRequest, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: usize = 12;
const REQUESTS_PER_CLIENT: usize = 15;

type Truth = Vec<(PredictionRequest, Result<u64, String>)>;

/// A serving core small enough that the client fleet saturates it
/// instantly: 2 workers + 2 queue slots against 12 concurrent clients.
fn tiny_serving() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 2,
        retry_after_ms: 2,
        ..ServeConfig::default()
    }
}

/// Generous budget for convergence rounds: sheds are *expected*, so the
/// retry budget must outlast the fleet draining through a 4-slot core.
fn patient_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 64,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        attempt_timeout: Duration::from_millis(750),
        jitter_seed: seed,
    }
}

fn workload_matrix() -> Vec<PredictionRequest> {
    let models = ["resnet18", "vgg16", "squeezenet1_1", "alexnet"];
    (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|i| {
            PredictionRequest::zoo(
                Workload::new(models[i % models.len()], "cifar10", 64 + 32 * (i % 3), 1 + i % 4),
                ClusterState::homogeneous(ServerClass::GpuP100, 1 + i % 8),
            )
        })
        .collect()
}

fn counter(name: &str) -> u64 {
    pddl_telemetry::snapshot().counter(name).unwrap_or(0)
}

fn gauge(name: &str) -> i64 {
    pddl_telemetry::snapshot().gauge(name).unwrap_or(0)
}

/// Polls `controller.live_connections()` down to `target` — detached
/// reader threads notice the dead socket within one poll interval.
fn await_live(controller: &Controller, target: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let live = controller.live_connections();
        if live <= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "live connections stuck at {live}, want <= {target} — reader threads leaked"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// OS thread count of this process (Linux); `None` elsewhere.
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Saturation with *plain* clients: the fleet hammers a 4-slot core with
/// no backoff, so sheds are guaranteed, and every request must still end
/// in exactly one accounted outcome.
fn saturation_round(truth: &Truth) {
    let controller =
        Controller::serve_with("127.0.0.1:0", OfflineTrainer::tiny().train_full(), tiny_serving())
            .expect("bind saturation controller");
    let addr = controller.addr();
    let idle_gauge = gauge("controller.active_connections");

    let completed = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let (completed, shed) = (&completed, &shed);
            s.spawn(move || {
                let mut client =
                    ControllerClient::connect_with_timeout(addr, Duration::from_secs(20))
                        .expect("connect");
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = c * REQUESTS_PER_CLIENT + r;
                    match client.predict(&truth[i].0) {
                        Ok(outcome) => {
                            let bits =
                                outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
                            assert_eq!(bits, truth[i].1, "request {i} diverged from serial");
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // The only legal failure is the typed shed —
                            // anything else is a hang surrogate or a
                            // silent drop surfacing as transport error.
                            let hint = overload_retry_hint(&e).unwrap_or_else(|| {
                                panic!("request {i}: non-overload failure under saturation: {e}")
                            });
                            assert!(!hint.is_zero(), "request {i}: empty retry_after hint");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let (completed, shed) = (completed.into_inner(), shed.into_inner());
    assert_eq!(
        completed + shed,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "request accounting does not balance"
    );
    assert!(completed > 0, "a saturated core must still serve *some* requests");
    assert!(
        shed > 0,
        "{CLIENTS} hammering clients against a 4-slot core must shed \
         (completed={completed}) — is admission actually bounded?"
    );

    // Sheds keep the connection open: the gauge drops only once clients
    // disconnect, and must reach its pre-round level with no new accepts.
    await_live(&controller, 0);
    assert!(
        gauge("controller.active_connections") <= idle_gauge,
        "connection gauge did not return to its pre-round level"
    );
    drop(controller);
}

/// The same overload, but resilient clients: every request must converge
/// to its bit-identical reply once backoff spreads the fleet out.
fn convergence_round(seed: u64, truth: &Truth) {
    let controller =
        Controller::serve_with("127.0.0.1:0", OfflineTrainer::tiny().train_full(), tiny_serving())
            .expect("bind convergence controller");
    let addr = controller.addr();

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let mut client =
                    ControllerClient::connect_resilient(addr, patient_policy(seed ^ c as u64))
                        .expect("resilient connect");
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = c * REQUESTS_PER_CLIENT + r;
                    let outcome = client
                        .predict(&truth[i].0)
                        .expect("request lost despite retry budget — fleet did not converge");
                    let bits = outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
                    assert_eq!(bits, truth[i].1, "request {i} diverged from serial");
                }
            });
        }
    });
    await_live(&controller, 0);
}

/// A zero queue-wait deadline expires every admitted request into the
/// typed overload reply, and the connection survives to serve stats.
fn expiry_round() {
    let config = ServeConfig { request_deadline: Duration::ZERO, ..tiny_serving() };
    let controller =
        Controller::serve_with("127.0.0.1:0", OfflineTrainer::tiny().train_full(), config)
            .expect("bind expiry controller");
    let expired_before = counter("controller.requests_expired");

    let mut client =
        ControllerClient::connect_with_timeout(controller.addr(), Duration::from_secs(10))
            .expect("connect");
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    );
    for i in 0..5 {
        let err = client.predict(&req).expect_err("zero deadline must expire the request");
        assert!(
            overload_retry_hint(&err).is_some(),
            "expiry {i} was not the typed overload: {err}"
        );
    }
    // Stats frames are answered inline by the reader, not queued — they
    // must keep working on the same connection after five expiries.
    let snapshot = client.stats().expect("stats after expiries");
    assert!(snapshot.counter("controller.requests_expired").unwrap_or(0) >= expired_before + 5);
    assert_eq!(controller.requests_served(), 0, "expired requests must not count as served");
}

/// One-line stats round trip on a raw socket; `Ok` is the reply line.
fn raw_stats(addr: std::net::SocketAddr) -> std::io::Result<String> {
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut w = stream.try_clone()?;
    w.write_all(b"{\"op\":\"stats\"}\n")?;
    w.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    Ok(line)
}

/// Over-cap connections get the typed overload and a close; the slot is
/// admitted again once the fleet shrinks.
fn connection_cap_round() {
    let config = ServeConfig { max_connections: 1, ..tiny_serving() };
    let controller =
        Controller::serve_with("127.0.0.1:0", OfflineTrainer::tiny().train_full(), config)
            .expect("bind capped controller");
    let addr = controller.addr();
    let shed_before = counter("controller.connections_shed");

    // Occupy the single slot and round-trip once so the reader is live.
    let held = std::net::TcpStream::connect(addr).expect("first connect");
    held.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut held_w = held.try_clone().unwrap();
    held_w.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    held_w.flush().unwrap();
    let mut held_r = BufReader::new(held.try_clone().unwrap());
    let mut line = String::new();
    held_r.read_line(&mut line).unwrap();
    assert!(line.contains("snapshot"), "stats on the held connection: {line}");

    // The second connection must be shed with the typed reply, then EOF.
    let over = std::net::TcpStream::connect(addr).expect("second connect");
    over.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut over_r = BufReader::new(over);
    let mut reply = String::new();
    over_r.read_line(&mut reply).expect("overload reply");
    assert!(reply.contains("\"error\":\"overloaded\""), "shed reply: {reply}");
    assert!(reply.contains("connection_limit"), "shed reply: {reply}");
    let mut rest = Vec::new();
    over_r.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "server kept talking after shedding the connection");
    assert!(counter("controller.connections_shed") > shed_before);

    // Release the slot; a new connection must eventually be admitted.
    drop(held_r);
    drop(held_w);
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match raw_stats(addr) {
            Ok(line) if line.contains("snapshot") => break,
            Ok(_) | Err(_) => {
                assert!(
                    Instant::now() < deadline,
                    "freed connection slot was never re-admitted"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Regression for the old `reap_finished` design (handlers were only
/// joined when the *next* connection arrived): the live count must fall
/// to zero after disconnects with no further accepts, and repeated
/// rounds must not accumulate OS threads.
fn reap_round() {
    let controller =
        Controller::serve_with("127.0.0.1:0", OfflineTrainer::tiny().train_full(), tiny_serving())
            .expect("bind reap controller");
    let addr = controller.addr();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 2),
    );
    let clients: Vec<_> = (0..5)
        .map(|_| {
            let mut c = ControllerClient::connect_with_timeout(addr, Duration::from_secs(10))
                .expect("connect");
            loop {
                match c.predict(&req) {
                    Ok(outcome) => break outcome.expect("tiny-system predict"),
                    // A 4-slot core may shed even 5 clients; retry.
                    Err(e) if overload_retry_hint(&e).is_some() => {
                        std::thread::sleep(Duration::from_millis(2))
                    }
                    Err(e) => panic!("predict: {e}"),
                };
            }
        })
        .collect();
    assert!(controller.live_connections() >= 5);
    drop(clients);
    // The regression: no new connection is made past this point.
    await_live(&controller, 0);
}

fn reap_regression() {
    reap_round(); // warm global pools (telemetry, work pool, allocator)
    let before = os_threads();
    for _ in 0..3 {
        reap_round();
    }
    if let (Some(before), Some(after)) = (before, os_threads()) {
        // Each leaked handler or worker would add threads per round; a
        // small slack absorbs lazily spawned process-global helpers.
        assert!(
            after <= before + 4,
            "OS thread count grew {before} -> {after} across controller rounds — \
             serving threads are leaking"
        );
    }
}

/// Transport faults only — mirrors `tests/soak.rs` (garbage stays 0; see
/// its module docs for the rationale).
fn plan_spec(seed: u64) -> String {
    format!("seed={seed},delay=0.06:2,reset=0.02,truncate=0.02,garbage=0.0,drop=0.02")
}

/// Saturation *and* chaos: resilient clients must still converge to
/// bit-identical replies when sheds interleave with injected resets,
/// truncations, and drops.
fn fault_round(seed: u64, truth: &Truth) {
    let spec = plan_spec(seed);
    std::env::set_var(FAULT_PLAN_ENV, &spec);
    let controller =
        Controller::serve_with("127.0.0.1:0", OfflineTrainer::tiny().train_full(), tiny_serving())
            .expect("bind under fault plan");
    std::env::remove_var(FAULT_PLAN_ENV);
    let addr = controller.addr();

    let fleet = CLIENTS.min(6);
    let per_client = REQUESTS_PER_CLIENT.min(10);
    std::thread::scope(|s| {
        for c in 0..fleet {
            s.spawn(move || {
                let mut client =
                    ControllerClient::connect_resilient(addr, patient_policy(seed ^ c as u64))
                        .expect("resilient connect under chaos");
                for r in 0..per_client {
                    let i = c * REQUESTS_PER_CLIENT + r;
                    let outcome = client
                        .predict(&truth[i].0)
                        .expect("request lost under faults despite retry budget");
                    let bits = outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
                    assert_eq!(bits, truth[i].1, "seed {seed} request {i} diverged");
                }
            });
        }
    });
    await_live(&controller, 0);
}

#[test]
fn load_tier_saturates_the_bounded_core() {
    // Serial ground truth on a fault-free, unloaded system.
    let system = OfflineTrainer::tiny().train_full();
    let truth: Truth = workload_matrix()
        .into_iter()
        .map(|req| {
            let serial =
                system.predict(&req).map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
            (req, serial)
        })
        .collect();
    drop(system);

    saturation_round(&truth);
    convergence_round(0x10AD, &truth);
    expiry_round();
    connection_cap_round();
    reap_regression();
    fault_round(0x10AD_F417, &truth);

    // Opt-in extended run: keep cycling derived seeds for PDDL_LOAD_SECS.
    if let Ok(secs) = std::env::var("PDDL_LOAD_SECS") {
        let budget = Duration::from_secs(secs.parse().expect("PDDL_LOAD_SECS must be u64"));
        let start = Instant::now();
        let mut seed = 0x10AD_5EED_u64;
        while start.elapsed() < budget {
            saturation_round(&truth);
            convergence_round(seed, &truth);
            fault_round(seed, &truth);
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
    }

    println!(
        "load: {} shed, {} expired, {} connection sheds, {} client overloads, {} retries",
        counter("controller.requests_shed"),
        counter("controller.requests_expired"),
        counter("controller.connections_shed"),
        counter("controller_client.overloads"),
        counter("controller_client.retries"),
    );
}
