//! Golden-trace fixtures: seeded `pddl-ddlsim` scaling curves for three
//! architectures on two server classes, pinned bit-for-bit under
//! `tests/fixtures/`.
//!
//! The simulator is the ground truth every regression layer trains
//! against, so a silent change to its cost model shifts every downstream
//! accuracy number. These fixtures pin the exact `f64` bit patterns
//! (stored as decimal strings — the fixture parser keeps numbers as
//! `f64`, which cannot hold all 64-bit patterns) of the noise-free
//! expected time and two seeded noisy measurements per point.
//!
//! On an intentional cost-model change, regenerate with
//! `PDDL_REGEN_GOLDEN=1 cargo test --test golden_traces` and review the
//! fixture diff like any other code change.
//!
//! Fixtures are parsed with `pddl_telemetry::JsonValue` (the in-tree JSON
//! parser), so this test runs even where serde_json is stubbed out.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use pddl_telemetry::JsonValue;
use std::path::PathBuf;

const MODELS: [&str; 3] = ["resnet18", "vgg16", "mobilenet_v2"];
const CLASSES: [(ServerClass, &str); 2] =
    [(ServerClass::GpuP100, "gpu_p100"), (ServerClass::CpuE5_2650, "cpu_e5_2650")];
const SERVERS: [usize; 6] = [1, 2, 4, 8, 12, 16];
const RUNS: [u64; 2] = [1, 2];
const BATCH: usize = 128;
const EPOCHS: usize = 2;

struct Point {
    servers: usize,
    expected: Result<f64, String>,
    measured: Vec<(u64, Result<f64, String>)>,
}

fn curve(model: &str, class: ServerClass) -> Vec<Point> {
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::new(model, "cifar10", BATCH, EPOCHS);
    SERVERS
        .iter()
        .map(|&n| {
            let cluster = ClusterState::homogeneous(class, n);
            Point {
                servers: n,
                expected: sim.expected_time(&w, &cluster).map_err(|e| e.to_string()),
                measured: RUNS
                    .iter()
                    .map(|&run| {
                        (run, sim.measure(&w, &cluster, run).map_err(|e| e.to_string()))
                    })
                    .collect(),
            }
        })
        .collect()
}

fn render_value(r: &Result<f64, String>) -> String {
    match r {
        Ok(v) => format!("{{\"seconds\":{:?},\"bits\":\"{}\"}}", v, v.to_bits()),
        Err(e) => format!("{{\"error\":{e:?}}}"),
    }
}

fn render_fixture(model: &str, class: ServerClass, points: &[Point]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"model\": \"{model}\",\n"));
    out.push_str("  \"dataset\": \"cifar10\",\n");
    out.push_str(&format!("  \"server_class\": \"{class:?}\",\n"));
    out.push_str(&format!("  \"batch_size\": {BATCH},\n"));
    out.push_str(&format!("  \"epochs\": {EPOCHS},\n"));
    out.push_str(&format!("  \"sim_seed\": {},\n", SimConfig::default().seed));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let measured: Vec<String> = p
            .measured
            .iter()
            .map(|(run, r)| format!("{{\"run\":{run},\"value\":{}}}", render_value(r)))
            .collect();
        out.push_str(&format!(
            "    {{\"servers\":{},\"expected\":{},\"measured\":[{}]}}{}\n",
            p.servers,
            render_value(&p.expected),
            measured.join(","),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn fixture_path(model: &str, slug: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(format!("ddlsim_{model}_{slug}.json"))
}

/// Extracts the pinned value from `{"seconds":..,"bits":".."}` /
/// `{"error":".."}`.
fn stored_value(v: &JsonValue) -> Result<u64, String> {
    if let Some(err) = v.get("error").and_then(|e| e.as_str()) {
        return Err(err.to_string());
    }
    let bits = v
        .get("bits")
        .and_then(|b| b.as_str())
        .unwrap_or_else(|| panic!("fixture value missing 'bits': {v:?}"));
    Ok(bits.parse::<u64>().unwrap_or_else(|_| panic!("bad bits string '{bits}'")))
}

fn as_bits(r: &Result<f64, String>) -> Result<u64, String> {
    r.as_ref().map(|v| v.to_bits()).map_err(|e| e.clone())
}

#[test]
fn simulator_curves_match_golden_fixtures() {
    let regen = std::env::var("PDDL_REGEN_GOLDEN").is_ok_and(|v| v == "1");
    for model in MODELS {
        for (class, slug) in CLASSES {
            let points = curve(model, class);
            let path = fixture_path(model, slug);
            if regen {
                std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
                std::fs::write(&path, render_fixture(model, class, &points)).unwrap();
                continue;
            }
            let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing fixture {} ({e}); regenerate with PDDL_REGEN_GOLDEN=1",
                    path.display()
                )
            });
            let doc = JsonValue::parse(&stored)
                .unwrap_or_else(|e| panic!("{}: unparseable fixture: {e}", path.display()));
            assert_eq!(doc.get("model").and_then(|m| m.as_str()), Some(model));
            let stored_points = match doc.get("points") {
                Some(JsonValue::Array(pts)) => pts,
                other => panic!("{}: 'points' is not an array: {other:?}", path.display()),
            };
            assert_eq!(
                stored_points.len(),
                points.len(),
                "{}: point count changed",
                path.display()
            );
            for (p, sp) in points.iter().zip(stored_points) {
                let ctx = format!("{model}/{class:?} at {} servers", p.servers);
                assert_eq!(
                    sp.get("servers").and_then(|s| s.as_u64()),
                    Some(p.servers as u64),
                    "{ctx}: servers mismatch"
                );
                let exp = sp.get("expected").unwrap_or_else(|| panic!("{ctx}: no expected"));
                assert_eq!(
                    as_bits(&p.expected),
                    stored_value(exp),
                    "{ctx}: expected_time drifted from golden fixture \
                     (intentional? regenerate with PDDL_REGEN_GOLDEN=1)"
                );
                let runs = match sp.get("measured") {
                    Some(JsonValue::Array(rs)) => rs,
                    other => panic!("{ctx}: 'measured' is not an array: {other:?}"),
                };
                assert_eq!(runs.len(), p.measured.len(), "{ctx}: run count changed");
                for ((run, r), sr) in p.measured.iter().zip(runs) {
                    assert_eq!(
                        sr.get("run").and_then(|x| x.as_u64()),
                        Some(*run),
                        "{ctx}: run id mismatch"
                    );
                    let val = sr.get("value").unwrap_or_else(|| panic!("{ctx}: no value"));
                    assert_eq!(
                        as_bits(r),
                        stored_value(val),
                        "{ctx} run {run}: measurement drifted from golden fixture"
                    );
                }
            }
        }
    }
    if regen {
        // Make an accidental always-regen CI configuration loud.
        eprintln!("golden fixtures regenerated — commit the fixture diff");
    }
}

/// The fixtures pin determinism; this pins *reusability* of the noise
/// stream: the same run id reproduces the same measurement, different run
/// ids differ (no accidental seed aliasing across the curve).
#[test]
fn measurement_noise_is_run_id_deterministic() {
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::new("resnet18", "cifar10", BATCH, EPOCHS);
    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
    let a = sim.measure(&w, &cluster, 9).unwrap();
    let b = sim.measure(&w, &cluster, 9).unwrap();
    let c = sim.measure(&w, &cluster, 10).unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
    assert_ne!(a.to_bits(), c.to_bits());
}
