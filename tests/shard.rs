//! Shard tier: the consistent-hash serving fleet end to end over TCP.
//!
//! Where `tests/load.rs` saturates one bounded controller, this tier
//! stands up the whole serving plane — N controller shards behind a
//! `pddl-router` — and asserts the fleet contract:
//!
//! * **transparency** — a prediction routed through the router is
//!   bit-identical (`f64::to_bits`) to the serially computed ground
//!   truth; the router adds placement, never arithmetic. Malformed
//!   frames pass through and come back with the shard's own typed error,
//!   exactly as on a direct connection.
//! * **observability** — `{"op":"route_table"}` against the router is
//!   the live fleet membership; against a bare controller it is the
//!   one-entry identity table, and sharded stats replies carry the
//!   responding shard id (surfaced by `ControllerClient::last_shard`).
//! * **bounded movement** — adding a shard moves keys *only* onto the
//!   new shard, and only a bounded fraction of them; everything else
//!   keeps its placement (cache-warm shards stay warm).
//! * **convergence + exactly-once** — killing a shard mid-load bumps the
//!   membership epoch within one probe interval, and every in-flight
//!   request still completes exactly once with its bit-identical answer:
//!   resilient clients ride the typed `shard_moved` signal onto the
//!   survivor ring, and the shard-side dedup cache absorbs replays.
//! * **chaos** — the same convergence holds when the shards themselves
//!   run under a seeded `pddl-faults` wire plan (replay the seed with
//!   `--fault-plan` per TESTING.md to reproduce a failure).
//!
//! Requires a network-enabled environment (CI), like the load tier.

use pddl_cluster::retry::{overload_retry_hint, shard_moved_retry_hint};
use pddl_cluster::{ClusterState, RetryPolicy, ServerClass};
use pddl_ddlsim::Workload;
use pddl_faults::FAULT_PLAN_ENV;
use pddl_router::{routing_key, Router, RouterConfig};
use predictddl::{
    Controller, ControllerClient, OfflineTrainer, PredictionRequest, ServeConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 10;

type Truth = Vec<(PredictionRequest, Result<u64, String>)>;

/// A roomy per-shard core: this tier tests placement and failover, not
/// admission control (the load tier owns that).
fn shard_config(shard: u64) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 16,
        retry_after_ms: 2,
        shard_id: Some(shard),
        ..ServeConfig::default()
    }
}

/// Fast probes so death discovery fits test budgets.
fn router_config() -> RouterConfig {
    RouterConfig {
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(100),
        retry_after_ms: 2,
        ..RouterConfig::default()
    }
}

/// Retry budget generous enough to ride out a shard death mid-request.
fn patient_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 64,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        attempt_timeout: Duration::from_millis(750),
        jitter_seed: seed,
    }
}

/// The tiny system, trained once per process and replicated through its
/// serde round trip ([`predictddl::PredictDdl`] is not `Clone`; training
/// is deterministic, so a re-train would be bit-identical anyway — this
/// just keeps the tier fast on one core).
fn tiny_system() -> predictddl::PredictDdl {
    static BLOB: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    let blob = BLOB.get_or_init(|| {
        serde_json::to_string(&OfflineTrainer::tiny().train_full()).expect("serialize system")
    });
    serde_json::from_str(blob).expect("deserialize system")
}

/// `n` identical shard replicas with `shard_id` 0..n — any shard's
/// answer is THE answer.
fn spawn_fleet(n: usize) -> (Vec<Option<Controller>>, Vec<SocketAddr>) {
    let shards: Vec<Option<Controller>> = (0..n)
        .map(|i| {
            Some(
                Controller::serve_with("127.0.0.1:0", tiny_system(), shard_config(i as u64))
                    .expect("bind shard"),
            )
        })
        .collect();
    let addrs = shards.iter().map(|c| c.as_ref().unwrap().addr()).collect();
    (shards, addrs)
}

/// Distinct workloads spanning the key space. Every request has a unique
/// batch size, so every request owns a distinct routing key — which makes
/// the resize test's per-key movement accounting exact.
fn workload_matrix() -> Vec<PredictionRequest> {
    let models = ["resnet18", "vgg16", "squeezenet1_1", "alexnet"];
    (0..CLIENTS * REQUESTS_PER_CLIENT)
        .map(|i| {
            PredictionRequest::zoo(
                Workload::new(models[i % models.len()], "cifar10", 64 + i, 1 + i % 4),
                ClusterState::homogeneous(ServerClass::GpuP100, 1 + i % 8),
            )
        })
        .collect()
}

/// Serial ground truth on a fault-free, unloaded system.
fn ground_truth() -> Truth {
    let system = tiny_system();
    workload_matrix()
        .into_iter()
        .map(|req| {
            let serial =
                system.predict(&req).map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
            (req, serial)
        })
        .collect()
}

#[test]
fn routed_replies_are_bit_identical_to_direct() {
    let truth = ground_truth();
    let (_shards, addrs) = spawn_fleet(2);
    let router = Router::serve("127.0.0.1:0", &addrs, router_config()).expect("bind router");

    let mut client = ControllerClient::connect_with_timeout(router.addr(), Duration::from_secs(20))
        .expect("connect through router");
    for (i, (req, want)) in truth.iter().enumerate() {
        let outcome = loop {
            match client.predict(req) {
                Ok(o) => break o,
                Err(e) if overload_retry_hint(&e).is_some() => {
                    std::thread::sleep(Duration::from_millis(2))
                }
                Err(e) => panic!("request {i} through router: {e}"),
            }
        };
        let bits = outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
        assert_eq!(&bits, want, "request {i} diverged through the router");
    }

    // Malformed frames pass through: the shard's typed error comes back
    // on the same connection, exactly as on a direct connection.
    let stream = std::net::TcpStream::connect(router.addr()).expect("raw connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"this is not json\n").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("typed error reply");
    assert!(line.contains("err"), "malformed pass-through reply: {line}");
}

#[test]
fn route_tables_and_shard_echo_expose_the_fleet() {
    let (_shards, addrs) = spawn_fleet(2);
    let config = router_config();
    let router = Router::serve("127.0.0.1:0", &addrs, config).expect("bind router");

    // Against the router: the live fleet membership.
    let mut via_router =
        ControllerClient::connect_with_timeout(router.addr(), Duration::from_secs(10))
            .expect("connect router");
    let table = via_router.route_table().expect("fleet route table");
    assert_eq!(table.epoch, 1, "fresh fleet starts at epoch 1");
    assert_eq!(table.vnodes, config.vnodes);
    assert!(table.shard.is_none(), "fleet table is not an identity table");
    assert_eq!(table.shards.len(), 2);
    assert!(table.shards.iter().all(|s| s.healthy));
    assert_eq!(via_router.cached_route().expect("cached").epoch, table.epoch);

    // Against a bare shard: the one-entry identity table, and the stats
    // reply carries the shard id instead of dropping it.
    let mut direct = ControllerClient::connect_with_timeout(addrs[1], Duration::from_secs(10))
        .expect("connect shard 1");
    let identity = direct.route_table().expect("identity table");
    assert_eq!(identity.shard, Some(1));
    assert_eq!(identity.shards.len(), 1);
    assert_eq!(direct.last_shard(), None, "no shard observed before any reply");
    direct.stats().expect("stats");
    assert_eq!(direct.last_shard(), Some(1), "stats must surface the responding shard");
}

#[test]
fn adding_a_shard_moves_keys_only_onto_it() {
    let truth = ground_truth();
    let (_shards, addrs) = spawn_fleet(3);
    // Start with shards 0 and 1; shard 2 joins later.
    let router =
        Router::serve("127.0.0.1:0", &addrs[..2], router_config()).expect("bind router");

    // Resilient clients envelope requests, so every reply echoes the
    // answering shard — that is the placement map.
    let mut client = ControllerClient::connect_resilient(router.addr(), patient_policy(0x5A))
        .expect("connect");
    let placement = |client: &mut ControllerClient, truth: &Truth| -> Vec<u64> {
        truth
            .iter()
            .enumerate()
            .map(|(i, (req, want))| {
                let outcome = client.predict(req).expect("resilient predict");
                let bits = outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
                assert_eq!(&bits, want, "request {i} diverged");
                client.last_shard().expect("enveloped reply echoes its shard")
            })
            .collect()
    };
    let before = placement(&mut client, &truth);
    assert!(before.iter().all(|&s| s < 2), "only shards 0/1 exist yet");

    let new_id = router.add_shard(addrs[2]);
    assert_eq!(router.epoch(), 2, "resize bumps the membership epoch");
    let after = placement(&mut client, &truth);

    // Identical workloads share a key, so group movement by key: a key
    // either keeps its shard or moves to the new one — never sideways.
    let mut moved_keys = std::collections::HashSet::new();
    let mut keys = std::collections::HashSet::new();
    for (i, (req, _)) in truth.iter().enumerate() {
        let key = routing_key(req);
        keys.insert(key);
        if after[i] != before[i] {
            assert_eq!(
                after[i], new_id,
                "request {i} moved to shard {} instead of the new shard",
                after[i]
            );
            moved_keys.insert(key);
        }
    }
    assert!(
        moved_keys.len() * 2 <= keys.len(),
        "a 2->3 resize moved {}/{} keys — movement is not bounded",
        moved_keys.len(),
        keys.len()
    );
}

#[test]
fn shard_death_converges_exactly_once() {
    let truth = ground_truth();
    let (mut shards, addrs) = spawn_fleet(3);
    let config = router_config();
    let router = Router::serve("127.0.0.1:0", &addrs, config).expect("bind router");
    let epoch_before = router.epoch();
    let victim = 1usize;

    // Every request resolved exactly once, bit-identically, while the
    // victim dies mid-load. `completions` double-checks the exactly-once
    // accounting explicitly rather than trusting control flow.
    let completions: Vec<std::sync::atomic::AtomicU64> =
        (0..truth.len()).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
    let kill_gate = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let (truth, completions, kill_gate) = (&truth, &completions, &kill_gate);
            let router_addr = router.addr();
            s.spawn(move || {
                let mut client =
                    ControllerClient::connect_resilient(router_addr, patient_policy(c as u64))
                        .expect("resilient connect");
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = c * REQUESTS_PER_CLIENT + r;
                    let outcome = client
                        .predict(&truth[i].0)
                        .expect("request lost in shard death despite retry budget");
                    let bits = outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
                    assert_eq!(bits, truth[i].1, "request {i} diverged during failover");
                    completions[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    kill_gate.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Kill the victim once a quarter of the load has completed: a
        // genuine mid-load death with requests still in flight. The
        // deadline guards against a wedged poll if the clients die early
        // — the scope then exits and surfaces their panic instead.
        let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
        let gate_deadline = Instant::now() + Duration::from_secs(120);
        while kill_gate.load(std::sync::atomic::Ordering::Relaxed) < total / 4
            && Instant::now() < gate_deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(shards[victim].take());
    });

    for (i, c) in completions.iter().enumerate() {
        assert_eq!(
            c.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "request {i} was answered {} times, want exactly once",
            c.load(std::sync::atomic::Ordering::Relaxed)
        );
    }

    // Convergence: the router must mark the victim dead within a probe
    // interval or two of the load ending (forward failures usually beat
    // the prober to it).
    let deadline = Instant::now() + 10 * config.probe_interval;
    loop {
        let table = router.table();
        let dead = table
            .shards
            .iter()
            .any(|sh| sh.id == victim as u64 && !sh.healthy);
        if dead {
            assert!(table.epoch > epoch_before, "death must bump the epoch");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never marked the dead shard unhealthy"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The fleet keeps serving on the survivor ring.
    let mut client = ControllerClient::connect_resilient(router.addr(), patient_policy(0xD1E))
        .expect("connect after death");
    for (i, (req, want)) in truth.iter().enumerate().take(10) {
        let outcome = client.predict(req).expect("post-death predict");
        let bits = outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
        assert_eq!(&bits, want, "post-death request {i} diverged");
        assert_ne!(client.last_shard(), Some(victim as u64), "routed to the dead shard");
    }
}

#[test]
fn chaos_fleet_converges_under_seeded_faults() {
    let truth = ground_truth();
    let seed = 0x5AAD_F417u64;
    // The shards (not the router) run the seeded wire-fault plan — the
    // same spec `--fault-plan` takes, so failures replay exactly.
    std::env::set_var(FAULT_PLAN_ENV, format!("seed={seed},delay=0.05:2,reset=0.02,drop=0.02"));
    let (_shards, addrs) = spawn_fleet(2);
    std::env::remove_var(FAULT_PLAN_ENV);
    let router = Router::serve("127.0.0.1:0", &addrs, router_config()).expect("bind router");

    let fleet = CLIENTS.min(4);
    let per_client = REQUESTS_PER_CLIENT.min(8);
    std::thread::scope(|s| {
        for c in 0..fleet {
            let truth = &truth;
            let router_addr = router.addr();
            s.spawn(move || {
                let mut client = ControllerClient::connect_resilient(
                    router_addr,
                    patient_policy(seed ^ c as u64),
                )
                .expect("resilient connect under chaos");
                for r in 0..per_client {
                    let i = c * REQUESTS_PER_CLIENT + r;
                    let outcome = client
                        .predict(&truth[i].0)
                        .expect("request lost under faults despite retry budget");
                    let bits = outcome.map(|p| p.seconds.to_bits()).map_err(|e| e.to_string());
                    assert_eq!(bits, truth[i].1, "seed {seed} request {i} diverged");
                }
            });
        }
    });
}

#[test]
fn shard_moved_is_typed_and_transient() {
    // A router whose only shard is gone answers predicts with a typed,
    // transient signal — never a hang or a silent close. (Zero healthy
    // shards answer the typed overload; a mid-request death answers
    // `shard_moved`. Both are transient; this exercises the wiring
    // without a race on which one fires.)
    let (mut shards, addrs) = spawn_fleet(1);
    let config = router_config();
    let router = Router::serve("127.0.0.1:0", &addrs, config).expect("bind router");
    let mut client = ControllerClient::connect_with_timeout(router.addr(), Duration::from_secs(10))
        .expect("connect");
    let req = workload_matrix().remove(0);
    client.predict(&req).expect("warm request").expect("prediction");

    drop(shards[0].take());
    // Poll until the death is visible; each failure must be the typed
    // shard_moved or overload reply, both transient.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.predict(&req) {
            Err(e) => {
                assert!(
                    shard_moved_retry_hint(&e).is_some() || overload_retry_hint(&e).is_some(),
                    "death surfaced as an untyped error: {e}"
                );
                break;
            }
            Ok(_) => {
                // The shard drains gracefully; in-flight replies may
                // still arrive until the router notices.
                assert!(Instant::now() < deadline, "router never surfaced the death");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}
