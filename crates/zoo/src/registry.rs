//! The 31-model registry (Section IV-A2: "31 image classification DL models
//! from the PyTorch Vision libraries").

use crate::dataset::DatasetDesc;
use crate::families::*;
use pddl_graph::CompGraph;

/// The 31 model names in canonical order.
pub const MODEL_NAMES: [&str; 31] = [
    "alexnet",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "resnext50_32x4d",
    "resnext101_32x8d",
    "wide_resnet50_2",
    "wide_resnet101_2",
    "squeezenet1_0",
    "squeezenet1_1",
    "densenet121",
    "densenet161",
    "densenet169",
    "densenet201",
    "mobilenet_v2",
    "mobilenet_v3_small",
    "mobilenet_v3_large",
    "efficientnet_b0",
    "efficientnet_b1",
    "efficientnet_b2",
    "efficientnet_b3",
    "shufflenet_v2_x0_5",
    "shufflenet_v2_x1_0",
    "googlenet",
    "mnasnet1_0",
];

/// Returns all model names.
pub fn model_names() -> &'static [&'static str] {
    &MODEL_NAMES
}

/// Builds the named model's computational graph for a dataset, or `None`
/// for an unknown name.
pub fn build_model(name: &str, ds: &DatasetDesc) -> Option<CompGraph> {
    let g = match name {
        "alexnet" => alexnet::alexnet(ds),
        "vgg11" => vgg::vgg(11, ds),
        "vgg13" => vgg::vgg(13, ds),
        "vgg16" => vgg::vgg(16, ds),
        "vgg19" => vgg::vgg(19, ds),
        "resnet18" | "resnet34" | "resnet50" | "resnet101" | "resnet152"
        | "resnext50_32x4d" | "resnext101_32x8d" | "wide_resnet50_2" | "wide_resnet101_2" => {
            resnet::resnet(name, ds)
        }
        "squeezenet1_0" => squeezenet::squeezenet("1_0", ds),
        "squeezenet1_1" => squeezenet::squeezenet("1_1", ds),
        "densenet121" | "densenet161" | "densenet169" | "densenet201" => {
            densenet::densenet(name, ds)
        }
        "mobilenet_v2" => mobilenet::mobilenet_v2(ds),
        "mobilenet_v3_small" => mobilenet::mobilenet_v3("small", ds),
        "mobilenet_v3_large" => mobilenet::mobilenet_v3("large", ds),
        "efficientnet_b0" => efficientnet::efficientnet(0, ds),
        "efficientnet_b1" => efficientnet::efficientnet(1, ds),
        "efficientnet_b2" => efficientnet::efficientnet(2, ds),
        "efficientnet_b3" => efficientnet::efficientnet(3, ds),
        "shufflenet_v2_x0_5" => shufflenet::shufflenet_v2("x0_5", ds),
        "shufflenet_v2_x1_0" => shufflenet::shufflenet_v2("x1_0", ds),
        "googlenet" => googlenet::googlenet(ds),
        "mnasnet1_0" => mnasnet::mnasnet_1_0(ds),
        _ => return None,
    };
    Some(g)
}

/// Summary statistics for a model on a dataset; the "gray box" feature set
/// of the paper's baselines plus the structural statistics the simulator's
/// efficiency model consumes.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    pub name: String,
    pub flops_per_example: f64,
    pub params: u64,
    pub layers: usize,
    pub nodes: usize,
    pub depth: usize,
    pub grouped_flop_fraction: f64,
    pub branching_fraction: f64,
    pub activation_elems: u64,
}

impl ModelSpec {
    /// Computes the spec from a built graph.
    pub fn from_graph(g: &CompGraph) -> Self {
        Self {
            name: g.name.clone(),
            flops_per_example: g.flops_per_example(),
            params: g.num_params(),
            layers: g.num_layers(),
            nodes: g.num_nodes(),
            depth: g.depth(),
            grouped_flop_fraction: g.grouped_flop_fraction(),
            branching_fraction: g.branching_fraction(),
            activation_elems: g.activation_elems(),
        }
    }

    /// Arithmetic intensity proxy: FLOPs per activation element moved.
    /// Dense GEMM-heavy nets score high; depthwise/concat nets score low.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops_per_example / (self.activation_elems.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CIFAR10, TINY_IMAGENET};

    #[test]
    fn exactly_31_models() {
        assert_eq!(MODEL_NAMES.len(), 31);
    }

    #[test]
    fn every_model_builds_and_validates_on_both_datasets() {
        for name in MODEL_NAMES {
            for ds in [&CIFAR10, &TINY_IMAGENET] {
                let g = build_model(name, ds)
                    .unwrap_or_else(|| panic!("{name} missing from registry"));
                assert_eq!(g.validate(), Ok(()), "{name} on {}", ds.name);
                assert!(g.num_params() > 0, "{name} has no parameters");
                assert!(g.flops_per_example() > 0.0, "{name} has no FLOPs");
            }
        }
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(build_model("resnet1001", &CIFAR10).is_none());
    }

    #[test]
    fn model_names_are_unique() {
        let mut names: Vec<_> = MODEL_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn tiny_imagenet_graphs_cost_more_than_cifar() {
        // 64×64 inputs quadruple the early-layer spatial work.
        for name in ["resnet18", "vgg16", "mobilenet_v3_large"] {
            let c = build_model(name, &CIFAR10).unwrap().flops_per_example();
            let t = build_model(name, &TINY_IMAGENET).unwrap().flops_per_example();
            assert!(t > 1.5 * c, "{name}: cifar={c:.2e} tiny={t:.2e}");
        }
    }

    #[test]
    fn flop_spread_spans_orders_of_magnitude() {
        // The zoo must be heterogeneous for the experiments to be meaningful:
        // VGG-16 vs SqueezeNet should differ by >20× in FLOPs.
        let vgg = build_model("vgg16", &CIFAR10).unwrap().flops_per_example();
        let sq = build_model("squeezenet1_1", &CIFAR10).unwrap().flops_per_example();
        assert!(vgg / sq > 20.0, "spread only {:.1}×", vgg / sq);
    }

    #[test]
    fn spec_snapshot_reasonable() {
        let g = build_model("resnet18", &CIFAR10).unwrap();
        let spec = ModelSpec::from_graph(&g);
        assert_eq!(spec.name, "resnet18");
        assert!(spec.params > 10_000_000); // 11.7M
        assert!(spec.depth >= 20);
        assert!(spec.arithmetic_intensity() > 1.0);
    }
}
