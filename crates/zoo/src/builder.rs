//! Fluent builder for assembling architecture graphs.
//!
//! Tracks the "current" node, channel count and spatial resolution while
//! appending primitive ops, so family builders read like the architecture
//! papers' block diagrams.

use pddl_graph::{CompGraph, NodeAttrs, NodeId, OpKind};

/// Activation selector for fused conv-bn-act helpers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Act {
    Relu,
    Swish,
    HardSwish,
    Sigmoid,
    None,
}

impl Act {
    fn op(self) -> Option<OpKind> {
        match self {
            Act::Relu => Some(OpKind::Relu),
            Act::Swish => Some(OpKind::Swish),
            Act::HardSwish => Some(OpKind::HardSwish),
            Act::Sigmoid => Some(OpKind::Sigmoid),
            Act::None => None,
        }
    }
}

/// Cursor state: where the data flow currently stands.
#[derive(Clone, Copy, Debug)]
pub struct Cursor {
    pub node: NodeId,
    pub channels: usize,
    pub spatial: usize,
}

/// Graph-under-construction with a movable cursor.
pub struct NetBuilder {
    g: CompGraph,
    cur: Cursor,
}

/// Output spatial size for a strided op (torchvision padding conventions
/// keep `ceil(s / stride)`, floored at 1 for tiny CIFAR maps).
pub fn strided(spatial: usize, stride: usize) -> usize {
    spatial.div_ceil(stride).max(1)
}

impl NetBuilder {
    /// Starts a graph with an `Input` node of `channels × res × res`.
    pub fn new(name: &str, channels: usize, res: usize) -> Self {
        let mut g = CompGraph::new(name);
        let node = g.add_node(
            OpKind::Input,
            NodeAttrs::elementwise(channels, res),
            "input",
        );
        Self { g, cur: Cursor { node, channels, spatial: res } }
    }

    /// Current cursor (save before a branch, restore with [`Self::set`]).
    pub fn cursor(&self) -> Cursor {
        self.cur
    }

    /// Moves the cursor (branching).
    pub fn set(&mut self, c: Cursor) {
        self.cur = c;
    }

    /// Direct access for unusual wiring.
    pub fn graph_mut(&mut self) -> &mut CompGraph {
        &mut self.g
    }

    fn push(&mut self, kind: OpKind, attrs: NodeAttrs, label: &str) -> Cursor {
        let node = self.g.chain(self.cur.node, kind, attrs, label);
        self.cur = Cursor { node, channels: attrs.c_out, spatial: attrs.spatial };
        self.cur
    }

    /// Plain convolution (+ implicit bias carried in the conv node).
    pub fn conv(&mut self, c_out: usize, k: usize, stride: usize, label: &str) -> Cursor {
        let sp = strided(self.cur.spatial, stride);
        let attrs = NodeAttrs::conv(self.cur.channels, c_out, k, stride, sp);
        self.push(OpKind::Conv, attrs, label)
    }

    /// Grouped convolution.
    pub fn group_conv(
        &mut self,
        c_out: usize,
        k: usize,
        stride: usize,
        groups: usize,
        label: &str,
    ) -> Cursor {
        let sp = strided(self.cur.spatial, stride);
        let attrs =
            NodeAttrs::group_conv(self.cur.channels, c_out, k, stride, groups, sp);
        self.push(OpKind::GroupConv, attrs, label)
    }

    /// Depthwise convolution (groups = channels; preserves channel count).
    pub fn dw_conv(&mut self, k: usize, stride: usize, label: &str) -> Cursor {
        let c = self.cur.channels;
        let sp = strided(self.cur.spatial, stride);
        let attrs = NodeAttrs::group_conv(c, c, k, stride, c, sp);
        self.push(OpKind::DepthwiseConv, attrs, label)
    }

    /// Dilated convolution (DARTS `dil_conv` primitive).
    pub fn dil_conv(&mut self, c_out: usize, k: usize, stride: usize, label: &str) -> Cursor {
        let sp = strided(self.cur.spatial, stride);
        let attrs = NodeAttrs::conv(self.cur.channels, c_out, k, stride, sp);
        self.push(OpKind::DilConv, attrs, label)
    }

    /// Batch normalization.
    pub fn bn(&mut self, label: &str) -> Cursor {
        let attrs = NodeAttrs::elementwise(self.cur.channels, self.cur.spatial);
        self.push(OpKind::BatchNorm, attrs, label)
    }

    /// Activation node.
    pub fn act(&mut self, a: Act, label: &str) -> Cursor {
        if let Some(op) = a.op() {
            let attrs = NodeAttrs::elementwise(self.cur.channels, self.cur.spatial);
            self.push(op, attrs, label)
        } else {
            self.cur
        }
    }

    /// Conv → BN → activation, the workhorse block.
    pub fn conv_bn_act(
        &mut self,
        c_out: usize,
        k: usize,
        stride: usize,
        a: Act,
        label: &str,
    ) -> Cursor {
        self.conv(c_out, k, stride, label);
        self.bn(&format!("{label}.bn"));
        self.act(a, &format!("{label}.act"))
    }

    /// Depthwise conv → BN → activation.
    pub fn dw_bn_act(&mut self, k: usize, stride: usize, a: Act, label: &str) -> Cursor {
        self.dw_conv(k, stride, label);
        self.bn(&format!("{label}.bn"));
        self.act(a, &format!("{label}.act"))
    }

    /// Max pooling.
    pub fn max_pool(&mut self, k: usize, stride: usize, label: &str) -> Cursor {
        let sp = strided(self.cur.spatial, stride);
        let mut attrs = NodeAttrs::elementwise(self.cur.channels, sp);
        attrs.kernel = k;
        attrs.stride = stride;
        self.push(OpKind::MaxPool, attrs, label)
    }

    /// Average pooling.
    pub fn avg_pool(&mut self, k: usize, stride: usize, label: &str) -> Cursor {
        let sp = strided(self.cur.spatial, stride);
        let mut attrs = NodeAttrs::elementwise(self.cur.channels, sp);
        attrs.kernel = k;
        attrs.stride = stride;
        self.push(OpKind::AvgPool, attrs, label)
    }

    /// Global average pooling (spatial → 1). Records the input spatial size
    /// in `kernel` so FLOPs account for the full read.
    pub fn global_pool(&mut self, label: &str) -> Cursor {
        let mut attrs = NodeAttrs::elementwise(self.cur.channels, 1);
        attrs.kernel = self.cur.spatial;
        self.push(OpKind::GlobalAvgPool, attrs, label)
    }

    /// Fully-connected layer (assumes spatial == 1 unless flattening).
    pub fn dense(&mut self, f_out: usize, label: &str) -> Cursor {
        let f_in = self.cur.channels * self.cur.spatial * self.cur.spatial;
        let attrs = NodeAttrs::dense(f_in, f_out);
        self.push(OpKind::Dense, attrs, label)
    }

    /// Dropout (structural only).
    pub fn dropout(&mut self, label: &str) -> Cursor {
        let attrs = NodeAttrs::elementwise(self.cur.channels, self.cur.spatial);
        self.push(OpKind::Dropout, attrs, label)
    }

    /// Channel shuffle (ShuffleNet).
    pub fn channel_shuffle(&mut self, label: &str) -> Cursor {
        let attrs = NodeAttrs::elementwise(self.cur.channels, self.cur.spatial);
        self.push(OpKind::ChannelShuffle, attrs, label)
    }

    /// Residual join: `Sum` of the current cursor and `skip`. If channel or
    /// spatial shapes differ, callers must have inserted a projection first.
    pub fn sum_with(&mut self, skip: Cursor, label: &str) -> Cursor {
        debug_assert_eq!(skip.channels, self.cur.channels, "sum channel mismatch at {label}");
        debug_assert_eq!(skip.spatial, self.cur.spatial, "sum spatial mismatch at {label}");
        let attrs = NodeAttrs::elementwise(self.cur.channels, self.cur.spatial);
        let node = self.g.add_node(OpKind::Sum, attrs, label);
        self.g.add_edge(self.cur.node, node);
        self.g.add_edge(skip.node, node);
        self.cur = Cursor { node, ..self.cur };
        self.cur
    }

    /// Concatenation of several branch cursors along channels.
    pub fn concat(&mut self, branches: &[Cursor], label: &str) -> Cursor {
        assert!(!branches.is_empty());
        let spatial = branches[0].spatial;
        let channels: usize = branches.iter().map(|b| b.channels).sum();
        debug_assert!(branches.iter().all(|b| b.spatial == spatial), "concat spatial mismatch");
        let attrs = NodeAttrs::elementwise(channels, spatial);
        let node = self.g.add_node(OpKind::Concat, attrs, label);
        for b in branches {
            self.g.add_edge(b.node, node);
        }
        self.cur = Cursor { node, channels, spatial };
        self.cur
    }

    /// Elementwise multiplication with a gating branch (squeeze-excite).
    pub fn mul_with(&mut self, gate: Cursor, label: &str) -> Cursor {
        let attrs = NodeAttrs::elementwise(self.cur.channels, self.cur.spatial);
        let node = self.g.add_node(OpKind::Mul, attrs, label);
        self.g.add_edge(self.cur.node, node);
        self.g.add_edge(gate.node, node);
        self.cur = Cursor { node, ..self.cur };
        self.cur
    }

    /// Squeeze-and-excitation block gating the current cursor:
    /// global-pool → dense(reduce) → relu → dense(expand) → sigmoid → mul.
    pub fn squeeze_excite(&mut self, reduction: usize, label: &str) -> Cursor {
        let main = self.cur;
        self.global_pool(&format!("{label}.squeeze"));
        let hidden = (main.channels / reduction).max(1);
        self.dense(hidden, &format!("{label}.fc1"));
        self.act(Act::Relu, &format!("{label}.relu"));
        self.dense(main.channels, &format!("{label}.fc2"));
        let gate = self.act(Act::Sigmoid, &format!("{label}.gate"));
        self.set(main);
        self.mul_with(gate, &format!("{label}.scale"))
    }

    /// Classifier head: global-pool → dense(num_classes) → softmax → output.
    pub fn classifier(&mut self, num_classes: usize) -> Cursor {
        self.global_pool("head.pool");
        self.dense(num_classes, "head.fc");
        let attrs = NodeAttrs::elementwise(num_classes, 1);
        self.push(OpKind::Softmax, attrs, "head.softmax");
        self.push(OpKind::Output, attrs, "output")
    }

    /// Finishes construction, validating structure.
    pub fn finish(self) -> CompGraph {
        let g = self.g;
        debug_assert_eq!(g.validate(), Ok(()), "builder produced invalid graph {}", g.name);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_arithmetic() {
        assert_eq!(strided(32, 1), 32);
        assert_eq!(strided(32, 2), 16);
        assert_eq!(strided(33, 2), 17);
        assert_eq!(strided(1, 2), 1);
    }

    #[test]
    fn simple_network_validates() {
        let mut b = NetBuilder::new("toy", 3, 32);
        b.conv_bn_act(16, 3, 1, Act::Relu, "stem");
        let skip = b.cursor();
        b.conv_bn_act(16, 3, 1, Act::Relu, "block");
        b.sum_with(skip, "join");
        b.classifier(10);
        let g = b.finish();
        assert_eq!(g.validate(), Ok(()));
        assert!(g.num_params() > 0);
        assert_eq!(g.num_layers(), 3); // stem conv, block conv, head fc
    }

    #[test]
    fn squeeze_excite_wires_gate() {
        let mut b = NetBuilder::new("se", 3, 16);
        b.conv_bn_act(32, 3, 1, Act::Relu, "stem");
        let before = b.cursor();
        let after = b.squeeze_excite(4, "se1");
        assert_eq!(after.channels, before.channels);
        assert_eq!(after.spatial, before.spatial);
        b.classifier(10);
        let g = b.finish();
        assert_eq!(g.validate(), Ok(()));
        // SE adds two dense layers.
        assert_eq!(g.num_layers(), 1 + 2 + 1);
    }

    #[test]
    fn concat_accumulates_channels() {
        let mut b = NetBuilder::new("cat", 3, 8);
        b.conv(8, 3, 1, "stem");
        let root = b.cursor();
        let b1 = {
            b.set(root);
            b.conv(4, 1, 1, "b1")
        };
        let b2 = {
            b.set(root);
            b.conv(6, 3, 1, "b2")
        };
        let joined = b.concat(&[b1, b2], "cat");
        assert_eq!(joined.channels, 10);
        b.classifier(10);
        let g = b.finish();
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn dense_flattens_spatial() {
        let mut b = NetBuilder::new("flat", 3, 8);
        b.conv(4, 3, 2, "c"); // spatial 4
        let cur = b.dense(10, "fc");
        assert_eq!(cur.channels, 10);
        // 4 channels * 4*4 spatial = 64 input features.
        let g = b.g;
        let fc = g
            .nodes()
            .iter()
            .find(|n| n.label == "fc")
            .unwrap();
        assert_eq!(fc.attrs.c_in, 4 * 4 * 4);
    }
}
