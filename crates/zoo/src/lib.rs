//! Model zoo: the 31 image-classification DNNs used to train and evaluate
//! PredictDDL (Section IV-A2 of the paper draws them from torchvision 0.8).
//!
//! Every architecture is built **from scratch** as a [`pddl_graph::CompGraph`]
//! of primitive operations with shape metadata, so FLOPs, parameter counts,
//! layer counts, and structural statistics all derive analytically from the
//! graph — exactly the information PyTorch's DAG export would provide.
//!
//! Architectures are parameterized by the input resolution and class count of
//! the target dataset ([`dataset::DatasetDesc`]), mirroring how the paper
//! trains the same torchvision models on CIFAR-10 (32×32, 10 classes) and
//! Tiny-ImageNet (64×64, 200 classes).

pub mod builder;
pub mod dataset;
pub mod families;
pub mod registry;

pub use builder::NetBuilder;
pub use dataset::{DatasetDesc, CIFAR10, TINY_IMAGENET};
pub use registry::{build_model, model_names, ModelSpec};
