//! Dataset descriptors.
//!
//! The predictor never touches pixels (see DESIGN.md substitution table);
//! what it needs is the metadata that drives model construction (resolution,
//! class count) and the simulator's data-loading cost (bytes on disk, number
//! of examples). Figures match Section IV-A3 of the paper.

use serde::{Deserialize, Serialize};

/// Metadata for a training dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetDesc {
    /// Canonical name used as the GHN-registry key ("cifar10", …).
    pub name: &'static str,
    /// Number of training examples.
    pub num_examples: usize,
    /// Number of classes (sets the classifier head width).
    pub num_classes: usize,
    /// Square input resolution (H = W).
    pub resolution: usize,
    /// Input channels.
    pub channels: usize,
    /// Size on disk in bytes (drives NFS loading cost).
    pub bytes_on_disk: u64,
}

/// CIFAR-10: 60,000 images, 10 classes, ≈163 MB (paper §IV-A3).
pub const CIFAR10: DatasetDesc = DatasetDesc {
    name: "cifar10",
    num_examples: 50_000, // training split of the 60k total
    num_classes: 10,
    resolution: 32,
    channels: 3,
    bytes_on_disk: 163 * 1024 * 1024,
};

/// Tiny-ImageNet: 100,000 images, 200 classes, ≈250 MB (paper §IV-A3).
pub const TINY_IMAGENET: DatasetDesc = DatasetDesc {
    name: "tiny-imagenet",
    num_examples: 100_000,
    num_classes: 200,
    resolution: 64,
    channels: 3,
    bytes_on_disk: 250 * 1024 * 1024,
};

/// All built-in datasets.
pub const ALL_DATASETS: [&DatasetDesc; 2] = [&CIFAR10, &TINY_IMAGENET];

/// Looks up a dataset descriptor by name (case-insensitive).
pub fn dataset_by_name(name: &str) -> Option<&'static DatasetDesc> {
    let lower = name.to_ascii_lowercase();
    ALL_DATASETS
        .into_iter()
        .find(|d| d.name == lower || d.name.replace('-', "") == lower.replace('-', ""))
}

impl DatasetDesc {
    /// Average bytes of one encoded example (drives per-iteration IO).
    pub fn bytes_per_example(&self) -> f64 {
        self.bytes_on_disk as f64 / self.num_examples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("cifar10").unwrap().num_classes, 10);
        assert_eq!(dataset_by_name("CIFAR10").unwrap().resolution, 32);
        assert_eq!(dataset_by_name("tiny-imagenet").unwrap().num_classes, 200);
        assert_eq!(dataset_by_name("tinyimagenet").unwrap().resolution, 64);
        assert!(dataset_by_name("imagenet21k").is_none());
    }

    #[test]
    fn bytes_per_example_sane() {
        // CIFAR-10 images are ~3 KB encoded.
        let b = CIFAR10.bytes_per_example();
        assert!(b > 1_000.0 && b < 10_000.0, "{b}");
    }
}
