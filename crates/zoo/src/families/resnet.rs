//! The ResNet family (He et al., 2016), including the ResNeXt grouped
//! variants (Xie et al.) and Wide-ResNets — 9 of the paper's 31 models.

use crate::builder::{strided, Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Residual block flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    /// Two 3×3 convs (ResNet-18/34).
    Basic,
    /// 1×1 → 3×3 → 1×1 with 4× expansion (ResNet-50+).
    Bottleneck,
}

/// Configuration shared across the family.
struct ResNetCfg {
    name: &'static str,
    block: Block,
    layers: [usize; 4],
    /// Convolution groups in the 3×3 of a bottleneck (ResNeXt cardinality).
    groups: usize,
    /// Bottleneck base width (64 vanilla, 128 wide, 4·groups ResNeXt).
    width_per_group: usize,
}

fn cfg(name: &str) -> ResNetCfg {
    match name {
        "resnet18" => ResNetCfg { name: "resnet18", block: Block::Basic, layers: [2, 2, 2, 2], groups: 1, width_per_group: 64 },
        "resnet34" => ResNetCfg { name: "resnet34", block: Block::Basic, layers: [3, 4, 6, 3], groups: 1, width_per_group: 64 },
        "resnet50" => ResNetCfg { name: "resnet50", block: Block::Bottleneck, layers: [3, 4, 6, 3], groups: 1, width_per_group: 64 },
        "resnet101" => ResNetCfg { name: "resnet101", block: Block::Bottleneck, layers: [3, 4, 23, 3], groups: 1, width_per_group: 64 },
        "resnet152" => ResNetCfg { name: "resnet152", block: Block::Bottleneck, layers: [3, 8, 36, 3], groups: 1, width_per_group: 64 },
        "resnext50_32x4d" => ResNetCfg { name: "resnext50_32x4d", block: Block::Bottleneck, layers: [3, 4, 6, 3], groups: 32, width_per_group: 4 },
        "resnext101_32x8d" => ResNetCfg { name: "resnext101_32x8d", block: Block::Bottleneck, layers: [3, 4, 23, 3], groups: 32, width_per_group: 8 },
        "wide_resnet50_2" => ResNetCfg { name: "wide_resnet50_2", block: Block::Bottleneck, layers: [3, 4, 6, 3], groups: 1, width_per_group: 128 },
        "wide_resnet101_2" => ResNetCfg { name: "wide_resnet101_2", block: Block::Bottleneck, layers: [3, 4, 23, 3], groups: 1, width_per_group: 128 },
        other => panic!("unknown resnet variant {other}"),
    }
}

/// Builds one of the nine ResNet-family variants.
pub fn resnet(variant: &str, ds: &DatasetDesc) -> CompGraph {
    let c = cfg(variant);
    let mut b = NetBuilder::new(c.name, ds.channels, ds.resolution);
    // Stem: 7×7/2 conv + 3×3/2 maxpool.
    b.conv_bn_act(64, 7, 2, Act::Relu, "stem.conv");
    b.max_pool(3, 2, "stem.pool");

    let mut in_planes = 64usize;
    for (stage, &blocks) in c.layers.iter().enumerate() {
        let planes = 64 << stage; // 64, 128, 256, 512
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let label = format!("layer{}.{}", stage + 1, blk);
            in_planes = match c.block {
                Block::Basic => basic_block(&mut b, in_planes, planes, stride, &label),
                Block::Bottleneck => bottleneck(
                    &mut b,
                    in_planes,
                    planes,
                    stride,
                    c.groups,
                    c.width_per_group,
                    &label,
                ),
            };
        }
    }
    b.classifier(ds.num_classes);
    b.finish()
}

/// Two 3×3 convs plus identity (or 1×1-projected) skip. Returns out planes.
fn basic_block(b: &mut NetBuilder, in_planes: usize, planes: usize, stride: usize, label: &str) -> usize {
    let entry = b.cursor();
    b.conv_bn_act(planes, 3, stride, Act::Relu, &format!("{label}.conv1"));
    b.conv(planes, 3, 1, &format!("{label}.conv2"));
    b.bn(&format!("{label}.bn2"));
    let main = b.cursor();
    let skip = if stride != 1 || in_planes != planes {
        b.set(entry);
        b.conv(planes, 1, stride, &format!("{label}.downsample"));
        b.bn(&format!("{label}.downsample.bn"))
    } else {
        entry
    };
    b.set(main);
    b.sum_with(skip, &format!("{label}.add"));
    b.act(Act::Relu, &format!("{label}.relu"));
    planes
}

/// 1×1 reduce → (grouped) 3×3 → 1×1 expand (4×). Returns out planes.
fn bottleneck(
    b: &mut NetBuilder,
    in_planes: usize,
    planes: usize,
    stride: usize,
    groups: usize,
    width_per_group: usize,
    label: &str,
) -> usize {
    // torchvision: width = planes * (width_per_group / 64) * groups.
    let width = (planes * width_per_group * groups / 64).max(groups);
    let out_planes = planes * 4;
    let entry = b.cursor();
    b.conv_bn_act(width, 1, 1, Act::Relu, &format!("{label}.conv1"));
    if groups > 1 {
        b.group_conv(width, 3, stride, groups, &format!("{label}.conv2"));
        b.bn(&format!("{label}.bn2"));
        b.act(Act::Relu, &format!("{label}.relu2"));
    } else {
        b.conv_bn_act(width, 3, stride, Act::Relu, &format!("{label}.conv2"));
    }
    b.conv(out_planes, 1, 1, &format!("{label}.conv3"));
    b.bn(&format!("{label}.bn3"));
    let main = b.cursor();
    let skip = if stride != 1 || in_planes != out_planes {
        b.set(entry);
        b.conv(out_planes, 1, stride, &format!("{label}.downsample"));
        b.bn(&format!("{label}.downsample.bn"))
    } else {
        entry
    };
    b.set(main);
    debug_assert_eq!(main.spatial, strided(entry.spatial, stride));
    b.sum_with(skip, &format!("{label}.add"));
    b.act(Act::Relu, &format!("{label}.relu"));
    out_planes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CIFAR10, TINY_IMAGENET};

    #[test]
    fn all_variants_validate() {
        for v in [
            "resnet18",
            "resnet34",
            "resnet50",
            "resnet101",
            "resnet152",
            "resnext50_32x4d",
            "resnext101_32x8d",
            "wide_resnet50_2",
            "wide_resnet101_2",
        ] {
            for ds in [&CIFAR10, &TINY_IMAGENET] {
                let g = resnet(v, ds);
                assert_eq!(g.validate(), Ok(()), "{v} on {}", ds.name);
            }
        }
    }

    #[test]
    fn resnet18_layer_count() {
        // 1 stem + 16 block convs + 3 downsample 1×1 + 1 fc = 21 weight layers.
        let g = resnet("resnet18", &CIFAR10);
        assert_eq!(g.num_layers(), 21);
    }

    #[test]
    fn resnet50_params_in_expected_range() {
        // torchvision ResNet-50 has ~25.6M parameters at 1000 classes;
        // with 10 classes it loses the big FC → ~23.5M.
        let g = resnet("resnet50", &CIFAR10);
        let p = g.num_params() as f64 / 1e6;
        assert!(p > 20.0 && p < 30.0, "params {p}M");
    }

    #[test]
    fn depth_ordering_holds() {
        let f18 = resnet("resnet18", &CIFAR10).flops_per_example();
        let f50 = resnet("resnet50", &CIFAR10).flops_per_example();
        let f152 = resnet("resnet152", &CIFAR10).flops_per_example();
        assert!(f18 < f50 && f50 < f152);
    }

    #[test]
    fn wide_is_heavier_than_vanilla() {
        let v = resnet("resnet50", &CIFAR10);
        let w = resnet("wide_resnet50_2", &CIFAR10);
        assert!(w.num_params() > 2 * v.num_params() / 2 && w.num_params() > v.num_params());
        assert!(w.flops_per_example() > v.flops_per_example());
    }

    #[test]
    fn resnext_uses_grouped_convs() {
        let g = resnet("resnext50_32x4d", &CIFAR10);
        assert!(g.grouped_flop_fraction() > 0.05, "{}", g.grouped_flop_fraction());
        let plain = resnet("resnet50", &CIFAR10);
        assert_eq!(plain.grouped_flop_fraction(), 0.0);
    }
}
