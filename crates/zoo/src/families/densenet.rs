//! DenseNet (Huang et al., 2017): densely connected blocks with cumulative
//! channel concatenation and 1×1/avg-pool transitions.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

struct DenseCfg {
    name: &'static str,
    growth: usize,
    blocks: [usize; 4],
    init_features: usize,
}

fn cfg(variant: &str) -> DenseCfg {
    match variant {
        "densenet121" => DenseCfg { name: "densenet121", growth: 32, blocks: [6, 12, 24, 16], init_features: 64 },
        "densenet161" => DenseCfg { name: "densenet161", growth: 48, blocks: [6, 12, 36, 24], init_features: 96 },
        "densenet169" => DenseCfg { name: "densenet169", growth: 32, blocks: [6, 12, 32, 32], init_features: 64 },
        "densenet201" => DenseCfg { name: "densenet201", growth: 32, blocks: [6, 12, 48, 32], init_features: 64 },
        other => panic!("unknown densenet variant {other}"),
    }
}

/// BN → ReLU → 1×1 conv (4k bottleneck) → BN → ReLU → 3×3 conv (k) →
/// concat with the running feature map.
fn dense_layer(b: &mut NetBuilder, growth: usize, label: &str) {
    let trunk = b.cursor();
    b.bn(&format!("{label}.bn1"));
    b.act(Act::Relu, &format!("{label}.relu1"));
    b.conv(4 * growth, 1, 1, &format!("{label}.conv1"));
    b.bn(&format!("{label}.bn2"));
    b.act(Act::Relu, &format!("{label}.relu2"));
    let new_features = b.conv(growth, 3, 1, &format!("{label}.conv2"));
    let _ = new_features;
    let fresh = b.cursor();
    b.set(trunk);
    // Cumulative concat: previous trunk ‖ new features.
    b.concat(&[trunk, fresh], &format!("{label}.cat"));
}

/// 1×1 conv halving channels, then 2×2 average pool.
fn transition(b: &mut NetBuilder, label: &str) {
    let c = b.cursor().channels / 2;
    b.bn(&format!("{label}.bn"));
    b.act(Act::Relu, &format!("{label}.relu"));
    b.conv(c, 1, 1, &format!("{label}.conv"));
    b.avg_pool(2, 2, &format!("{label}.pool"));
}

/// Builds one of the four DenseNet variants.
pub fn densenet(variant: &str, ds: &DatasetDesc) -> CompGraph {
    let c = cfg(variant);
    let mut b = NetBuilder::new(c.name, ds.channels, ds.resolution);
    b.conv_bn_act(c.init_features, 7, 2, Act::Relu, "stem.conv");
    b.max_pool(3, 2, "stem.pool");
    for (stage, &layers) in c.blocks.iter().enumerate() {
        for l in 0..layers {
            dense_layer(&mut b, c.growth, &format!("denseblock{}.layer{}", stage + 1, l + 1));
        }
        if stage + 1 < c.blocks.len() {
            transition(&mut b, &format!("transition{}", stage + 1));
        }
    }
    b.bn("final.bn");
    b.act(Act::Relu, "final.relu");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CIFAR10;

    #[test]
    fn all_variants_validate() {
        for v in ["densenet121", "densenet161", "densenet169", "densenet201"] {
            assert_eq!(densenet(v, &CIFAR10).validate(), Ok(()), "{v}");
        }
    }

    #[test]
    fn densenet121_params_in_range() {
        // ~8M params at 1000 classes; slightly less with 10 classes.
        let p = densenet("densenet121", &CIFAR10).num_params() as f64 / 1e6;
        assert!(p > 5.0 && p < 10.0, "params {p}M");
    }

    #[test]
    fn channel_growth_accumulates() {
        let g = densenet("densenet121", &CIFAR10);
        // Final BN width: 64→(+6·32)=256→/2=128→(+12·32)=512→/2=256→
        // (+24·32)=1024→/2=512→(+16·32)=1024.
        let final_bn = g.nodes().iter().find(|n| n.label == "final.bn").unwrap();
        assert_eq!(final_bn.attrs.c_out, 1024);
    }

    #[test]
    fn deeper_variants_cost_more() {
        let f121 = densenet("densenet121", &CIFAR10).flops_per_example();
        let f201 = densenet("densenet201", &CIFAR10).flops_per_example();
        assert!(f201 > f121);
    }

    #[test]
    fn densenet_is_concat_heavy() {
        let g = densenet("densenet121", &CIFAR10);
        assert!(g.branching_fraction() > 0.05);
    }
}
