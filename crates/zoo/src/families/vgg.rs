//! VGG (Simonyan & Zisserman, 2014): configurations A/B/D/E = VGG-11/13/16/19.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Marker for a max-pool in the configuration string.
const M: usize = 0;

/// torchvision configuration tables ("M" = maxpool 2×2/2).
fn config(depth: usize) -> &'static [usize] {
    match depth {
        11 => &[64, M, 128, M, 256, 256, M, 512, 512, M, 512, 512, M],
        13 => &[64, 64, M, 128, 128, M, 256, 256, M, 512, 512, M, 512, 512, M],
        16 => &[
            64, 64, M, 128, 128, M, 256, 256, 256, M, 512, 512, 512, M, 512, 512, 512, M,
        ],
        19 => &[
            64, 64, M, 128, 128, M, 256, 256, 256, 256, M, 512, 512, 512, 512, M, 512, 512,
            512, 512, M,
        ],
        other => panic!("no VGG-{other} configuration"),
    }
}

/// Builds a batch-normalized VGG of the given depth (11/13/16/19).
pub fn vgg(depth: usize, ds: &DatasetDesc) -> CompGraph {
    let mut b = NetBuilder::new(&format!("vgg{depth}"), ds.channels, ds.resolution);
    let mut conv_idx = 0usize;
    for &c in config(depth) {
        if c == M {
            b.max_pool(2, 2, &format!("pool{conv_idx}"));
        } else {
            b.conv_bn_act(c, 3, 1, Act::Relu, &format!("conv{conv_idx}"));
            conv_idx += 1;
        }
    }
    b.dense(4096, "classifier.fc1");
    b.act(Act::Relu, "classifier.relu1");
    b.dropout("classifier.drop1");
    b.dense(4096, "classifier.fc2");
    b.act(Act::Relu, "classifier.relu2");
    b.dropout("classifier.drop2");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CIFAR10;

    #[test]
    fn depths_have_expected_layer_counts() {
        // #weight layers = depth − 3 convs + 3 FCs = depth.
        for d in [11, 13, 16, 19] {
            let g = vgg(d, &CIFAR10);
            assert_eq!(g.validate(), Ok(()));
            assert_eq!(g.num_layers(), d, "vgg{d}");
        }
    }

    #[test]
    fn vgg16_is_flop_heavy() {
        let g16 = vgg(16, &CIFAR10);
        let g11 = vgg(11, &CIFAR10);
        assert!(g16.flops_per_example() > g11.flops_per_example());
        // Well over 100 MFLOPs even at 32×32.
        assert!(g16.flops_per_example() > 1e8);
    }

    #[test]
    #[should_panic(expected = "no VGG-17")]
    fn unknown_depth_panics() {
        let _ = vgg(17, &CIFAR10);
    }
}
