//! ShuffleNet-V2 (Ma et al., 2018): channel-split units with channel shuffle.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Stage output channels per width multiplier, plus head width.
fn channels(mult: &str) -> ([usize; 3], usize) {
    match mult {
        "x0_5" => ([48, 96, 192], 1024),
        "x1_0" => ([116, 232, 464], 1024),
        other => panic!("unknown shufflenet width {other}"),
    }
}

/// Stride-1 unit: split channels, right branch 1×1 → dw3×3 → 1×1, concat,
/// shuffle. The split is modeled as two 1×1 identity-width convs feeding the
/// branches (the graph carries data flow, not tensor views).
fn unit_stride1(b: &mut NetBuilder, label: &str) {
    let entry = b.cursor();
    let half = entry.channels / 2;
    // Left branch: pass-through of half the channels.
    b.set(entry);
    let left = b.conv(half, 1, 1, &format!("{label}.split_left"));
    // Right branch.
    b.set(entry);
    b.conv_bn_act(half, 1, 1, Act::Relu, &format!("{label}.conv1"));
    b.dw_bn_act(3, 1, Act::None, &format!("{label}.dw"));
    let right = b.conv_bn_act(half, 1, 1, Act::Relu, &format!("{label}.conv2"));
    b.concat(&[left, right], &format!("{label}.cat"));
    b.channel_shuffle(&format!("{label}.shuffle"));
}

/// Stride-2 unit: both branches downsample; output channels double to c_out.
fn unit_stride2(b: &mut NetBuilder, c_out: usize, label: &str) {
    let entry = b.cursor();
    let half = c_out / 2;
    // Left: dw3×3/2 → 1×1.
    b.set(entry);
    b.dw_bn_act(3, 2, Act::None, &format!("{label}.left.dw"));
    let left = b.conv_bn_act(half, 1, 1, Act::Relu, &format!("{label}.left.conv"));
    // Right: 1×1 → dw3×3/2 → 1×1.
    b.set(entry);
    b.conv_bn_act(half, 1, 1, Act::Relu, &format!("{label}.right.conv1"));
    b.dw_bn_act(3, 2, Act::None, &format!("{label}.right.dw"));
    let right = b.conv_bn_act(half, 1, 1, Act::Relu, &format!("{label}.right.conv2"));
    b.concat(&[left, right], &format!("{label}.cat"));
    b.channel_shuffle(&format!("{label}.shuffle"));
}

/// Builds ShuffleNet-V2; `mult` is "x0_5" or "x1_0".
pub fn shufflenet_v2(mult: &str, ds: &DatasetDesc) -> CompGraph {
    let (stage_channels, head) = channels(mult);
    let repeats = [4usize, 8, 4];
    let mut b = NetBuilder::new(&format!("shufflenet_v2_{mult}"), ds.channels, ds.resolution);
    b.conv_bn_act(24, 3, 2, Act::Relu, "stem.conv");
    b.max_pool(3, 2, "stem.pool");
    for (stage, (&c_out, &n)) in stage_channels.iter().zip(&repeats).enumerate() {
        unit_stride2(&mut b, c_out, &format!("stage{}.0", stage + 2));
        for i in 1..n {
            unit_stride1(&mut b, &format!("stage{}.{}", stage + 2, i));
        }
    }
    b.conv_bn_act(head, 1, 1, Act::Relu, "head.conv");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CIFAR10;

    #[test]
    fn both_widths_validate() {
        for m in ["x0_5", "x1_0"] {
            assert_eq!(shufflenet_v2(m, &CIFAR10).validate(), Ok(()), "{m}");
        }
    }

    #[test]
    fn wider_costs_more() {
        let small = shufflenet_v2("x0_5", &CIFAR10);
        let big = shufflenet_v2("x1_0", &CIFAR10);
        assert!(big.flops_per_example() > small.flops_per_example());
        assert!(big.num_params() > small.num_params());
    }

    #[test]
    fn has_channel_shuffles() {
        let g = shufflenet_v2("x1_0", &CIFAR10);
        let shuffles = g
            .nodes()
            .iter()
            .filter(|n| n.kind == pddl_graph::OpKind::ChannelShuffle)
            .count();
        assert_eq!(shuffles, 16, "one shuffle per unit");
    }
}
