//! AlexNet (Krizhevsky et al., 2012) as shipped in torchvision.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Builds AlexNet for the given dataset.
pub fn alexnet(ds: &DatasetDesc) -> CompGraph {
    let mut b = NetBuilder::new("alexnet", ds.channels, ds.resolution);
    b.conv(64, 11, 4, "features.0");
    b.act(Act::Relu, "features.1");
    b.max_pool(3, 2, "features.2");
    b.conv(192, 5, 1, "features.3");
    b.act(Act::Relu, "features.4");
    b.max_pool(3, 2, "features.5");
    b.conv(384, 3, 1, "features.6");
    b.act(Act::Relu, "features.7");
    b.conv(256, 3, 1, "features.8");
    b.act(Act::Relu, "features.9");
    b.conv(256, 3, 1, "features.10");
    b.act(Act::Relu, "features.11");
    b.max_pool(3, 2, "features.12");
    // torchvision adaptively pools to 6×6 before the classifier; on the
    // small inputs here the maps are already ≤ 6×6, so pool to 1 and widen
    // the first FC accordingly via the flatten in `dense`.
    b.dropout("classifier.drop1");
    b.dense(4096, "classifier.fc1");
    b.act(Act::Relu, "classifier.relu1");
    b.dropout("classifier.drop2");
    b.dense(4096, "classifier.fc2");
    b.act(Act::Relu, "classifier.relu2");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CIFAR10, TINY_IMAGENET};

    #[test]
    fn validates_on_both_datasets() {
        for ds in [&CIFAR10, &TINY_IMAGENET] {
            let g = alexnet(ds);
            assert_eq!(g.validate(), Ok(()), "{}", ds.name);
        }
    }

    #[test]
    fn has_eight_weight_layers() {
        // 5 convs + 2 hidden FCs + classifier FC (SE-free, classic AlexNet).
        let g = alexnet(&CIFAR10);
        assert_eq!(g.num_layers(), 8);
    }

    #[test]
    fn params_dominated_by_fc() {
        let g = alexnet(&CIFAR10);
        // AlexNet is famously FC-heavy; >10M params even at CIFAR scale.
        assert!(g.num_params() > 10_000_000, "{}", g.num_params());
    }
}
