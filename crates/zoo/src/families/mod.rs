//! One module per architecture family. Each exposes builder functions taking
//! a [`DatasetDesc`](crate::dataset::DatasetDesc) and returning a validated
//! [`CompGraph`](pddl_graph::CompGraph).

pub mod alexnet;
pub mod densenet;
pub mod efficientnet;
pub mod googlenet;
pub mod mnasnet;
pub mod mobilenet;
pub mod resnet;
pub mod shufflenet;
pub mod squeezenet;
pub mod vgg;
