//! GoogLeNet / Inception-v1 (Szegedy et al., 2015).

use crate::builder::{Act, Cursor, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Inception module: four parallel branches concatenated.
/// (b1: 1×1; b2: 1×1→3×3; b3: 1×1→5×5; b4: pool→1×1)
#[allow(clippy::too_many_arguments)]
fn inception(
    b: &mut NetBuilder,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pool_proj: usize,
    label: &str,
) {
    let root = b.cursor();
    let branch = |b: &mut NetBuilder, root: Cursor| {
        b.set(root);
    };
    branch(b, root);
    let b1 = b.conv_bn_act(c1, 1, 1, Act::Relu, &format!("{label}.b1"));
    branch(b, root);
    b.conv_bn_act(c3r, 1, 1, Act::Relu, &format!("{label}.b2.reduce"));
    let b2 = b.conv_bn_act(c3, 3, 1, Act::Relu, &format!("{label}.b2"));
    branch(b, root);
    b.conv_bn_act(c5r, 1, 1, Act::Relu, &format!("{label}.b3.reduce"));
    let b3 = b.conv_bn_act(c5, 5, 1, Act::Relu, &format!("{label}.b3"));
    branch(b, root);
    b.max_pool(3, 1, &format!("{label}.b4.pool"));
    let b4 = b.conv_bn_act(pool_proj, 1, 1, Act::Relu, &format!("{label}.b4"));
    b.concat(&[b1, b2, b3, b4], &format!("{label}.cat"));
}

/// Builds GoogLeNet (aux classifiers omitted, as torchvision does at eval).
pub fn googlenet(ds: &DatasetDesc) -> CompGraph {
    let mut b = NetBuilder::new("googlenet", ds.channels, ds.resolution);
    b.conv_bn_act(64, 7, 2, Act::Relu, "stem.conv1");
    b.max_pool(3, 2, "stem.pool1");
    b.conv_bn_act(64, 1, 1, Act::Relu, "stem.conv2");
    b.conv_bn_act(192, 3, 1, Act::Relu, "stem.conv3");
    b.max_pool(3, 2, "stem.pool2");
    inception(&mut b, 64, 96, 128, 16, 32, 32, "inception3a");
    inception(&mut b, 128, 128, 192, 32, 96, 64, "inception3b");
    b.max_pool(3, 2, "pool3");
    inception(&mut b, 192, 96, 208, 16, 48, 64, "inception4a");
    inception(&mut b, 160, 112, 224, 24, 64, 64, "inception4b");
    inception(&mut b, 128, 128, 256, 24, 64, 64, "inception4c");
    inception(&mut b, 112, 144, 288, 32, 64, 64, "inception4d");
    inception(&mut b, 256, 160, 320, 32, 128, 128, "inception4e");
    b.max_pool(3, 2, "pool4");
    inception(&mut b, 256, 160, 320, 32, 128, 128, "inception5a");
    inception(&mut b, 384, 192, 384, 48, 128, 128, "inception5b");
    b.dropout("head.dropout");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CIFAR10;

    #[test]
    fn validates() {
        assert_eq!(googlenet(&CIFAR10).validate(), Ok(()));
    }

    #[test]
    fn final_inception_width() {
        let g = googlenet(&CIFAR10);
        let cat = g
            .nodes()
            .iter()
            .find(|n| n.label == "inception5b.cat")
            .unwrap();
        assert_eq!(cat.attrs.c_out, 384 + 384 + 128 + 128);
    }

    #[test]
    fn params_in_range() {
        // ~6.6M at 1000 classes (with BN variant).
        let p = googlenet(&CIFAR10).num_params() as f64 / 1e6;
        assert!(p > 4.0 && p < 9.0, "params {p}M");
    }

    #[test]
    fn branch_heavy_topology() {
        let g = googlenet(&CIFAR10);
        assert!(g.branching_fraction() > 0.03);
    }
}
