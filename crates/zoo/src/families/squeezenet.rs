//! SqueezeNet 1.0/1.1 (Iandola et al., 2016): fire modules.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Fire module: squeeze 1×1 → (expand 1×1 ‖ expand 3×3) → concat.
fn fire(b: &mut NetBuilder, s: usize, e1: usize, e3: usize, label: &str) {
    b.conv(s, 1, 1, &format!("{label}.squeeze"));
    b.act(Act::Relu, &format!("{label}.squeeze.relu"));
    let root = b.cursor();
    let left = {
        b.conv(e1, 1, 1, &format!("{label}.expand1x1"));
        b.act(Act::Relu, &format!("{label}.expand1x1.relu"))
    };
    b.set(root);
    let right = {
        b.conv(e3, 3, 1, &format!("{label}.expand3x3"));
        b.act(Act::Relu, &format!("{label}.expand3x3.relu"))
    };
    b.concat(&[left, right], &format!("{label}.cat"));
}

/// Builds SqueezeNet; `version` is "1_0" or "1_1".
pub fn squeezenet(version: &str, ds: &DatasetDesc) -> CompGraph {
    let name = format!("squeezenet{version}");
    let mut b = NetBuilder::new(&name, ds.channels, ds.resolution);
    match version {
        "1_0" => {
            b.conv(96, 7, 2, "features.0");
            b.act(Act::Relu, "features.0.relu");
            b.max_pool(3, 2, "features.pool0");
            fire(&mut b, 16, 64, 64, "fire2");
            fire(&mut b, 16, 64, 64, "fire3");
            fire(&mut b, 32, 128, 128, "fire4");
            b.max_pool(3, 2, "features.pool1");
            fire(&mut b, 32, 128, 128, "fire5");
            fire(&mut b, 48, 192, 192, "fire6");
            fire(&mut b, 48, 192, 192, "fire7");
            fire(&mut b, 64, 256, 256, "fire8");
            b.max_pool(3, 2, "features.pool2");
            fire(&mut b, 64, 256, 256, "fire9");
        }
        "1_1" => {
            b.conv(64, 3, 2, "features.0");
            b.act(Act::Relu, "features.0.relu");
            b.max_pool(3, 2, "features.pool0");
            fire(&mut b, 16, 64, 64, "fire2");
            fire(&mut b, 16, 64, 64, "fire3");
            b.max_pool(3, 2, "features.pool1");
            fire(&mut b, 32, 128, 128, "fire4");
            fire(&mut b, 32, 128, 128, "fire5");
            b.max_pool(3, 2, "features.pool2");
            fire(&mut b, 48, 192, 192, "fire6");
            fire(&mut b, 48, 192, 192, "fire7");
            fire(&mut b, 64, 256, 256, "fire8");
            fire(&mut b, 64, 256, 256, "fire9");
        }
        other => panic!("unknown squeezenet version {other}"),
    }
    b.dropout("classifier.drop");
    // SqueezeNet's classifier is a 1×1 conv, not an FC.
    b.conv(ds.num_classes, 1, 1, "classifier.conv");
    b.act(Act::Relu, "classifier.relu");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CIFAR10;

    #[test]
    fn both_versions_validate() {
        for v in ["1_0", "1_1"] {
            assert_eq!(squeezenet(v, &CIFAR10).validate(), Ok(()));
        }
    }

    #[test]
    fn squeezenet_is_tiny() {
        // SqueezeNet's claim to fame: ~1.2M params.
        let g = squeezenet("1_0", &CIFAR10);
        let p = g.num_params() as f64 / 1e6;
        assert!(p < 3.0, "params {p}M");
    }

    #[test]
    fn v11_cheaper_than_v10() {
        let f0 = squeezenet("1_0", &CIFAR10).flops_per_example();
        let f1 = squeezenet("1_1", &CIFAR10).flops_per_example();
        assert!(f1 < f0);
    }

    #[test]
    fn fire_modules_concat() {
        let g = squeezenet("1_0", &CIFAR10);
        let concats = g
            .nodes()
            .iter()
            .filter(|n| n.kind == pddl_graph::OpKind::Concat)
            .count();
        assert_eq!(concats, 8, "one concat per fire module");
    }
}
