//! EfficientNet B0–B3 (Tan & Le, 2019): MBConv blocks with squeeze-excite
//! and swish, compound-scaled in width and depth.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Base (B0) stage table: expansion, channels, layers, stride, kernel.
const B0_STAGES: [(usize, usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
];

/// Compound-scaling coefficients (width, depth) per variant.
fn coefficients(variant: usize) -> (f64, f64) {
    match variant {
        0 => (1.0, 1.0),
        1 => (1.0, 1.1),
        2 => (1.1, 1.2),
        3 => (1.2, 1.4),
        4 => (1.4, 1.8),
        other => panic!("efficientnet_b{other} not in the zoo"),
    }
}

/// Rounds channels to the nearest multiple of 8, never dropping below 90%
/// of the requested value (the official `round_filters` rule).
fn round_filters(c: usize, width: f64) -> usize {
    let scaled = c as f64 * width;
    let mut rounded = ((scaled + 4.0) / 8.0).floor() as usize * 8;
    if (rounded as f64) < 0.9 * scaled {
        rounded += 8;
    }
    rounded.max(8)
}

fn round_repeats(n: usize, depth: f64) -> usize {
    (n as f64 * depth).ceil() as usize
}

/// MBConv: expand 1×1 → depthwise → SE(r=0.25·expand) → project, residual
/// when shapes allow.
fn mbconv(
    b: &mut NetBuilder,
    expansion: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    label: &str,
) {
    let entry = b.cursor();
    let expanded = entry.channels * expansion;
    if expansion != 1 {
        b.conv_bn_act(expanded, 1, 1, Act::Swish, &format!("{label}.expand"));
    }
    b.dw_bn_act(k, stride, Act::Swish, &format!("{label}.dw"));
    // SE ratio is 0.25 of the *input* channels in the official impl.
    b.squeeze_excite(4 * expansion.max(1), &format!("{label}.se"));
    b.conv(c_out, 1, 1, &format!("{label}.project"));
    b.bn(&format!("{label}.project.bn"));
    if stride == 1 && entry.channels == c_out && entry.spatial == b.cursor().spatial {
        b.sum_with(entry, &format!("{label}.add"));
    }
}

/// Builds EfficientNet-B`variant` (0–4 supported; the zoo registers 0–3).
pub fn efficientnet(variant: usize, ds: &DatasetDesc) -> CompGraph {
    let (width, depth) = coefficients(variant);
    let mut b = NetBuilder::new(&format!("efficientnet_b{variant}"), ds.channels, ds.resolution);
    b.conv_bn_act(round_filters(32, width), 3, 2, Act::Swish, "stem");
    for (stage, &(t, c, n, s, k)) in B0_STAGES.iter().enumerate() {
        let c_out = round_filters(c, width);
        let repeats = round_repeats(n, depth);
        for i in 0..repeats {
            let stride = if i == 0 { s } else { 1 };
            mbconv(&mut b, t, c_out, k, stride, &format!("stage{stage}.{i}"));
        }
    }
    b.conv_bn_act(round_filters(1280, width), 1, 1, Act::Swish, "head.conv");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CIFAR10;

    #[test]
    fn b0_through_b3_validate() {
        for v in 0..=3 {
            assert_eq!(efficientnet(v, &CIFAR10).validate(), Ok(()), "b{v}");
        }
    }

    #[test]
    fn compound_scaling_monotone() {
        let costs: Vec<f64> = (0..=3)
            .map(|v| efficientnet(v, &CIFAR10).flops_per_example())
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] > w[0], "scaling not monotone: {costs:?}");
        }
    }

    #[test]
    fn round_filters_multiple_of_8() {
        for c in [16, 24, 40, 112, 320] {
            for w in [1.0, 1.1, 1.2] {
                assert_eq!(round_filters(c, w) % 8, 0);
            }
        }
    }

    #[test]
    fn b0_params_in_range() {
        // ~5.3M at 1000 classes; ~4M with a small head.
        let p = efficientnet(0, &CIFAR10).num_params() as f64 / 1e6;
        assert!(p > 2.5 && p < 7.0, "params {p}M");
    }

    #[test]
    fn efficientnet_heavy_in_se_gates() {
        let g = efficientnet(0, &CIFAR10);
        let muls = g
            .nodes()
            .iter()
            .filter(|n| n.kind == pddl_graph::OpKind::Mul)
            .count();
        assert!(muls >= 16, "expected one SE gate per block, got {muls}");
    }
}
