//! MNASNet-1.0 (Tan et al., 2019): mobile inverted bottlenecks discovered by
//! architecture search, with SE on some stages.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Stage table: expansion, channels, repeats, stride, kernel, SE.
const STAGES: [(usize, usize, usize, usize, usize, bool); 6] = [
    (3, 24, 3, 2, 3, false),
    (3, 40, 3, 2, 5, true),
    (6, 80, 3, 2, 3, false),
    (6, 96, 2, 1, 3, true),
    (6, 192, 4, 2, 5, true),
    (6, 320, 1, 1, 3, false),
];

fn mb_block(
    b: &mut NetBuilder,
    expansion: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    se: bool,
    label: &str,
) {
    let entry = b.cursor();
    let expanded = entry.channels * expansion;
    b.conv_bn_act(expanded, 1, 1, Act::Relu, &format!("{label}.expand"));
    b.dw_bn_act(k, stride, Act::Relu, &format!("{label}.dw"));
    if se {
        b.squeeze_excite(4, &format!("{label}.se"));
    }
    b.conv(c_out, 1, 1, &format!("{label}.project"));
    b.bn(&format!("{label}.project.bn"));
    if stride == 1 && entry.channels == c_out && entry.spatial == b.cursor().spatial {
        b.sum_with(entry, &format!("{label}.add"));
    }
}

/// Builds MNASNet with depth multiplier 1.0.
pub fn mnasnet_1_0(ds: &DatasetDesc) -> CompGraph {
    let mut b = NetBuilder::new("mnasnet1_0", ds.channels, ds.resolution);
    b.conv_bn_act(32, 3, 2, Act::Relu, "stem.conv1");
    // Initial depthwise separable block.
    b.dw_bn_act(3, 1, Act::Relu, "stem.dw");
    b.conv(16, 1, 1, "stem.project");
    b.bn("stem.project.bn");
    for (stage, &(t, c, n, s, k, se)) in STAGES.iter().enumerate() {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            mb_block(&mut b, t, c, k, stride, se, &format!("stage{stage}.{i}"));
        }
    }
    b.conv_bn_act(1280, 1, 1, Act::Relu, "head.conv");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CIFAR10;

    #[test]
    fn validates() {
        assert_eq!(mnasnet_1_0(&CIFAR10).validate(), Ok(()));
    }

    #[test]
    fn params_in_mobile_range() {
        let p = mnasnet_1_0(&CIFAR10).num_params() as f64 / 1e6;
        assert!(p > 2.0 && p < 6.0, "params {p}M");
    }

    #[test]
    fn depthwise_heavy() {
        assert!(mnasnet_1_0(&CIFAR10).grouped_flop_fraction() > 0.05);
    }
}
