//! MobileNet-V2 (Sandler et al., 2018) and MobileNet-V3 (Howard et al.,
//! 2019): inverted residual blocks, depthwise convolutions, squeeze-excite
//! and hard-swish in the V3 variants.

use crate::builder::{Act, NetBuilder};
use crate::dataset::DatasetDesc;
use pddl_graph::CompGraph;

/// Inverted residual: 1×1 expand → depthwise k×k → (SE) → 1×1 project,
/// with a residual sum when stride = 1 and channels match.
#[allow(clippy::too_many_arguments)]
fn inverted_residual(
    b: &mut NetBuilder,
    expand_to: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    act: Act,
    use_se: bool,
    label: &str,
) {
    let entry = b.cursor();
    if expand_to != entry.channels {
        b.conv_bn_act(expand_to, 1, 1, act, &format!("{label}.expand"));
    }
    b.dw_bn_act(k, stride, act, &format!("{label}.dw"));
    if use_se {
        b.squeeze_excite(4, &format!("{label}.se"));
    }
    b.conv(c_out, 1, 1, &format!("{label}.project"));
    b.bn(&format!("{label}.project.bn"));
    if stride == 1 && entry.channels == c_out && entry.spatial == b.cursor().spatial {
        b.sum_with(entry, &format!("{label}.add"));
    }
}

/// MobileNet-V2: t (expansion), c (channels), n (repeats), s (stride).
const V2_CFG: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Builds MobileNet-V2.
pub fn mobilenet_v2(ds: &DatasetDesc) -> CompGraph {
    let mut b = NetBuilder::new("mobilenet_v2", ds.channels, ds.resolution);
    b.conv_bn_act(32, 3, 2, Act::Relu, "stem");
    for (stage, &(t, c, n, s)) in V2_CFG.iter().enumerate() {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            let expand = b.cursor().channels * t;
            inverted_residual(
                &mut b,
                expand,
                c,
                3,
                stride,
                Act::Relu,
                false,
                &format!("block{stage}.{i}"),
            );
        }
    }
    b.conv_bn_act(1280, 1, 1, Act::Relu, "head.conv");
    b.classifier(ds.num_classes);
    b.finish()
}

/// MobileNet-V3 block config: kernel, expand, out, SE, hard-swish, stride.
type V3Row = (usize, usize, usize, bool, bool, usize);

const V3_SMALL: [V3Row; 11] = [
    (3, 16, 16, true, false, 2),
    (3, 72, 24, false, false, 2),
    (3, 88, 24, false, false, 1),
    (5, 96, 40, true, true, 2),
    (5, 240, 40, true, true, 1),
    (5, 240, 40, true, true, 1),
    (5, 120, 48, true, true, 1),
    (5, 144, 48, true, true, 1),
    (5, 288, 96, true, true, 2),
    (5, 576, 96, true, true, 1),
    (5, 576, 96, true, true, 1),
];

const V3_LARGE: [V3Row; 15] = [
    (3, 16, 16, false, false, 1),
    (3, 64, 24, false, false, 2),
    (3, 72, 24, false, false, 1),
    (5, 72, 40, true, false, 2),
    (5, 120, 40, true, false, 1),
    (5, 120, 40, true, false, 1),
    (3, 240, 80, false, true, 2),
    (3, 200, 80, false, true, 1),
    (3, 184, 80, false, true, 1),
    (3, 184, 80, false, true, 1),
    (3, 480, 112, true, true, 1),
    (3, 672, 112, true, true, 1),
    (5, 672, 160, true, true, 2),
    (5, 960, 160, true, true, 1),
    (5, 960, 160, true, true, 1),
];

/// Builds MobileNet-V3; `size` is "small" or "large".
pub fn mobilenet_v3(size: &str, ds: &DatasetDesc) -> CompGraph {
    let (rows, head): (&[V3Row], usize) = match size {
        "small" => (&V3_SMALL, 576),
        "large" => (&V3_LARGE, 960),
        other => panic!("unknown mobilenet_v3 size {other}"),
    };
    let mut b = NetBuilder::new(&format!("mobilenet_v3_{size}"), ds.channels, ds.resolution);
    b.conv_bn_act(16, 3, 2, Act::HardSwish, "stem");
    for (i, &(k, exp, out, se, hs, stride)) in rows.iter().enumerate() {
        let act = if hs { Act::HardSwish } else { Act::Relu };
        inverted_residual(&mut b, exp, out, k, stride, act, se, &format!("block{i}"));
    }
    b.conv_bn_act(head, 1, 1, Act::HardSwish, "head.conv");
    b.classifier(ds.num_classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CIFAR10, TINY_IMAGENET};

    #[test]
    fn all_variants_validate() {
        for ds in [&CIFAR10, &TINY_IMAGENET] {
            assert_eq!(mobilenet_v2(ds).validate(), Ok(()));
            assert_eq!(mobilenet_v3("small", ds).validate(), Ok(()));
            assert_eq!(mobilenet_v3("large", ds).validate(), Ok(()));
        }
    }

    #[test]
    fn v3_small_lighter_than_large() {
        let s = mobilenet_v3("small", &CIFAR10);
        let l = mobilenet_v3("large", &CIFAR10);
        assert!(s.num_params() < l.num_params());
        assert!(s.flops_per_example() < l.flops_per_example());
    }

    #[test]
    fn mobilenets_are_depthwise_heavy() {
        for g in [
            mobilenet_v2(&CIFAR10),
            mobilenet_v3("small", &CIFAR10),
            mobilenet_v3("large", &CIFAR10),
        ] {
            // Depthwise convs are FLOP-cheap by design, so even a
            // depthwise-dominated net has a modest grouped FLOP share.
            assert!(
                g.grouped_flop_fraction() > 0.05,
                "{} grouped fraction {}",
                g.name,
                g.grouped_flop_fraction()
            );
        }
    }

    #[test]
    fn v3_uses_squeeze_excite() {
        let g = mobilenet_v3("small", &CIFAR10);
        let muls = g
            .nodes()
            .iter()
            .filter(|n| n.kind == pddl_graph::OpKind::Mul)
            .count();
        assert!(muls >= 8, "SE gates missing: {muls}");
    }

    #[test]
    fn v2_params_in_range() {
        // ~3.5M at 1000 classes; ~2.3M with a 10-class head.
        let p = mobilenet_v2(&CIFAR10).num_params() as f64 / 1e6;
        assert!(p > 1.5 && p < 4.5, "params {p}M");
    }
}
