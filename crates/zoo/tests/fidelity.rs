//! Fidelity checks: parameter counts of the graph builders against the
//! published torchvision numbers (at 1000 ImageNet classes the references
//! are exact; here heads are sized for the target dataset, so we compare
//! *backbone-dominated* totals with a tolerance).

use pddl_zoo::{build_model, DatasetDesc};

/// Full ImageNet geometry (224 px, 1000 classes) to compare directly with
/// torchvision's published parameter counts. Conv backbones are
/// resolution-independent; AlexNet/VGG FC widths require the 224-px input.
const IMAGENET_1K: DatasetDesc = DatasetDesc {
    name: "tiny-imagenet",
    num_examples: 100_000,
    num_classes: 1000,
    resolution: 224,
    channels: 3,
    bytes_on_disk: 250 * 1024 * 1024,
};

/// (model, torchvision params in millions).
const REFERENCE: [(&str, f64); 12] = [
    ("alexnet", 61.1),
    ("vgg16", 138.4),
    ("resnet18", 11.7),
    ("resnet50", 25.6),
    ("resnet152", 60.2),
    ("resnext50_32x4d", 25.0),
    ("wide_resnet50_2", 68.9),
    ("densenet121", 8.0),
    ("squeezenet1_0", 1.2),
    ("mobilenet_v2", 3.5),
    ("googlenet", 6.6),
    ("mnasnet1_0", 4.4),
];

#[test]
fn parameter_counts_match_torchvision_within_tolerance() {
    for (name, reference_m) in REFERENCE {
        let g = build_model(name, &IMAGENET_1K).unwrap();
        let params_m = g.num_params() as f64 / 1e6;
        let rel = (params_m / reference_m - 1.0).abs();
        // Conv backbones should be tight; MNASNet/GoogLeNet use slightly
        // different block plumbing than torchvision, so allow more slack.
        let tol = match name {
            // block plumbing differs slightly from torchvision
            "mnasnet1_0" | "googlenet" | "squeezenet1_0" => 0.90,
            // ceil-division pooling yields 7×7 (not 6×6) before the FC
            "alexnet" => 0.30,
            _ => 0.12,
        };
        assert!(
            rel < tol,
            "{name}: built {params_m:.2}M vs torchvision {reference_m:.2}M ({:.0}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn relative_ordering_matches_torchvision() {
    // Even where absolute counts drift, the ordering must hold.
    let params = |n: &str| build_model(n, &IMAGENET_1K).unwrap().num_params();
    assert!(params("squeezenet1_0") < params("mobilenet_v2"));
    assert!(params("mobilenet_v2") < params("resnet18"));
    assert!(params("resnet18") < params("resnet50"));
    assert!(params("resnet50") < params("resnet152"));
    assert!(params("resnet152") < params("wide_resnet101_2"));
}

#[test]
fn flops_ordering_is_plausible() {
    let flops = |n: &str| {
        build_model(n, &IMAGENET_1K)
            .unwrap()
            .flops_per_example()
    };
    // Known ordering at fixed resolution.
    assert!(flops("squeezenet1_1") < flops("resnet18"));
    assert!(flops("resnet18") < flops("resnet50"));
    assert!(flops("resnet50") < flops("vgg16"));
    assert!(flops("mobilenet_v3_small") < flops("mobilenet_v3_large"));
    assert!(flops("efficientnet_b0") < flops("efficientnet_b3"));
}

#[test]
fn every_model_has_more_nodes_than_layers() {
    for name in pddl_zoo::model_names() {
        let g = build_model(name, &IMAGENET_1K).unwrap();
        assert!(
            g.num_nodes() > g.num_layers(),
            "{name}: {} nodes vs {} layers",
            g.num_nodes(),
            g.num_layers()
        );
    }
}
