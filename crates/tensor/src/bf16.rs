//! bf16 storage for frozen inference weights.
//!
//! bfloat16 keeps f32's 8-bit exponent and truncates the mantissa to
//! 7 bits — the top 16 bits of the f32 pattern. That makes widening
//! *exact* (shift left 16) and quantization a single round-to-nearest-
//! even on the mantissa boundary, with a worst-case relative error of
//! 2⁻⁸ ≈ 0.39% per weight. Trained f32 weights are quantized once at
//! checkpoint-load time into [`PackedBf16`] panels; the kernel layer
//! widens rows back to f32 on the fly inside its packing/axpy inner
//! loops, so there is a single f32 microkernel regardless of storage
//! precision. Training never sees bf16.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Quantizes one f32 to bf16 with round-to-nearest-even.
///
/// NaN payloads that would round to infinity are clamped to a quiet
/// NaN instead, so NaN stays NaN through the round trip.
#[inline]
pub fn quantize_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Preserve NaN-ness: force a mantissa bit that survives truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rounded = bits.wrapping_add(0x7fff + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// Widens one bf16 to f32 — exact, by construction.
#[inline]
pub fn widen_bf16(v: u16) -> f32 {
    f32::from_bits((v as u32) << 16)
}

/// Storage precision for frozen serving-path weights.
///
/// Training is always f32; this only selects how a loaded checkpoint's
/// weights are stored (and therefore which kernel entry points the
/// embed path takes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Full-precision weights — the default, and the only training mode.
    #[default]
    F32,
    /// bf16-packed frozen weights, widened to f32 inside the kernels.
    Bf16,
}

impl Precision {
    /// Manifest / CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
        }
    }

    /// Parses the manifest / CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Precision::F32),
            "bf16" => Some(Precision::Bf16),
            _ => None,
        }
    }
}

/// Mirrors the active precision into 0/1 info-gauges
/// (`tensor.precision.f32` / `tensor.precision.bf16`) so stats and the
/// Prometheus exposition show what a live shard is serving with.
pub fn report_precision(p: Precision) {
    pddl_telemetry::gauge("tensor.precision.f32").set(i64::from(p == Precision::F32));
    pddl_telemetry::gauge("tensor.precision.bf16").set(i64::from(p == Precision::Bf16));
}

/// A row-major bf16 weight panel, quantized once from a trained f32
/// [`Matrix`]. Row slices feed the kernel layer's bf16 entry points
/// directly; [`PackedBf16::to_matrix`] widens back for debugging and
/// equivalence tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PackedBf16 {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl PackedBf16 {
    /// Quantizes an f32 matrix (round-to-nearest-even per element).
    pub fn from_matrix(m: &Matrix) -> Self {
        PackedBf16 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().copied().map(quantize_bf16).collect(),
        }
    }

    /// Widens back to f32 — exact on every element.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().copied().map(widen_bf16).collect(),
        )
    }

    /// Row count of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The packed element buffer, row-major.
    pub fn data(&self) -> &[u16] {
        &self.data
    }

    /// One row as a bf16 slice.
    pub fn row(&self, r: usize) -> &[u16] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_is_exact_on_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1.5, -3.25] {
            assert_eq!(widen_bf16(quantize_bf16(v)), v);
        }
    }

    #[test]
    fn round_trip_error_is_bounded() {
        // Worst-case bf16 relative error is 2^-8 for normal values.
        let mut v = 1.0e-30f32;
        while v < 1.0e30 {
            for s in [v, -v, v * 1.3337, v * 2.6251] {
                let rt = widen_bf16(quantize_bf16(s));
                assert!(
                    (rt - s).abs() <= s.abs() * (1.0 / 256.0),
                    "{s} -> {rt}"
                );
            }
            v *= 9.7;
        }
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // representable; ties go to the even mantissa (1.0).
        let halfway = f32::from_bits(0x3f80_8000);
        assert_eq!(quantize_bf16(halfway), 0x3f80);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(quantize_bf16(above), 0x3f81);
    }

    #[test]
    fn specials_survive() {
        assert_eq!(widen_bf16(quantize_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(widen_bf16(quantize_bf16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(widen_bf16(quantize_bf16(f32::NAN)).is_nan());
        // Large-but-finite values must not round to infinity unless f32
        // itself overflows bf16's (identical) exponent range.
        assert!(widen_bf16(quantize_bf16(f32::MAX)).is_infinite()); // MAX rounds up
        assert!(widen_bf16(quantize_bf16(1.0e38)).is_finite());
    }

    #[test]
    fn packed_matrix_round_trips_shape_and_bounds() {
        let data: Vec<f32> =
            (0..35).map(|i| ((i / 7) as f32 - 2.0) * 0.31 + (i % 7) as f32 * 0.077).collect();
        let m = Matrix::from_vec(5, 7, data);
        let p = PackedBf16::from_matrix(&m);
        assert_eq!(p.rows(), 5);
        assert_eq!(p.cols(), 7);
        let back = p.to_matrix();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= a.abs() * (1.0 / 256.0) + 1e-30);
        }
        assert_eq!(p.row(2).len(), 7);
    }
}
