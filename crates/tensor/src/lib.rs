//! Dense `f32` matrix kernels for the PredictDDL reproduction.
//!
//! This crate is the numeric substrate under the autodiff engine
//! (`pddl-autodiff`), the GHN-2 implementation and the regression library.
//! It deliberately implements only what those layers need — row-major dense
//! matrices, rayon-parallel GEMM, a deterministic counter-free RNG, and the
//! decompositions (Householder QR, Cholesky) used by the least-squares
//! solvers — instead of pulling in a BLAS binding.
//!
//! Design notes (following the session's hpc-parallel guides):
//! * storage is a single contiguous `Vec<f32>` (cache-friendly, no per-row
//!   allocation);
//! * GEMM parallelizes over output rows with `rayon` above a size threshold
//!   and transposes the right-hand side once so the inner loop is a unit
//!   stride dot product;
//! * all randomness goes through [`rng::Rng`], a seeded xoshiro256**, so every
//!   experiment in the workspace is reproducible bit-for-bit.

pub mod linalg;
pub mod matrix;
pub mod rng;

pub use matrix::Matrix;
pub use rng::Rng;
