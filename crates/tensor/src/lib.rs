//! Dense `f32` matrix kernels for the PredictDDL reproduction.
//!
//! This crate is the numeric substrate under the autodiff engine
//! (`pddl-autodiff`), the GHN-2 implementation and the regression library.
//! It deliberately implements only what those layers need — row-major dense
//! matrices, a blocked packed GEMM core, a deterministic counter-free RNG,
//! and the decompositions (Householder QR, Cholesky) used by the
//! least-squares solvers — instead of pulling in a BLAS binding.
//!
//! Design notes (following the session's hpc-parallel guides):
//! * storage is a single contiguous `Vec<f32>` (cache-friendly, no per-row
//!   allocation);
//! * GEMM is a cache-blocked, register-tiled kernel with one-time operand
//!   packing ([`gemm`]): `A·B`, `A·Bᵀ` and `Aᵀ·B` share one microkernel,
//!   fused bias/activation epilogues serve the affine layers, and
//!   macro-tiles fan out over the `pddl_par` work pool above a size
//!   threshold — deterministic for any worker count because the tile
//!   partition never depends on it;
//! * the hot inner loops dispatch at runtime to explicit AVX2/FMA or
//!   NEON implementations ([`kernels`]), with the scalar loops kept as
//!   the portable fallback and equivalence oracle, and [`bf16`] supplies
//!   the frozen-weight storage for mixed-precision inference;
//! * all randomness goes through [`rng::Rng`], a seeded xoshiro256**, so every
//!   experiment in the workspace is reproducible bit-for-bit.

pub mod bf16;
pub mod gemm;
pub mod kernels;
pub mod linalg;
pub mod matrix;
pub mod rng;

pub use bf16::{quantize_bf16, widen_bf16, PackedBf16, Precision};
pub use gemm::{Activation, PackBuffer};
pub use kernels::{backend, set_force_scalar, KernelBackend};
pub use matrix::{vecmat_acc, vecmat_acc_bf16, Matrix};
pub use rng::Rng;
