//! Runtime-dispatched explicit SIMD kernels for the GEMM core.
//!
//! The blocked kernel in [`crate::gemm`] previously relied on the
//! autovectorizer, which on the default x86-64 target (SSE2 baseline)
//! never emits AVX or FMA instructions. This module supplies explicit
//! implementations of the hot inner loops — the `MR×NR` microkernel, the
//! axpy/dot primitives behind the small-product kernels and
//! [`crate::vecmat_acc`], the bf16 widening axpy, and the vectorizable
//! epilogue ops — for:
//!
//! * **AVX2 + FMA** (x86_64), selected when `is_x86_feature_detected!`
//!   confirms both features at first use;
//! * **NEON** (aarch64), always available on that architecture;
//! * **scalar** — the original autovectorized loops, kept as the portable
//!   fallback and as the equivalence oracle for the dispatch-matrix tests.
//!
//! Selection happens once (cached in a [`OnceLock`]) and is exposed as a
//! vtable of plain `fn` pointers, so per-call dispatch is one relaxed
//! atomic load plus an indirect call that each kernel amortizes over
//! thousands of multiply-adds.
//!
//! ## Overrides and observability
//!
//! `PDDL_FORCE_SCALAR=1` in the environment pins the scalar backend at
//! startup; [`set_force_scalar`] flips it at runtime (how `tensorbench
//! --compare` and the dispatch-matrix tests measure both paths in one
//! process). The active backend is mirrored into the telemetry registry
//! as `tensor.kernel.<name>` 0/1 info-gauges, which flow into
//! `{"op":"stats"}` and the Prometheus exposition unchanged.
//!
//! ## Numerics
//!
//! The scalar backend is bit-identical to the pre-dispatch kernels. The
//! FMA-based backends fuse each multiply-add into a single rounding, so
//! their results are *not* bit-identical to scalar — the dispatch-matrix
//! tests assert ≤ 1e-5 relative error for those backends and exact bits
//! for scalar. Within one backend, results remain bit-identical across
//! runs and pool sizes (the macro-tile partition is shape-only).

use crate::gemm::{MR, NR};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Which explicit-SIMD implementation the dispatcher selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelBackend {
    /// AVX2 + FMA intrinsics (x86_64, runtime-detected).
    Avx2Fma,
    /// NEON intrinsics (aarch64 baseline).
    Neon,
    /// Portable autovectorized loops (fallback and equivalence oracle).
    Scalar,
}

impl KernelBackend {
    /// Human-readable backend name, as reported in benches and stats.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Avx2Fma => "avx2+fma",
            KernelBackend::Neon => "neon",
            KernelBackend::Scalar => "scalar",
        }
    }

    /// Telemetry gauge name for this backend's 0/1 info-gauge.
    fn gauge_name(self) -> &'static str {
        match self {
            KernelBackend::Avx2Fma => "tensor.kernel.avx2_fma",
            KernelBackend::Neon => "tensor.kernel.neon",
            KernelBackend::Scalar => "tensor.kernel.scalar",
        }
    }
}

/// The dispatched kernel set: one function pointer per hot inner loop.
/// `&'static Kernels` is what [`active`] hands the GEMM core.
pub(crate) struct Kernels {
    /// Backend these pointers belong to.
    pub backend: KernelBackend,
    /// `MR×NR` register-tile microkernel over packed panels.
    pub microkernel: fn(&[f32], &[f32]) -> [[f32; NR]; MR],
    /// `y[i] += a * x[i]` over the common prefix.
    pub axpy: fn(f32, &[f32], &mut [f32]),
    /// Whole vector·matrix accumulate: `out[j] += Σ_p v[p]·w[p*n+j]`
    /// with `n = out.len()` and `w` row-major. The axpy loop nest runs
    /// *inside* the backend so a tiny product (a GHN node update) pays
    /// one indirect call instead of one per weight row.
    pub vecmat: fn(&[f32], &[f32], &mut [f32]),
    /// [`Kernels::vecmat`] over a row-major bf16 weight panel; each row
    /// widens to f32 inside the backend's axpy loop (bf16 operands are
    /// `Nn`-only, so no standalone bf16 axpy entry is needed).
    pub vecmat_bf16: fn(&[f32], &[u16], &mut [f32]),
    /// Dot product with the 8-lane partial-sum accumulation structure.
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// `row[i] += bias[i]` (exact regardless of backend).
    pub bias_add: fn(&mut [f32], &[f32]),
    /// `row[i] = max(row[i], 0)` (exact regardless of backend).
    pub relu: fn(&mut [f32]),
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn native() -> &'static Kernels {
    static NATIVE: OnceLock<&'static Kernels> = OnceLock::new();
    NATIVE.get_or_init(|| {
        if std::env::var("PDDL_FORCE_SCALAR").is_ok_and(|v| v == "1") {
            FORCE_SCALAR.store(true, Ordering::Relaxed);
        }
        let k = detect();
        report_backend(if FORCE_SCALAR.load(Ordering::Relaxed) {
            KernelBackend::Scalar
        } else {
            k.backend
        });
        k
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> &'static Kernels {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        &avx2::KERNELS
    } else {
        &scalar::KERNELS
    }
}

#[cfg(target_arch = "aarch64")]
fn detect() -> &'static Kernels {
    &neon::KERNELS
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect() -> &'static Kernels {
    &scalar::KERNELS
}

/// The kernel set for the current call: the detected native backend, or
/// scalar while the force-scalar override is on.
pub(crate) fn active() -> &'static Kernels {
    let k = native();
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        &scalar::KERNELS
    } else {
        k
    }
}

/// The backend the next kernel call will run on.
pub fn backend() -> KernelBackend {
    active().backend
}

/// Forces (or releases) the scalar fallback at runtime, overriding the
/// detected backend. Used by the dual-run CI legs, `tensorbench
/// --compare`, and the dispatch-matrix tests; `PDDL_FORCE_SCALAR=1` sets
/// the same override at startup. Updates the `tensor.kernel.*` gauges.
pub fn set_force_scalar(on: bool) {
    let _ = native(); // ensure detection ran so backend() below is the truth
    FORCE_SCALAR.store(on, Ordering::Relaxed);
    report_backend(backend());
}

/// Is the scalar override currently on?
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Mirrors the selected backend into 0/1 info-gauges
/// (`tensor.kernel.avx2_fma` / `tensor.kernel.neon` /
/// `tensor.kernel.scalar`) so a live shard's stats and Prometheus
/// exposition show what it is actually running.
fn report_backend(active: KernelBackend) {
    for b in [KernelBackend::Avx2Fma, KernelBackend::Neon, KernelBackend::Scalar] {
        pddl_telemetry::gauge(b.gauge_name()).set(i64::from(b == active));
    }
}

// ----------------------------------------------------------------------
// Scalar backend: the original autovectorized loops, unchanged — the
// portable fallback and the bit-exactness oracle.
// ----------------------------------------------------------------------

pub(crate) mod scalar {
    use super::*;

    pub(crate) static KERNELS: Kernels = Kernels {
        backend: KernelBackend::Scalar,
        microkernel,
        axpy,
        vecmat,
        vecmat_bf16,
        dot,
        bias_add,
        relu,
    };

    /// The register tile: `MR×NR` accumulators updated by `kc` rank-1
    /// steps. Both panels are packed contiguous, so every load is
    /// unit-stride and the inner `NR` loop autovectorizes.
    #[inline(always)]
    pub(crate) fn microkernel(pa: &[f32], pb: &[f32]) -> [[f32; NR]; MR] {
        let mut acc = [[0.0f32; NR]; MR];
        for (av, bv) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)) {
            for (i, acc_row) in acc.iter_mut().enumerate() {
                let ai = av[i];
                for (j, c) in acc_row.iter_mut().enumerate() {
                    *c += ai * bv[j];
                }
            }
        }
        acc
    }

    #[inline(always)]
    pub(crate) fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        for (o, &xv) in y.iter_mut().zip(x) {
            *o += a * xv;
        }
    }

    #[inline(always)]
    pub(crate) fn axpy_bf16(a: f32, x: &[u16], y: &mut [f32]) {
        for (o, &xv) in y.iter_mut().zip(x) {
            *o += a * crate::bf16::widen_bf16(xv);
        }
    }

    #[inline(always)]
    pub(crate) fn vecmat(v: &[f32], w: &[f32], out: &mut [f32]) {
        let n = out.len();
        for (p, &vp) in v.iter().enumerate() {
            axpy(vp, &w[p * n..(p + 1) * n], out);
        }
    }

    #[inline(always)]
    pub(crate) fn vecmat_bf16(v: &[f32], w: &[u16], out: &mut [f32]) {
        let n = out.len();
        for (p, &vp) in v.iter().enumerate() {
            axpy_bf16(vp, &w[p * n..(p + 1) * n], out);
        }
    }

    /// Unit-stride dot with 8 partial lanes (tames f32 cancellation on
    /// long rows); identical accumulation structure to the SIMD dots.
    #[inline(always)]
    pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        let chunks = a.len() / 8 * 8;
        let mut partial = [0.0f32; 8];
        for i in (0..chunks).step_by(8) {
            for l in 0..8 {
                partial[l] += a[i + l] * b[i + l];
            }
        }
        for p in partial {
            acc += p;
        }
        for i in chunks..a.len() {
            acc += a[i] * b[i];
        }
        acc
    }

    #[inline(always)]
    pub(crate) fn bias_add(row: &mut [f32], bias: &[f32]) {
        for (x, &bv) in row.iter_mut().zip(bias) {
            *x += bv;
        }
    }

    #[inline(always)]
    pub(crate) fn relu(row: &mut [f32]) {
        for x in row.iter_mut() {
            *x = x.max(0.0);
        }
    }
}

// ----------------------------------------------------------------------
// AVX2 + FMA backend (x86_64, runtime-detected).
// ----------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    pub(crate) static KERNELS: Kernels = Kernels {
        backend: KernelBackend::Avx2Fma,
        microkernel,
        axpy,
        vecmat,
        vecmat_bf16,
        dot,
        bias_add,
        relu,
    };

    // Safe entry points: each wraps one `#[target_feature]` function.
    // SAFETY throughout: this vtable is only installed by `detect()`
    // after `is_x86_feature_detected!` confirmed avx2 and fma.

    fn microkernel(pa: &[f32], pb: &[f32]) -> [[f32; NR]; MR] {
        unsafe { microkernel_impl(pa, pb) }
    }

    fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        unsafe { axpy_impl(a, x, y) }
    }

    fn vecmat(v: &[f32], w: &[f32], out: &mut [f32]) {
        unsafe { vecmat_impl(v, w, out) }
    }

    fn vecmat_bf16(v: &[f32], w: &[u16], out: &mut [f32]) {
        unsafe { vecmat_bf16_impl(v, w, out) }
    }

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        unsafe { dot_impl(a, b) }
    }

    fn bias_add(row: &mut [f32], bias: &[f32]) {
        unsafe { bias_add_impl(row, bias) }
    }

    fn relu(row: &mut [f32]) {
        unsafe { relu_impl(row) }
    }

    /// 4×16 tile as 8 `__m256` accumulators (4 rows × 2 half-rows): per
    /// depth step, two B loads and four broadcast-FMA pairs.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn microkernel_impl(pa: &[f32], pb: &[f32]) -> [[f32; NR]; MR] {
        let kc = pa.len() / MR;
        debug_assert_eq!(pb.len(), kc * NR);
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            // Unrolled over the MR rows so each accumulator stays pinned
            // to a register across the whole depth loop.
            for (i, acc_row) in acc.iter_mut().enumerate() {
                let a = _mm256_broadcast_ss(&*ap.add(i));
                acc_row[0] = _mm256_fmadd_ps(a, b0, acc_row[0]);
                acc_row[1] = _mm256_fmadd_ps(a, b1, acc_row[1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        let mut out = [[0.0f32; NR]; MR];
        for (o, a) in out.iter_mut().zip(&acc) {
            _mm256_storeu_ps(o.as_mut_ptr(), a[0]);
            _mm256_storeu_ps(o.as_mut_ptr().add(8), a[1]);
        }
        out
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn axpy_impl(a: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let va = _mm256_set1_ps(a);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let vy = _mm256_loadu_ps(yp.add(i));
            let vx = _mm256_loadu_ps(xp.add(i));
            _mm256_storeu_ps(yp.add(i), _mm256_fmadd_ps(va, vx, vy));
            i += 8;
        }
        while i < n {
            *yp.add(i) += a * *xp.add(i);
            i += 1;
        }
    }

    /// bf16 rows widen for free inside the FMA stream: 8 `u16` lanes are
    /// zero-extended to `u32`, shifted into the high half (the exact bf16
    /// → f32 widening), and bit-cast to packed floats.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn axpy_bf16_impl(a: f32, x: &[u16], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let va = _mm256_set1_ps(a);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let raw = _mm_loadu_si128(xp.add(i) as *const __m128i);
            let wide = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(raw));
            let vx = _mm256_castsi256_ps(wide);
            let vy = _mm256_loadu_ps(yp.add(i));
            _mm256_storeu_ps(yp.add(i), _mm256_fmadd_ps(va, vx, vy));
            i += 8;
        }
        while i < n {
            *yp.add(i) += a * crate::bf16::widen_bf16(*xp.add(i));
            i += 1;
        }
    }

    /// The axpy sweep over every weight row inside one feature region, so
    /// `axpy_impl` inlines and the indirect call amortizes over the whole
    /// product.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn vecmat_impl(v: &[f32], w: &[f32], out: &mut [f32]) {
        let n = out.len();
        for (p, &vp) in v.iter().enumerate() {
            axpy_impl(vp, &w[p * n..(p + 1) * n], out);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn vecmat_bf16_impl(v: &[f32], w: &[u16], out: &mut [f32]) {
        let n = out.len();
        for (p, &vp) in v.iter().enumerate() {
            axpy_bf16_impl(vp, &w[p * n..(p + 1) * n], out);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut vacc = _mm256_setzero_ps();
        let chunks = n / 8 * 8;
        let mut i = 0;
        while i < chunks {
            let va = _mm256_loadu_ps(ap.add(i));
            let vb = _mm256_loadu_ps(bp.add(i));
            vacc = _mm256_fmadd_ps(va, vb, vacc);
            i += 8;
        }
        // Sum the 8 lanes sequentially, mirroring the scalar dot's
        // partial-lane reduction order.
        let mut partial = [0.0f32; 8];
        _mm256_storeu_ps(partial.as_mut_ptr(), vacc);
        let mut acc = 0.0f32;
        for p in partial {
            acc += p;
        }
        while i < n {
            acc += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        acc
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn bias_add_impl(row: &mut [f32], bias: &[f32]) {
        let n = row.len().min(bias.len());
        let rp = row.as_mut_ptr();
        let bp = bias.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let vr = _mm256_loadu_ps(rp.add(i));
            let vb = _mm256_loadu_ps(bp.add(i));
            _mm256_storeu_ps(rp.add(i), _mm256_add_ps(vr, vb));
            i += 8;
        }
        while i < n {
            *rp.add(i) += *bp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn relu_impl(row: &mut [f32]) {
        let n = row.len();
        let rp = row.as_mut_ptr();
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(rp.add(i));
            _mm256_storeu_ps(rp.add(i), _mm256_max_ps(v, zero));
            i += 8;
        }
        while i < n {
            let v = *rp.add(i);
            *rp.add(i) = v.max(0.0);
            i += 1;
        }
    }
}

// ----------------------------------------------------------------------
// NEON backend (aarch64 baseline — no runtime probe needed).
// ----------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use std::arch::aarch64::*;

    pub(crate) static KERNELS: Kernels = Kernels {
        backend: KernelBackend::Neon,
        microkernel,
        axpy,
        vecmat,
        vecmat_bf16,
        dot,
        bias_add,
        relu,
    };

    // SAFETY throughout: NEON is mandatory on aarch64, so the intrinsics
    // are always available when this module compiles.

    /// 4×16 tile as 16 `float32x4_t` accumulators (4 rows × 4 quads):
    /// per depth step, four B loads and per-row lane-broadcast FMAs.
    fn microkernel(pa: &[f32], pb: &[f32]) -> [[f32; NR]; MR] {
        unsafe {
            let kc = pa.len() / MR;
            debug_assert_eq!(pb.len(), kc * NR);
            let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
            let mut ap = pa.as_ptr();
            let mut bp = pb.as_ptr();
            for _ in 0..kc {
                let b = [
                    vld1q_f32(bp),
                    vld1q_f32(bp.add(4)),
                    vld1q_f32(bp.add(8)),
                    vld1q_f32(bp.add(12)),
                ];
                let av = vld1q_f32(ap); // the MR=4 A sliver for this depth
                acc[0][0] = vfmaq_laneq_f32::<0>(acc[0][0], b[0], av);
                acc[0][1] = vfmaq_laneq_f32::<0>(acc[0][1], b[1], av);
                acc[0][2] = vfmaq_laneq_f32::<0>(acc[0][2], b[2], av);
                acc[0][3] = vfmaq_laneq_f32::<0>(acc[0][3], b[3], av);
                acc[1][0] = vfmaq_laneq_f32::<1>(acc[1][0], b[0], av);
                acc[1][1] = vfmaq_laneq_f32::<1>(acc[1][1], b[1], av);
                acc[1][2] = vfmaq_laneq_f32::<1>(acc[1][2], b[2], av);
                acc[1][3] = vfmaq_laneq_f32::<1>(acc[1][3], b[3], av);
                acc[2][0] = vfmaq_laneq_f32::<2>(acc[2][0], b[0], av);
                acc[2][1] = vfmaq_laneq_f32::<2>(acc[2][1], b[1], av);
                acc[2][2] = vfmaq_laneq_f32::<2>(acc[2][2], b[2], av);
                acc[2][3] = vfmaq_laneq_f32::<2>(acc[2][3], b[3], av);
                acc[3][0] = vfmaq_laneq_f32::<3>(acc[3][0], b[0], av);
                acc[3][1] = vfmaq_laneq_f32::<3>(acc[3][1], b[1], av);
                acc[3][2] = vfmaq_laneq_f32::<3>(acc[3][2], b[2], av);
                acc[3][3] = vfmaq_laneq_f32::<3>(acc[3][3], b[3], av);
                ap = ap.add(MR);
                bp = bp.add(NR);
            }
            let mut out = [[0.0f32; NR]; MR];
            for (o, a) in out.iter_mut().zip(&acc) {
                vst1q_f32(o.as_mut_ptr(), a[0]);
                vst1q_f32(o.as_mut_ptr().add(4), a[1]);
                vst1q_f32(o.as_mut_ptr().add(8), a[2]);
                vst1q_f32(o.as_mut_ptr().add(12), a[3]);
            }
            out
        }
    }

    fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        unsafe {
            let n = y.len().min(x.len());
            let va = vdupq_n_f32(a);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let vy = vld1q_f32(yp.add(i));
                let vx = vld1q_f32(xp.add(i));
                vst1q_f32(yp.add(i), vfmaq_f32(vy, va, vx));
                i += 4;
            }
            while i < n {
                *yp.add(i) += a * *xp.add(i);
                i += 1;
            }
        }
    }

    fn axpy_bf16(a: f32, x: &[u16], y: &mut [f32]) {
        unsafe {
            let n = y.len().min(x.len());
            let va = vdupq_n_f32(a);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                // Zero-extend 4 u16 lanes and shift into the f32 high
                // half — the exact bf16 → f32 widening.
                let raw = vld1_u16(xp.add(i));
                let wide = vshlq_n_u32::<16>(vmovl_u16(raw));
                let vx = vreinterpretq_f32_u32(wide);
                let vy = vld1q_f32(yp.add(i));
                vst1q_f32(yp.add(i), vfmaq_f32(vy, va, vx));
                i += 4;
            }
            while i < n {
                *yp.add(i) += a * crate::bf16::widen_bf16(*xp.add(i));
                i += 1;
            }
        }
    }

    // NEON is baseline on aarch64, so these plain fns inline the axpy
    // bodies directly — one indirect call per whole product.
    fn vecmat(v: &[f32], w: &[f32], out: &mut [f32]) {
        let n = out.len();
        for (p, &vp) in v.iter().enumerate() {
            axpy(vp, &w[p * n..(p + 1) * n], out);
        }
    }

    fn vecmat_bf16(v: &[f32], w: &[u16], out: &mut [f32]) {
        let n = out.len();
        for (p, &vp) in v.iter().enumerate() {
            axpy_bf16(vp, &w[p * n..(p + 1) * n], out);
        }
    }

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        unsafe {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            // Two quad accumulators = the same 8 partial lanes as the
            // scalar dot, reduced sequentially below.
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let chunks = n / 8 * 8;
            let mut i = 0;
            while i < chunks {
                acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
                acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
                i += 8;
            }
            let mut partial = [0.0f32; 8];
            vst1q_f32(partial.as_mut_ptr(), acc0);
            vst1q_f32(partial.as_mut_ptr().add(4), acc1);
            let mut acc = 0.0f32;
            for p in partial {
                acc += p;
            }
            while i < n {
                acc += *ap.add(i) * *bp.add(i);
                i += 1;
            }
            acc
        }
    }

    fn bias_add(row: &mut [f32], bias: &[f32]) {
        unsafe {
            let n = row.len().min(bias.len());
            let rp = row.as_mut_ptr();
            let bp = bias.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                vst1q_f32(rp.add(i), vaddq_f32(vld1q_f32(rp.add(i)), vld1q_f32(bp.add(i))));
                i += 4;
            }
            while i < n {
                *rp.add(i) += *bp.add(i);
                i += 1;
            }
        }
    }

    fn relu(row: &mut [f32]) {
        unsafe {
            let n = row.len();
            let rp = row.as_mut_ptr();
            let zero = vdupq_n_f32(0.0);
            let mut i = 0;
            while i + 4 <= n {
                vst1q_f32(rp.add(i), vmaxq_f32(vld1q_f32(rp.add(i)), zero));
                i += 4;
            }
            while i < n {
                let v = *rp.add(i);
                *rp.add(i) = v.max(0.0);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name_round_trips() {
        assert_eq!(KernelBackend::Avx2Fma.name(), "avx2+fma");
        assert_eq!(KernelBackend::Neon.name(), "neon");
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
    }

    #[test]
    fn force_scalar_overrides_and_releases() {
        let prior = force_scalar();
        set_force_scalar(true);
        assert_eq!(backend(), KernelBackend::Scalar);
        let snap = pddl_telemetry::snapshot();
        assert_eq!(snap.gauge("tensor.kernel.scalar"), Some(1));
        set_force_scalar(false);
        let k = backend();
        // Whatever the hardware offers, the override is off again.
        let snap = pddl_telemetry::snapshot();
        assert_eq!(snap.gauge(KernelBackend::Scalar.gauge_name()), Some(i64::from(k == KernelBackend::Scalar)));
        set_force_scalar(prior);
    }

    #[test]
    fn dispatched_axpy_matches_scalar_within_tolerance() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut y_simd = vec![0.25f32; 37];
        let mut y_ref = y_simd.clone();
        (active().axpy)(1.5, &x, &mut y_simd);
        scalar::axpy(1.5, &x, &mut y_ref);
        for (a, b) in y_simd.iter().zip(&y_ref) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn dispatched_vecmat_matches_scalar_within_tolerance() {
        let (k, n) = (13, 21);
        let v: Vec<f32> = (0..k).map(|i| (i as f32 * 0.29).cos()).collect();
        let w: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.13).sin()).collect();
        let wq: Vec<u16> = w.iter().map(|&x| crate::bf16::quantize_bf16(x)).collect();
        let mut out_simd = vec![0.5f32; n];
        let mut out_ref = out_simd.clone();
        (active().vecmat)(&v, &w, &mut out_simd);
        scalar::vecmat(&v, &w, &mut out_ref);
        for (a, b) in out_simd.iter().zip(&out_ref) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
        }
        // bf16 entry widens before the multiply, so dispatched-vs-scalar
        // stays within the same fma-only tolerance.
        let mut q_simd = vec![0.5f32; n];
        let mut q_ref = q_simd.clone();
        (active().vecmat_bf16)(&v, &wq, &mut q_simd);
        scalar::vecmat_bf16(&v, &wq, &mut q_ref);
        for (a, b) in q_simd.iter().zip(&q_ref) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn dispatched_dot_matches_scalar_within_tolerance() {
        let a: Vec<f32> = (0..103).map(|i| (i as f32 * 0.11).cos()).collect();
        let b: Vec<f32> = (0..103).map(|i| (i as f32 * 0.07).sin()).collect();
        let d_simd = (active().dot)(&a, &b);
        let d_ref = scalar::dot(&a, &b);
        assert!((d_simd - d_ref).abs() <= 1e-4 * d_ref.abs().max(1.0));
    }
}
