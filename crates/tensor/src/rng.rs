//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (weight initialization,
//! train/test splits, simulator noise, synthetic architecture sampling) draws
//! from this generator so that experiments are reproducible from a single
//! `u64` seed. The core is xoshiro256** seeded through SplitMix64, the
//! construction recommended by the xoshiro authors.

/// A seeded xoshiro256** generator.
///
/// Not cryptographically secure; statistical quality is more than sufficient
/// for simulation noise and weight initialization.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Distinct seeds give statistically
    /// independent streams (seeded through SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator; used to give each parallel
    /// worker its own stream without sharing mutable state.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift reduction;
    /// the modulo bias is negligible for the range sizes used here.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (one value per call; the pair's second
    /// half is discarded to keep the generator stateless across calls).
    pub fn normal(&mut self) -> f32 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE); // avoid ln(0)
        let u2 = self.next_f64();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Normal with mean `mu` and standard deviation `sigma`.
    #[inline]
    pub fn normal_with(&mut self, mu: f32, sigma: f32) -> f32 {
        mu + sigma * self.normal()
    }

    /// Lognormal multiplicative noise factor with median 1 and log-space
    /// standard deviation `sigma`; used by the training-time simulator.
    #[inline]
    pub fn lognormal_factor(&mut self, sigma: f32) -> f32 {
        (sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k swaps are needed.
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Picks one element of a slice uniformly.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = Rng::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal() as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(3);
        for n in [1usize, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::new(9);
        let idx = r.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn lognormal_factor_median_near_one() {
        let mut r = Rng::new(13);
        let mut xs: Vec<f32> = (0..10_001).map(|_| r.lognormal_factor(0.3)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[5000];
        assert!((median - 1.0).abs() < 0.05, "median={median}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = Rng::new(21);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
