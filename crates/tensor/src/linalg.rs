//! Linear-algebra decompositions used by the least-squares solvers.
//!
//! * [`qr`] — Householder QR; the numerically stable route for OLS
//!   (`pddl-regress::linear`).
//! * [`cholesky`] / [`solve_spd`] — for ridge normal equations and the
//!   A-optimal experiment-design objective in `pddl-ernest`.
//! * [`lstsq`] — thin wrapper: minimum-residual solution of `A x ≈ b`.
//!
//! All routines accumulate in `f64` internally; inputs/outputs are `f32`
//! matrices to match the rest of the workspace.

use crate::matrix::Matrix;

/// Householder QR of an `m × n` matrix with `m ≥ n`.
///
/// Returns `(q, r)` with `q` `m × n` having orthonormal columns (thin Q) and
/// `r` `n × n` upper triangular such that `a ≈ q · r`.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    assert!(m >= n, "qr requires rows >= cols, got {m}x{n}");
    // Work in f64 column-major for stability.
    let mut r: Vec<f64> = a.as_slice().iter().map(|&x| x as f64).collect(); // row-major m×n
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n); // Householder vectors

    for k in 0..n {
        // Compute the norm of column k below the diagonal.
        let mut norm = 0.0f64;
        for i in k..m {
            let x = r[i * n + k];
            norm += x * x;
        }
        norm = norm.sqrt();
        if norm == 0.0 {
            vs.push(vec![0.0; m - k]);
            continue;
        }
        let alpha = if r[k * n + k] >= 0.0 { -norm } else { norm };
        // v = x - alpha * e1
        let mut v: Vec<f64> = (k..m).map(|i| r[i * n + k]).collect();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 > 0.0 {
            // Apply H = I - 2 v vᵀ / (vᵀv) to R[k.., k..].
            for j in k..n {
                let mut dot = 0.0f64;
                for (i, vi) in v.iter().enumerate() {
                    dot += vi * r[(k + i) * n + j];
                }
                let s = 2.0 * dot / vnorm2;
                for (i, vi) in v.iter().enumerate() {
                    r[(k + i) * n + j] -= s * vi;
                }
            }
        }
        vs.push(v);
    }

    // Build thin Q by applying the Householder reflections to the first n
    // columns of the identity, in reverse order.
    let mut q: Vec<f64> = vec![0.0; m * n];
    for j in 0..n {
        q[j * n + j] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0f64;
            for (i, vi) in v.iter().enumerate() {
                dot += vi * q[(k + i) * n + j];
            }
            let s = 2.0 * dot / vnorm2;
            for (i, vi) in v.iter().enumerate() {
                q[(k + i) * n + j] -= s * vi;
            }
        }
    }

    let qm = Matrix::from_vec(m, n, q.iter().map(|&x| x as f32).collect());
    let mut rm = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            rm[(i, j)] = r[i * n + j] as f32;
        }
    }
    (qm, rm)
}

/// Solves upper-triangular `R x = b` by back substitution.
///
/// Near-zero diagonal entries (rank deficiency) yield a zero component in
/// that coordinate — the minimum-norm convention used by the regressors.
pub fn solve_upper_triangular(r: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = r.rows();
    assert_eq!(r.cols(), n);
    assert_eq!(b.len(), n);
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = b[i] as f64;
        for j in i + 1..n {
            s -= r[(i, j)] as f64 * x[j];
        }
        let d = r[(i, i)] as f64;
        x[i] = if d.abs() < 1e-10 { 0.0 } else { s / d };
    }
    x.iter().map(|&v| v as f32).collect()
}

/// Least-squares solution of `a · x ≈ b` (single RHS) via QR.
pub fn lstsq(a: &Matrix, b: &[f32]) -> Vec<f32> {
    assert_eq!(a.rows(), b.len(), "lstsq: rows of A must match len of b");
    let (q, r) = qr(a);
    // qᵀ b
    let n = q.cols();
    let mut qtb = vec![0.0f32; n];
    for (i, &bi) in b.iter().enumerate() {
        let row = q.row(i);
        for (j, &qij) in row.iter().enumerate() {
            qtb[j] += qij * bi;
        }
    }
    let _ = n;
    solve_upper_triangular(&r, &qtb)
}

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns lower-triangular `L` with `a = L Lᵀ`, or `None` if `a` is not
/// (numerically) positive definite.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "cholesky requires a square matrix");
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)] as f64;
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[i * n + j] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Some(Matrix::from_vec(
        n,
        n,
        l.iter().map(|&x| x as f32).collect(),
    ))
}

/// Solves `a x = b` for SPD `a` via Cholesky; `None` if not SPD.
pub fn solve_spd(a: &Matrix, b: &[f32]) -> Option<Vec<f32>> {
    let n = a.rows();
    assert_eq!(b.len(), n);
    let l = cholesky(a)?;
    // Forward: L y = b
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut s = b[i] as f64;
        for j in 0..i {
            s -= l[(i, j)] as f64 * y[j];
        }
        y[i] = s / l[(i, i)] as f64;
    }
    // Backward: Lᵀ x = y
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in i + 1..n {
            s -= l[(j, i)] as f64 * x[j];
        }
        x[i] = s / l[(i, i)] as f64;
    }
    Some(x.iter().map(|&v| v as f32).collect())
}

/// Inverse of an SPD matrix via Cholesky (column-by-column solves).
pub fn inv_spd(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for c in 0..n {
        let mut e = vec![0.0f32; n];
        e[c] = 1.0;
        let col = solve_spd(a, &e)?;
        for r in 0..n {
            out[(r, c)] = col[r];
        }
    }
    Some(out)
}

/// Trace of a square matrix.
pub fn trace(a: &Matrix) -> f32 {
    assert_eq!(a.rows(), a.cols());
    (0..a.rows()).map(|i| a[(i, i)]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::rand_normal(m, n, 1.0, &mut rng)
    }

    #[test]
    fn qr_reconstructs() {
        let a = random_matrix(12, 5, 1);
        let (q, r) = qr(&a);
        let recon = q.matmul(&r);
        assert!((&recon - &a).max_abs() < 1e-4, "{:?}", (&recon - &a).max_abs());
    }

    #[test]
    fn qr_q_orthonormal() {
        let a = random_matrix(20, 6, 2);
        let (q, _) = qr(&a);
        let qtq = q.t_matmul(&q);
        let err = (&qtq - &Matrix::eye(6)).max_abs();
        assert!(err < 1e-4, "Q'Q deviates from I by {err}");
    }

    #[test]
    fn qr_r_upper_triangular() {
        let a = random_matrix(9, 4, 3);
        let (_, r) = qr(&a);
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        // Overdetermined consistent system.
        let a = random_matrix(30, 4, 4);
        let x_true = [1.5f32, -2.0, 0.25, 3.0];
        let b = a.matvec(&x_true);
        let x = lstsq(&a, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-3, "{x:?}");
        }
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns() {
        let a = random_matrix(25, 3, 5);
        let mut rng = Rng::new(6);
        let b: Vec<f32> = (0..25).map(|_| rng.normal()).collect();
        let x = lstsq(&a, &b);
        let pred = a.matvec(&x);
        let resid: Vec<f32> = b.iter().zip(&pred).map(|(bi, pi)| bi - pi).collect();
        // Aᵀ r ≈ 0 is the normal-equation optimality condition.
        for j in 0..3 {
            let col = a.col(j);
            let d: f32 = col.iter().zip(&resid).map(|(c, r)| c * r).sum();
            assert!(d.abs() < 1e-2, "column {j} correlation {d}");
        }
    }

    #[test]
    fn cholesky_reconstructs_spd() {
        let b = random_matrix(6, 6, 7);
        // A = BᵀB + I is SPD.
        let mut a = b.t_matmul(&b);
        for i in 0..6 {
            a[(i, i)] += 1.0;
        }
        let l = cholesky(&a).expect("SPD");
        let recon = l.matmul(&l.transpose());
        assert!((&recon - &a).max_abs() < 1e-3);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_spd_matches_direct() {
        let b = random_matrix(5, 5, 8);
        let mut a = b.t_matmul(&b);
        for i in 0..5 {
            a[(i, i)] += 0.5;
        }
        let x_true = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let rhs = a.matvec(&x_true);
        let x = solve_spd(&a, &rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-2);
        }
    }

    #[test]
    fn inv_spd_gives_identity() {
        let b = random_matrix(4, 4, 9);
        let mut a = b.t_matmul(&b);
        for i in 0..4 {
            a[(i, i)] += 1.0;
        }
        let inv = inv_spd(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::eye(4)).max_abs() < 1e-2);
    }

    #[test]
    fn trace_sums_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.0]]);
        assert_eq!(trace(&a), 3.0);
    }

    #[test]
    fn rank_deficient_lstsq_does_not_blow_up() {
        // Two identical columns: infinitely many solutions; we only require a
        // finite answer with small residual.
        let mut a = Matrix::zeros(10, 2);
        for i in 0..10 {
            a[(i, 0)] = i as f32;
            a[(i, 1)] = i as f32;
        }
        let b: Vec<f32> = (0..10).map(|i| 2.0 * i as f32).collect();
        let x = lstsq(&a, &b);
        assert!(x.iter().all(|v| v.is_finite()));
        let pred = a.matvec(&x);
        let rmse: f32 = pred
            .iter()
            .zip(&b)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f32>()
            .sqrt();
        assert!(rmse < 1e-2, "rmse={rmse}");
    }
}
