//! Row-major dense `f32` matrix with the operation set needed by the
//! autodiff engine and the regression library.

use crate::bf16::PackedBf16;
use crate::gemm::{self, Activation, BOperand, Layout, PackBuffer};
use crate::kernels;
use crate::rng::Rng;
use pddl_par::WorkPool;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// All-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Constant-filled matrix.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Self { rows, cols, data: vec![v; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major `Vec`; `data.len()` must equal `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Builds from nested rows (test convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An n×1 column vector.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Uniform random in `[-scale, scale]`.
    pub fn rand_uniform(rows: usize, cols: usize, scale: f32, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(-scale, scale)).collect();
        Self { rows, cols, data }
    }

    /// Gaussian random with standard deviation `sigma`.
    pub fn rand_normal(rows: usize, cols: usize, sigma: f32, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| sigma * rng.normal()).collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot uniform init for a `fan_in × fan_out` weight matrix.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Self {
        let scale = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, scale, rng)
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow of row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` out (columns are strided, so this allocates).
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Sets row `r` from a slice.
    pub fn set_row(&mut self, r: usize, values: &[f32]) {
        assert_eq!(values.len(), self.cols);
        self.row_mut(r).copy_from_slice(values);
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary zip.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// `self += alpha * other` (axpy), the hot accumulation in backprop.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|x| alpha * x)
    }

    /// Transpose into a new matrix, walked in 32×32 blocks so both the
    /// source reads and destination writes stay cache-resident.
    pub fn transpose(&self) -> Matrix {
        const TB: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TB) {
            let r_end = (rb + TB).min(self.rows);
            for cb in (0..self.cols).step_by(TB) {
                let c_end = (cb + TB).min(self.cols);
                for r in rb..r_end {
                    let row = &self.data[r * self.cols..(r + 1) * self.cols];
                    for (c, &v) in row.iter().enumerate().take(c_end).skip(cb) {
                        out.data[c * self.rows + r] = v;
                    }
                }
            }
        }
        out
    }

    /// GEMM: `self (m×k) · other (k×n)` through the blocked packed kernel
    /// (`crate::gemm`), using this thread's pack workspace and fanning
    /// macro-tiles over the global `pddl_par` pool above
    /// [`gemm::PAR_MADDS`] multiply-adds.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.assert_inner(other);
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::with_thread_pack(|pack| {
            self.gemm_nn(other, None, Activation::Identity, false, &mut out, pack, Some(&WorkPool::global()));
        });
        out
    }

    /// [`Matrix::matmul`] with a caller-owned [`PackBuffer`], running
    /// serially. Training loops that multiply the same shapes repeatedly
    /// use this to pin packing to one warm workspace (and to measure that
    /// it never reallocates).
    pub fn matmul_with(&self, other: &Matrix, pack: &mut PackBuffer) -> Matrix {
        self.assert_inner(other);
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.gemm_nn(other, None, Activation::Identity, false, &mut out, pack, None);
        out
    }

    /// [`Matrix::matmul`] dispatched over an explicit pool — the hook the
    /// determinism tests use to prove results are bit-identical across
    /// worker counts.
    pub fn matmul_pooled(&self, other: &Matrix, pool: &WorkPool) -> Matrix {
        self.assert_inner(other);
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::with_thread_pack(|pack| {
            self.gemm_nn(other, None, Activation::Identity, false, &mut out, pack, Some(pool));
        });
        out
    }

    /// The kernel this crate shipped before the blocked core — transpose
    /// the RHS once, then one dot product per output element. Kept serial
    /// and unblocked as the oracle for the equivalence tests and the
    /// baseline `tensorbench` measures against.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        self.assert_inner(other);
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        if k == 0 {
            return out;
        }
        let bt = other.transpose();
        for (r, out_row) in out.data.chunks_mut(n).enumerate() {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (o, b_col) in out_row.iter_mut().zip(bt.data.chunks_exact(k)) {
                *o = dot(a_row, b_col);
            }
        }
        out
    }

    /// `self (m×k) · otherᵀ` where `other` is stored `n×k`. The packing
    /// step absorbs the transpose — nothing is materialized — which is
    /// what the autodiff backward pass uses for its `g·Wᵀ` GEMMs.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt inner dims: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n, k) = (self.rows, other.rows, self.cols);
        let mut out = Matrix::zeros(m, n);
        gemm::with_thread_pack(|pack| {
            gemm::gemm(
                Layout::Nt,
                m,
                n,
                k,
                &self.data,
                BOperand::F32(&other.data),
                None,
                Activation::Identity,
                false,
                &mut out.data,
                pack,
                Some(&WorkPool::global()),
            );
        });
        out
    }

    /// `selfᵀ · other` without materializing the transpose of `self`
    /// (packing absorbs it); the `Aᵀ·g` gradient GEMM in backprop.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul row mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        gemm::with_thread_pack(|pack| {
            gemm::gemm(
                Layout::Tn,
                m,
                n,
                k,
                &self.data,
                BOperand::F32(&other.data),
                None,
                Activation::Identity,
                false,
                &mut out.data,
                pack,
                Some(&WorkPool::global()),
            );
        });
        out
    }

    /// Fused `self·other + bias` (bias is `1×n`, broadcast over rows) in
    /// one pass — the affine layer forward without the intermediate
    /// matrix or the bias-broadcast clone.
    pub fn matmul_bias(&self, other: &Matrix, bias: &Matrix) -> Matrix {
        self.matmul_bias_act(other, bias, Activation::Identity)
    }

    /// Fused `act(self·other + bias)`; bias add and activation run in the
    /// GEMM epilogue while the output is cache-warm.
    pub fn matmul_bias_act(&self, other: &Matrix, bias: &Matrix, act: Activation) -> Matrix {
        self.assert_inner(other);
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, other.cols, "bias width mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::with_thread_pack(|pack| {
            self.gemm_nn(other, Some(&bias.data), act, false, &mut out, pack, Some(&WorkPool::global()));
        });
        out
    }

    /// Fused accumulate: `out = act(out + self·other)`. Paired with
    /// [`Matrix::matmul_bias`] this computes two-operand affine forms like
    /// the GRU gates' `act(x·W + h·U + b)` with no temporaries.
    pub fn matmul_acc_act(&self, other: &Matrix, out: &mut Matrix, act: Activation) {
        self.assert_inner(other);
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_acc_act output shape mismatch"
        );
        gemm::with_thread_pack(|pack| {
            self.gemm_nn(other, None, act, true, out, pack, Some(&WorkPool::global()));
        });
    }

    #[inline]
    fn assert_inner(&self, other: &Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm_nn(
        &self,
        other: &Matrix,
        bias: Option<&[f32]>,
        act: Activation,
        accumulate: bool,
        out: &mut Matrix,
        pack: &mut PackBuffer,
        pool: Option<&WorkPool>,
    ) {
        gemm::gemm(
            Layout::Nn,
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            BOperand::F32(&other.data),
            bias,
            act,
            accumulate,
            &mut out.data,
            pack,
            pool,
        );
    }

    /// Fused `act(self·other + bias)` against a bf16 frozen-weight panel:
    /// the serving-path affine forward when a checkpoint was loaded with
    /// `--precision bf16`. Weights widen to f32 inside the kernel layer;
    /// activations, bias, and the output stay f32 throughout.
    pub fn matmul_bias_act_bf16(&self, other: &PackedBf16, bias: &Matrix, act: Activation) -> Matrix {
        assert_eq!(self.cols, other.rows(), "matmul_bias_act_bf16 inner dim mismatch");
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, other.cols(), "bias width mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols());
        gemm::with_thread_pack(|pack| {
            gemm::gemm(
                Layout::Nn,
                self.rows,
                other.cols(),
                self.cols,
                &self.data,
                BOperand::Bf16(other.data()),
                Some(bias.as_slice()),
                act,
                false,
                &mut out.data,
                pack,
                Some(&WorkPool::global()),
            );
        });
        out
    }

    /// `self·other + bias` against a bf16 panel
    /// ([`Matrix::matmul_bias_act_bf16`] with the identity activation).
    pub fn matmul_bias_bf16(&self, other: &PackedBf16, bias: &Matrix) -> Matrix {
        self.matmul_bias_act_bf16(other, bias, Activation::Identity)
    }

    /// Fused accumulate against a bf16 panel: `out = act(out + self·other)`
    /// — the bf16 twin of [`Matrix::matmul_acc_act`] for the GRU gates'
    /// two-operand affine forms.
    pub fn matmul_acc_act_bf16(&self, other: &PackedBf16, out: &mut Matrix, act: Activation) {
        assert_eq!(self.cols, other.rows(), "matmul_acc_act_bf16 inner dim mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, other.cols()),
            "matmul_acc_act_bf16 output shape mismatch"
        );
        gemm::with_thread_pack(|pack| {
            gemm::gemm(
                Layout::Nn,
                self.rows,
                other.cols(),
                self.cols,
                &self.data,
                BOperand::Bf16(other.data()),
                None,
                act,
                true,
                &mut out.data,
                pack,
                Some(&WorkPool::global()),
            );
        });
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, v.len(), "matvec dim mismatch");
        (0..self.rows).map(|r| dot(self.row(r), v)).collect()
    }

    /// Adds a 1×cols row vector to every row (bias broadcast), allocating
    /// the result. Hot paths use [`Matrix::add_row_broadcast_mut`] or the
    /// fused [`Matrix::matmul_bias`] instead.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_mut(bias);
        out
    }

    /// In-place bias broadcast: `self[r] += bias` for every row.
    pub fn add_row_broadcast_mut(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "broadcast expects a row vector");
        assert_eq!(bias.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for empty).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum → 1×cols.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Column-wise mean → 1×cols.
    pub fn mean_rows(&self) -> Matrix {
        let s = self.sum_rows();
        if self.rows == 0 {
            s
        } else {
            s.scale(1.0 / self.rows as f32)
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared L2 norm of all entries.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Vertically stacks matrices (all must share `cols`).
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack width mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontally concatenates matrices (all must share `rows`).
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack height mismatch");
                out.data[r * cols + offset..r * cols + offset + p.cols]
                    .copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extracts rows `[start, end)` as a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "slice_rows out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows into a new matrix (used by train/test splits).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// Unit-stride dot product; the compiler auto-vectorizes this loop.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Accumulate in f64 chunks of 8 to tame f32 cancellation on long rows.
    let mut acc = 0.0f32;
    let chunks = a.len() / 8 * 8;
    let mut partial = [0.0f32; 8];
    for i in (0..chunks).step_by(8) {
        for l in 0..8 {
            partial[l] += a[i + l] * b[i + l];
        }
    }
    for p in partial {
        acc += p;
    }
    for i in chunks..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// `out += v · w` for a length-`k` row vector `v` and a `k×n` matrix `w`,
/// accumulated as unit-stride axpy rows. The allocation-free per-node
/// path the GHN's sequential GRU update runs on (one node's state is a
/// plain `&[f32]`, not worth a 1×k `Matrix` round trip).
pub fn vecmat_acc(v: &[f32], w: &Matrix, out: &mut [f32]) {
    assert_eq!(v.len(), w.rows(), "vecmat_acc inner dim mismatch");
    assert_eq!(out.len(), w.cols(), "vecmat_acc output dim mismatch");
    (kernels::active().vecmat)(v, w.as_slice(), out);
}

/// [`vecmat_acc`] against a bf16 frozen-weight panel: each weight row
/// widens to f32 inside the dispatched axpy, so the per-node GRU update
/// keeps its allocation-free shape under `--precision bf16`.
pub fn vecmat_acc_bf16(v: &[f32], w: &PackedBf16, out: &mut [f32]) {
    assert_eq!(v.len(), w.rows(), "vecmat_acc_bf16 inner dim mismatch");
    assert_eq!(out.len(), w.cols(), "vecmat_acc_bf16 output dim mismatch");
    (kernels::active().vecmat_bf16)(v, w.data(), out);
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(12)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Rng::new(1);
        let a = Matrix::rand_normal(5, 5, 1.0, &mut rng);
        let i = Matrix::eye(5);
        let prod = a.matmul(&i);
        assert!((&prod - &a).max_abs() < 1e-6);
    }

    #[test]
    fn parallel_and_serial_gemm_agree() {
        let mut rng = Rng::new(2);
        // Large enough to cross PAR_FLOP_THRESHOLD.
        let a = Matrix::rand_normal(80, 70, 1.0, &mut rng);
        let b = Matrix::rand_normal(70, 90, 1.0, &mut rng);
        let c = a.matmul(&b);
        // Naive reference.
        let mut r = Matrix::zeros(80, 90);
        for i in 0..80 {
            for j in 0..90 {
                let mut s = 0.0;
                for k in 0..70 {
                    s += a[(i, k)] * b[(k, j)];
                }
                r[(i, j)] = s;
            }
        }
        assert!((&c - &r).max_abs() < 1e-3);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let mut rng = Rng::new(3);
        let a = Matrix::rand_normal(13, 7, 1.0, &mut rng);
        let b = Matrix::rand_normal(13, 5, 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!((&fast - &slow).max_abs() < 1e-4);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(4);
        let a = Matrix::rand_normal(6, 9, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c, Matrix::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]));
    }

    #[test]
    fn stacking_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.slice_rows(1, 2), b);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h, Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
    }

    #[test]
    fn gather_rows_selects() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
        assert_eq!(m.mean_rows(), Matrix::row_vector(&[2.0, 3.0]));
        assert!((m.frobenius() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dot_long_vectors_accurate() {
        let n = 10_000;
        let a: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i % 5) as f32 - 2.0) * 0.1).collect();
        let exact: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum();
        assert!((dot(&a, &b) as f64 - exact).abs() < 1e-2);
    }
}
