//! Blocked, packed, fusion-aware GEMM core.
//!
//! Every compute-bound path in the workspace — GHN message passing,
//! autodiff training, regressor forwards — funnels through the product
//! kernels in this module. The design is the classic BLIS decomposition,
//! sized for the workspace's shapes (GHN node states are 1×32 … 128×128,
//! training batches a few hundred rows):
//!
//! * an `MR×NR` **microkernel** whose accumulator tile lives in registers,
//!   dispatched at runtime to an explicit AVX2/FMA or NEON implementation
//!   (scalar fallback otherwise) via [`crate::kernels`];
//! * `MC/KC` **cache blocking** with both operands packed into contiguous
//!   panels, so the microkernel streams unit-stride regardless of the
//!   logical orientation of the inputs;
//! * **layout-aware packing**: `A·B`, `A·Bᵀ` and `Aᵀ·B` share one kernel —
//!   the pack routines absorb the transpose, so no caller ever
//!   materializes a transposed matrix again — and bf16 `B` operands
//!   (`BOperand::Bf16`) widen to f32 inside the pack/axpy inner loops,
//!   so storage precision never forks the compute path;
//! * a reusable [`PackBuffer`] so repeated products (training loops,
//!   per-request embeddings) stop allocating per call — including the
//!   pool workers, which keep a thread-local tile workspace instead of
//!   allocating per macro-tile;
//! * parallel **macro-tiles** dispatched over the `pddl_par` work pool
//!   above [`PAR_MADDS`] multiply-adds, each worker writing a disjoint
//!   region of the output;
//! * a fused **epilogue** (`+ bias`, activation) applied while the output
//!   tile is still cache-warm, which is what [`Matrix::matmul_bias_act`]
//!   and the autodiff `affine` ops ride on.
//!
//! ## Determinism and tolerance policy
//!
//! For a given shape the kernel accumulates each output element over `k`
//! in a fixed order, and the parallel macro-tile partition depends only on
//! the shape (never the worker count), so results are **bit-identical
//! across runs and across `PDDL_THREADS` settings**. They are *not*
//! bit-identical to [`Matrix::matmul_reference`] — blocking changes the
//! f32 summation order — so equivalence tests assert relative error
//! ≤ 1e-5 against the reference kernel instead of exact bits
//! (`crates/tensor/tests/gemm_equivalence.rs`). Across *backends* the
//! same policy applies: the scalar backend reproduces the pre-dispatch
//! kernel bit-for-bit, while the FMA backends fuse each multiply-add
//! into a single rounding and are held to the same ≤ 1e-5 relative
//! bound by the dispatch-matrix tests.
//!
//! [`Matrix::matmul_bias_act`]: crate::Matrix::matmul_bias_act
//! [`Matrix::matmul_reference`]: crate::Matrix::matmul_reference

use crate::kernels::{self, Kernels};
use pddl_par::WorkPool;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Microkernel tile rows (accumulator tile is `MR×NR` registers).
pub const MR: usize = 4;
/// Microkernel tile columns; `MR×NR` f32 accumulators fit the SIMD
/// register file with room for the streamed `A`/`B` panel values.
pub const NR: usize = 16;
/// Rows of `A` packed per cache block (L2-resident panel height).
pub const MC: usize = 64;
/// Depth of one packed slab; `MC×KC` of `A` plus `KC×NR` slivers of `B`
/// stay L1/L2-resident while the microkernel sweeps.
pub const KC: usize = 256;
/// Below this many multiply-adds the blocked path's packing overhead
/// outweighs its locality wins; small products use direct unit-stride
/// kernels with no packing at all.
pub const SMALL_MADDS: usize = 16 * 1024;
/// At or above this many multiply-adds the macro-tile loop fans out over
/// the `pddl_par` pool (same threshold the pre-blocked kernel used).
pub const PAR_MADDS: usize = 64 * 64 * 64;
/// Rows per parallel macro-tile. Fixed — never derived from the worker
/// count — so the output partition (and thus every rounding sequence) is
/// identical for any pool size.
const PAR_MC: usize = 32;
/// Columns per parallel macro-tile when the row count is too small to
/// split (row-vector GEMMs parallelize over column blocks instead of not
/// at all). Multiple of `NR`.
const PAR_NC: usize = 128;

/// Elementwise activation fused into the GEMM epilogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// No activation (plain affine output).
    Identity,
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`
    /// (what reverse-mode backward passes have in hand).
    #[inline]
    pub fn grad_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

/// Reusable packing workspace for the blocked kernel.
///
/// Holds the packed `A` panel and packed `B` slabs between calls; the
/// buffers only grow (tracked by [`PackBuffer::allocations`]), so steady
/// shapes — a training loop, repeated embeddings, mixed batch sizes that
/// alternate between a large and a small slab — hit zero allocations
/// after the largest shape has been seen once. [`Matrix::matmul`] keeps
/// one per thread; [`Matrix::matmul_with`] lets callers pin their own.
/// Pool workers reuse a thread-local tile workspace the same way, and
/// every growth event is counted on the `tensor.pack_allocs` telemetry
/// counter so reallocation churn is visible on a live shard.
///
/// [`Matrix::matmul`]: crate::Matrix::matmul
/// [`Matrix::matmul_with`]: crate::Matrix::matmul_with
#[derive(Debug, Default)]
pub struct PackBuffer {
    a: Vec<f32>,
    b: Vec<f32>,
    allocations: usize,
}

impl PackBuffer {
    /// An empty workspace (first use allocates).
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times the workspace had to grow. Stays flat across
    /// repeated products of the same (or smaller) shapes — the property
    /// the allocation-reuse unit tests pin.
    pub fn allocations(&self) -> usize {
        self.allocations
    }
}

fn ensure(buf: &mut Vec<f32>, len: usize, allocations: &mut usize) {
    if buf.len() < len {
        if buf.capacity() < len {
            *allocations += 1;
            gemm_metrics().pack_allocs.inc();
        }
        buf.resize(len, 0.0);
    }
}

thread_local! {
    static TL_PACK: RefCell<PackBuffer> = RefCell::new(PackBuffer::new());
    // Pool workers' per-macro-tile workspace. Separate from TL_PACK so a
    // caller thread that participates in its own fan-out never borrows
    // the same RefCell twice.
    static TL_TILE_PACK: RefCell<PackBuffer> = RefCell::new(PackBuffer::new());
}

/// Runs `f` with this thread's pack workspace (what the `Matrix`
/// convenience methods use so steady-state products never allocate).
pub(crate) fn with_thread_pack<R>(f: impl FnOnce(&mut PackBuffer) -> R) -> R {
    TL_PACK.with(|p| f(&mut p.borrow_mut()))
}

/// Logical orientation of the operands handed to [`gemm`]. The pack
/// routines absorb the transpose; the microkernel never knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Layout {
    /// `A (m×k) · B (k×n)`, both stored row-major as given.
    Nn,
    /// `A (m×k) · Bᵀ` where `B` is stored `n×k`.
    Nt,
    /// `Aᵀ · B (k×n)` where `A` is stored `k×m`.
    Tn,
}

/// The `B` operand as handed to [`gemm`]: full-precision, or a bf16
/// frozen-weight panel widened to f32 inside the pack/axpy inner loops.
/// bf16 is inference-only and restricted to [`Layout::Nn`] — every
/// serving-path product is `x·W` with `W` row-major.
#[derive(Clone, Copy)]
pub(crate) enum BOperand<'a> {
    /// Row-major f32, any layout.
    F32(&'a [f32]),
    /// Row-major bf16 (`Layout::Nn` only).
    Bf16(&'a [u16]),
}

struct GemmMetrics {
    calls: &'static pddl_telemetry::Counter,
    flops: &'static pddl_telemetry::Counter,
    pack_allocs: &'static pddl_telemetry::Counter,
}

fn gemm_metrics() -> &'static GemmMetrics {
    static METRICS: OnceLock<GemmMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GemmMetrics {
        calls: pddl_telemetry::counter("tensor.gemm_calls"),
        flops: pddl_telemetry::counter("tensor.gemm_flops"),
        pack_allocs: pddl_telemetry::counter("tensor.pack_allocs"),
    })
}

/// Core dispatch: `out (m×n) (+)= op(A)·op(B)`, then `+ bias`, then
/// `act`, choosing between the direct small-product kernels, the serial
/// blocked path, and pool-parallel macro-tiles. The kernel set (scalar /
/// AVX2+FMA / NEON) is resolved once per call and threaded through every
/// inner loop, so all macro-tiles of one product use the same backend.
///
/// `out` must hold exactly `m*n` elements. When `accumulate` is false the
/// output is overwritten; when true the products are added to the
/// existing contents (the epilogue still runs last, on the sum).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: BOperand<'_>,
    bias: Option<&[f32]>,
    act: Activation,
    accumulate: bool,
    out: &mut [f32],
    pack: &mut PackBuffer,
    pool: Option<&WorkPool>,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(
        matches!(b, BOperand::F32(_)) || layout == Layout::Nn,
        "bf16 operands are Nn-only (serving-path x·W products)"
    );
    let metrics = gemm_metrics();
    metrics.calls.inc();
    metrics.flops.add((2 * m * n * k) as u64);
    if m == 0 || n == 0 {
        return;
    }
    let kern = kernels::active();
    if !accumulate {
        out.fill(0.0);
    }
    if k > 0 {
        let madds = m * n * k;
        if madds < SMALL_MADDS {
            small_product(kern, layout, m, n, k, a, b, out);
        } else {
            blocked_product(
                kern,
                layout,
                m,
                n,
                k,
                a,
                b,
                out,
                pack,
                pool.filter(|_| madds >= PAR_MADDS),
            );
        }
    }
    epilogue(kern, out, m, n, bias, act);
}

/// Fused `+bias` / activation pass over the finished output. Bias add
/// and ReLU go through the dispatched kernels (both are exact elementwise
/// ops, so every backend produces identical bits); the transcendental
/// activations stay scalar.
fn epilogue(
    kern: &'static Kernels,
    out: &mut [f32],
    m: usize,
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
) {
    if bias.is_none() && act == Activation::Identity {
        return;
    }
    for row in out.chunks_mut(n).take(m) {
        if let Some(bias) = bias {
            (kern.bias_add)(row, bias);
        }
        match act {
            Activation::Identity => {}
            Activation::Relu => (kern.relu)(row),
            _ => {
                for x in row.iter_mut() {
                    *x = act.apply(*x);
                }
            }
        }
    }
}

/// Direct kernels for products too small to amortize packing. All three
/// run unit-stride in their inner loop without touching a transpose;
/// bf16 `B` rows widen inside the dispatched axpy.
#[allow(clippy::too_many_arguments)]
fn small_product(
    kern: &'static Kernels,
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: BOperand<'_>,
    out: &mut [f32],
) {
    match (layout, b) {
        (Layout::Nn, BOperand::F32(b)) => {
            for i in 0..m {
                // Whole row product in one dispatched call — the axpy
                // sweep runs inside the backend (see `Kernels::vecmat`).
                (kern.vecmat)(&a[i * k..(i + 1) * k], b, &mut out[i * n..(i + 1) * n]);
            }
        }
        (Layout::Nn, BOperand::Bf16(b)) => {
            for i in 0..m {
                (kern.vecmat_bf16)(&a[i * k..(i + 1) * k], b, &mut out[i * n..(i + 1) * n]);
            }
        }
        (Layout::Nt, BOperand::F32(b)) => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o += (kern.dot)(a_row, &b[j * k..(j + 1) * k]);
                }
            }
        }
        (Layout::Tn, BOperand::F32(b)) => {
            for p in 0..k {
                let a_col = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_col.iter().enumerate() {
                    (kern.axpy)(av, b_row, &mut out[i * n..(i + 1) * n]);
                }
            }
        }
        (_, BOperand::Bf16(_)) => unreachable!("bf16 operands are Nn-only"),
    }
}

/// Packed blocked path, optionally fanned out over the pool.
#[allow(clippy::too_many_arguments)]
fn blocked_product(
    kern: &'static Kernels,
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: BOperand<'_>,
    out: &mut [f32],
    pack: &mut PackBuffer,
    pool: Option<&WorkPool>,
) {
    let npad = n.div_ceil(NR) * NR;
    let PackBuffer { a: pa, b: pb, allocations } = pack;
    ensure(pb, k * npad, allocations);
    pack_b(layout, n, k, b, &mut pb[..k * npad]);
    let pb = &pb[..k * npad];

    let row_tiles = m.div_ceil(PAR_MC);
    let col_tiles = n.div_ceil(PAR_NC);
    let workers = pool.map_or(1, WorkPool::threads);
    if workers > 1 && row_tiles >= col_tiles && row_tiles > 1 {
        // Row macro-tiles: each worker owns a disjoint block of output
        // rows (a contiguous chunk of the row-major buffer) and packs A
        // into its thread-local tile workspace, so steady-state fan-outs
        // allocate nothing.
        let pool = pool.expect("workers > 1 implies a pool");
        pool.for_each_chunk_mut(&mut out[..m * n], PAR_MC * n, |tile, chunk| {
            let r0 = tile * PAR_MC;
            let r1 = r0 + chunk.len() / n;
            TL_TILE_PACK.with(|p| {
                let local = &mut *p.borrow_mut();
                gemm_rows(
                    kern,
                    layout,
                    r0,
                    r1,
                    0,
                    n,
                    m,
                    k,
                    a,
                    pb,
                    npad,
                    chunk,
                    n,
                    &mut local.a,
                    &mut local.allocations,
                );
            });
        });
    } else if workers > 1 && col_tiles > 1 {
        // Column macro-tiles (row-vector GEMMs): workers compute disjoint
        // column stripes into local buffers, merged by column in a fixed
        // order afterwards. Each stripe holds only this call's products,
        // so the merge is an add on top of any accumulate base.
        let pool = pool.expect("workers > 1 implies a pool");
        let stripes: Vec<usize> = (0..col_tiles).collect();
        let results = pool.map(&stripes, |&tile| {
            let c0 = tile * PAR_NC;
            let c1 = (c0 + PAR_NC).min(n);
            let mut stripe = vec![0.0f32; m * (c1 - c0)];
            TL_TILE_PACK.with(|p| {
                let local = &mut *p.borrow_mut();
                gemm_rows(
                    kern,
                    layout,
                    0,
                    m,
                    c0,
                    c1,
                    m,
                    k,
                    a,
                    pb,
                    npad,
                    &mut stripe,
                    c1 - c0,
                    &mut local.a,
                    &mut local.allocations,
                );
            });
            stripe
        });
        for (tile, stripe) in results.iter().enumerate() {
            let c0 = tile * PAR_NC;
            let cw = stripe.len() / m;
            for r in 0..m {
                let dst = &mut out[r * n + c0..r * n + c0 + cw];
                for (o, &v) in dst.iter_mut().zip(&stripe[r * cw..(r + 1) * cw]) {
                    *o += v;
                }
            }
        }
    } else {
        gemm_rows(kern, layout, 0, m, 0, n, m, k, a, pb, npad, &mut out[..m * n], n, pa, allocations);
    }
}

/// Serial blocked compute for output rows `[r0, r1)` × columns
/// `[c0, c1)` (`c0` must be `NR`-aligned). `out` covers exactly that
/// window with row stride `ostride`; products are *added* into it.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    kern: &'static Kernels,
    layout: Layout,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    m: usize,
    k: usize,
    a: &[f32],
    pb: &[f32],
    npad: usize,
    out: &mut [f32],
    ostride: usize,
    pa: &mut Vec<f32>,
    allocations: &mut usize,
) {
    debug_assert_eq!(c0 % NR, 0);
    for ic in (r0..r1).step_by(MC) {
        let mc = MC.min(r1 - ic);
        let mcpad = mc.div_ceil(MR) * MR;
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            ensure(pa, mcpad * kc, allocations);
            pack_a(layout, ic, mc, pc, kc, m, k, a, &mut pa[..mcpad * kc]);
            let slab = &pb[pc * npad..pc * npad + kc * npad];
            for js in (c0 / NR)..c1.div_ceil(NR) {
                let pbs = &slab[js * kc * NR..(js + 1) * kc * NR];
                let jcol = js * NR;
                let jlim = NR.min(c1 - jcol);
                for is in 0..mcpad / MR {
                    let pas = &pa[is * kc * MR..(is + 1) * kc * MR];
                    let acc = (kern.microkernel)(pas, pbs);
                    let ilim = MR.min(mc - is * MR);
                    let row0 = ic - r0 + is * MR;
                    for (i, acc_row) in acc.iter().enumerate().take(ilim) {
                        let dst = &mut out[(row0 + i) * ostride + (jcol - c0)..][..jlim];
                        for (o, &v) in dst.iter_mut().zip(acc_row) {
                            *o += v;
                        }
                    }
                }
            }
        }
    }
}

/// Packs logical `A[ic..ic+mc, pc..pc+kc]` into `MR`-row slivers, zero
/// padding the row remainder. Absorbs the `Tn` transpose.
#[allow(clippy::too_many_arguments)]
fn pack_a(layout: Layout, ic: usize, mc: usize, pc: usize, kc: usize, m: usize, k: usize, a: &[f32], pa: &mut [f32]) {
    let mcpad = mc.div_ceil(MR) * MR;
    for is in 0..mcpad / MR {
        let sliver = &mut pa[is * kc * MR..(is + 1) * kc * MR];
        for p in 0..kc {
            for i in 0..MR {
                let r = is * MR + i;
                sliver[p * MR + i] = if r < mc {
                    match layout {
                        Layout::Nn | Layout::Nt => a[(ic + r) * k + pc + p],
                        Layout::Tn => a[(pc + p) * m + ic + r],
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs all of logical `B` into per-`KC` slabs of `NR`-column slivers,
/// zero padding the column remainder. Absorbs the `Nt` transpose; bf16
/// operands widen to f32 here, so the packed panel — and everything
/// downstream of it — is precision-agnostic.
fn pack_b(layout: Layout, n: usize, k: usize, b: BOperand<'_>, pb: &mut [f32]) {
    let npad = n.div_ceil(NR) * NR;
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        let slab = &mut pb[pc * npad..pc * npad + kc * npad];
        for js in 0..npad / NR {
            let jcol = js * NR;
            let jlim = NR.min(n - jcol);
            let sliver = &mut slab[js * kc * NR..(js + 1) * kc * NR];
            for p in 0..kc {
                let dst = &mut sliver[p * NR..(p + 1) * NR];
                match (layout, b) {
                    (Layout::Nn | Layout::Tn, BOperand::F32(b)) => {
                        let src = &b[(pc + p) * n + jcol..(pc + p) * n + jcol + jlim];
                        dst[..jlim].copy_from_slice(src);
                    }
                    (Layout::Nn, BOperand::Bf16(b)) => {
                        let src = &b[(pc + p) * n + jcol..(pc + p) * n + jcol + jlim];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = crate::bf16::widen_bf16(s);
                        }
                    }
                    (Layout::Nt, BOperand::F32(b)) => {
                        for (j, d) in dst.iter_mut().enumerate().take(jlim) {
                            *d = b[(jcol + j) * k + pc + p];
                        }
                    }
                    (_, BOperand::Bf16(_)) => unreachable!("bf16 operands are Nn-only"),
                }
                for d in &mut dst[jlim..] {
                    *d = 0.0;
                }
            }
        }
    }
}
