//! Property-based tests of the matrix kernels and decompositions.

use pddl_tensor::linalg::{cholesky, lstsq, qr, solve_spd};
use pddl_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    Matrix::rand_normal(rows, cols, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_associative(seed in any::<u64>(), m in 1usize..6, k in 1usize..6, n in 1usize..6, p in 1usize..6) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 1);
        let c = rand_matrix(n, p, seed ^ 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!((&left - &right).max_abs() < 1e-3);
    }

    #[test]
    fn matmul_distributes_over_add(seed in any::<u64>(), m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 3);
        let c = rand_matrix(k, n, seed ^ 4);
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!((&left - &right).max_abs() < 1e-3);
    }

    #[test]
    fn transpose_of_product(seed in any::<u64>(), m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 5);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!((&left - &right).max_abs() < 1e-3);
    }

    #[test]
    fn hstack_vstack_shapes(seed in any::<u64>(), m in 1usize..5, n in 1usize..5) {
        let a = rand_matrix(m, n, seed);
        let b = rand_matrix(m, n, seed ^ 6);
        let h = Matrix::hstack(&[&a, &b]);
        prop_assert_eq!(h.shape(), (m, 2 * n));
        let v = Matrix::vstack(&[&a, &b]);
        prop_assert_eq!(v.shape(), (2 * m, n));
        // Slices recover the parts.
        prop_assert_eq!(v.slice_rows(0, m), a.clone());
        prop_assert_eq!(v.slice_rows(m, 2 * m), b);
    }

    #[test]
    fn qr_always_reconstructs(seed in any::<u64>(), n in 1usize..6, extra in 0usize..5) {
        let m = n + extra;
        let a = rand_matrix(m, n, seed);
        let (q, r) = qr(&a);
        prop_assert!((&q.matmul(&r) - &a).max_abs() < 1e-3);
    }

    #[test]
    fn lstsq_residual_never_worse_than_zero_vector(seed in any::<u64>(), n in 1usize..5, extra in 1usize..6) {
        let m = n + extra;
        let a = rand_matrix(m, n, seed);
        let b: Vec<f32> = rand_matrix(m, 1, seed ^ 7).as_slice().to_vec();
        let x = lstsq(&a, &b);
        let pred = a.matvec(&x);
        let resid: f32 = pred.iter().zip(&b).map(|(p, t)| (p - t) * (p - t)).sum();
        let zero_resid: f32 = b.iter().map(|t| t * t).sum();
        prop_assert!(resid <= zero_resid + 1e-3);
    }

    #[test]
    fn gram_matrices_are_spd(seed in any::<u64>(), m in 2usize..8, n in 1usize..5) {
        let a = rand_matrix(m, n, seed);
        let mut gram = a.t_matmul(&a);
        for i in 0..n {
            gram[(i, i)] += 0.1;
        }
        prop_assert!(cholesky(&gram).is_some());
        // Solve and verify.
        let x_true: Vec<f32> = (0..n).map(|i| i as f32 - 1.0).collect();
        let rhs = gram.matvec(&x_true);
        let x = solve_spd(&gram, &rhs).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            prop_assert!((a - b).abs() < 0.05, "{:?} vs {:?}", x, x_true);
        }
    }

    #[test]
    fn gather_rows_preserves_content(seed in any::<u64>(), m in 1usize..8, n in 1usize..5) {
        let a = rand_matrix(m, n, seed);
        let idx: Vec<usize> = (0..m).rev().collect();
        let g = a.gather_rows(&idx);
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(i), a.row(r));
        }
    }

    #[test]
    fn bf16_round_trip_is_monotone_and_sign_preserving(a in any::<f32>(), b in any::<f32>()) {
        use pddl_tensor::{quantize_bf16, widen_bf16};
        prop_assume!(a.is_finite() && b.is_finite());
        let (ra, rb) = (widen_bf16(quantize_bf16(a)), widen_bf16(quantize_bf16(b)));
        // Sign-preserving: rounding never crosses zero (round-to-nearest
        // of a nonzero value may reach ±0 but never the opposite sign).
        if a > 0.0 {
            prop_assert!(ra >= 0.0, "{a} -> {ra}");
        }
        if a < 0.0 {
            prop_assert!(ra <= 0.0, "{a} -> {ra}");
        }
        // Monotone: quantize→widen never reorders two finite inputs.
        if a <= b {
            prop_assert!(ra <= rb, "{a} <= {b} but {ra} > {rb}");
        } else {
            prop_assert!(ra >= rb, "{a} > {b} but {ra} < {rb}");
        }
        // Relative error bound for normal values.
        if a != 0.0 && a.is_normal() && ra.is_finite() {
            prop_assert!((ra - a).abs() <= a.abs() * (1.0 / 256.0), "{a} -> {ra}");
        }
    }
}
