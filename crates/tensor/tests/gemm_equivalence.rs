//! Equivalence, determinism, and allocation-reuse suite for the blocked
//! packed GEMM core.
//!
//! Uses the in-tree seeded `Rng` for randomized sweeps (instead of the
//! `proptest` crate) so the whole file runs in offline containers via
//! `scripts/offline_check.sh test-tensor` as well as in networked CI.
//!
//! Tolerance policy (see `crates/tensor/src/gemm.rs`): blocked results
//! are compared to `matmul_reference` at ≤ 1e-5 *relative* error — the
//! summation order differs, the math does not. Determinism is asserted
//! in exact bits: same inputs, any pool size, same output.

use pddl_par::WorkPool;
use pddl_tensor::{Activation, Matrix, PackBuffer, Rng};

/// max |a-b| / max(1, |a|, |b|), elementwise.
fn rel_err(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0f32, f32::max)
}

fn random_pair(m: usize, k: usize, n: usize, rng: &mut Rng) -> (Matrix, Matrix) {
    (
        Matrix::rand_normal(m, k, 1.0, rng),
        Matrix::rand_normal(k, n, 1.0, rng),
    )
}

/// Shapes chosen to cross every dispatch boundary: tiny (direct
/// kernels), blocked-serial, blocked-pooled, plus degenerate m=1 / k=1 /
/// n=1 and non-multiple-of-tile edges.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 32, 32),
    (1, 32, 64),
    (1, 1, 128),
    (7, 1, 5),
    (4, 32, 64),
    (13, 7, 5),
    (32, 32, 32),
    (33, 65, 17),
    (64, 64, 64),
    (67, 129, 66),
    (128, 128, 128),
    (1, 300, 300),
    (130, 1, 130),
];

#[test]
fn blocked_matches_reference_across_shapes() {
    let mut rng = Rng::new(0xB10C);
    for &(m, k, n) in SHAPES {
        let (a, b) = random_pair(m, k, n, &mut rng);
        let reference = a.matmul_reference(&b);
        let blocked = a.matmul(&b);
        let err = rel_err(&blocked, &reference);
        assert!(err <= 1e-5, "{m}x{k}·{k}x{n}: rel err {err}");
    }
}

#[test]
fn blocked_matches_reference_on_random_shapes() {
    let mut rng = Rng::new(0x5EED);
    for _ in 0..60 {
        let m = 1 + (rng.next_u64() % 90) as usize;
        let k = 1 + (rng.next_u64() % 90) as usize;
        let n = 1 + (rng.next_u64() % 90) as usize;
        let (a, b) = random_pair(m, k, n, &mut rng);
        let err = rel_err(&a.matmul(&b), &a.matmul_reference(&b));
        assert!(err <= 1e-5, "{m}x{k}·{k}x{n}: rel err {err}");
    }
}

#[test]
fn nt_and_tn_match_explicit_transposes() {
    let mut rng = Rng::new(0x7A);
    for &(m, k, n) in SHAPES {
        let a = Matrix::rand_normal(m, k, 1.0, &mut rng);
        let bt = Matrix::rand_normal(n, k, 1.0, &mut rng);
        let err = rel_err(&a.matmul_nt(&bt), &a.matmul_reference(&bt.transpose()));
        assert!(err <= 1e-5, "NT {m}x{k}: rel err {err}");

        let at = Matrix::rand_normal(k, m, 1.0, &mut rng);
        let b = Matrix::rand_normal(k, n, 1.0, &mut rng);
        let err = rel_err(&at.t_matmul(&b), &at.transpose().matmul_reference(&b));
        assert!(err <= 1e-5, "TN {k}x{m}: rel err {err}");
    }
}

#[test]
fn fused_ops_equal_unfused_pipeline() {
    let mut rng = Rng::new(0xF00D);
    for &(m, k, n) in SHAPES {
        let (a, b) = random_pair(m, k, n, &mut rng);
        let bias = Matrix::rand_normal(1, n, 1.0, &mut rng);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let fused = a.matmul_bias_act(&b, &bias, act);
            let unfused = a.matmul(&b).add_row_broadcast(&bias).map(|x| act.apply(x));
            let err = rel_err(&fused, &unfused);
            assert!(err <= 1e-5, "{m}x{k}x{n} {act:?}: rel err {err}");
        }
    }
}

#[test]
fn accumulate_computes_two_operand_affine() {
    // act(x·W + h·U + b) via matmul_bias + matmul_acc_act, the GRU gate
    // form, against the naive pipeline.
    let mut rng = Rng::new(0xACC);
    for &(m, d) in &[(1usize, 8usize), (5, 32), (40, 64), (130, 33)] {
        let x = Matrix::rand_normal(m, d, 1.0, &mut rng);
        let h = Matrix::rand_normal(m, d, 1.0, &mut rng);
        let w = Matrix::rand_normal(d, d, 1.0, &mut rng);
        let u = Matrix::rand_normal(d, d, 1.0, &mut rng);
        let b = Matrix::rand_normal(1, d, 1.0, &mut rng);
        let mut fused = x.matmul_bias(&w, &b);
        h.matmul_acc_act(&u, &mut fused, Activation::Sigmoid);
        let unfused = (&x.matmul(&w).add_row_broadcast(&b) + &h.matmul(&u))
            .map(|v| Activation::Sigmoid.apply(v));
        let err = rel_err(&fused, &unfused);
        assert!(err <= 1e-5, "m={m} d={d}: rel err {err}");
    }
}

#[test]
fn results_are_bit_identical_across_runs_and_pool_sizes() {
    let mut rng = Rng::new(0xD37);
    for &(m, k, n) in &[(1usize, 300usize, 300usize), (64, 64, 64), (128, 128, 128), (33, 65, 17)] {
        let (a, b) = random_pair(m, k, n, &mut rng);
        let baseline = a.matmul_pooled(&b, &WorkPool::new(1));
        // Repeated runs: identical bits.
        for _ in 0..3 {
            let again = a.matmul(&b);
            assert_eq!(bits(&baseline), bits(&again), "{m}x{k}x{n} rerun drifted");
        }
        // Any worker count: identical bits (fixed macro-tile partition).
        for threads in [2, 3, 7, 16] {
            let pooled = a.matmul_pooled(&b, &WorkPool::new(threads));
            assert_eq!(bits(&baseline), bits(&pooled), "{m}x{k}x{n} threads={threads}");
        }
        // Caller-owned pack buffer (serial path): same bits again.
        let mut pack = PackBuffer::new();
        assert_eq!(bits(&baseline), bits(&a.matmul_with(&b, &mut pack)));
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn pack_buffer_reuse_stops_allocating() {
    let mut rng = Rng::new(0x9AC);
    let (a, b) = random_pair(96, 96, 96, &mut rng);
    let mut pack = PackBuffer::new();
    let _ = a.matmul_with(&b, &mut pack);
    let after_first = pack.allocations();
    assert!(after_first >= 1, "first product must populate the workspace");
    for _ in 0..10 {
        let _ = a.matmul_with(&b, &mut pack);
    }
    assert_eq!(
        pack.allocations(),
        after_first,
        "repeated same-shape products must not grow the workspace"
    );
    // Smaller products fit in the warm workspace too.
    let (c, d) = random_pair(40, 50, 60, &mut rng);
    let _ = c.matmul_with(&d, &mut pack);
    assert_eq!(pack.allocations(), after_first, "smaller shapes reuse the buffers");
}

#[test]
fn add_row_broadcast_mut_matches_allocating_version() {
    let mut rng = Rng::new(0xB1A5);
    let m = Matrix::rand_normal(9, 17, 1.0, &mut rng);
    let bias = Matrix::rand_normal(1, 17, 1.0, &mut rng);
    let expect = m.add_row_broadcast(&bias);
    let mut inplace = m.clone();
    inplace.add_row_broadcast_mut(&bias);
    assert_eq!(bits(&expect), bits(&inplace));
}

#[test]
fn vecmat_acc_matches_row_vector_matmul() {
    let mut rng = Rng::new(0x7EC);
    let w = Matrix::rand_normal(37, 19, 1.0, &mut rng);
    let v: Vec<f32> = (0..37).map(|_| rng.normal()).collect();
    let mut out = vec![0.5f32; 19];
    let mut expect = out.clone();
    let prod = Matrix::row_vector(&v).matmul_reference(&w);
    for (e, &p) in expect.iter_mut().zip(prod.as_slice()) {
        *e += p;
    }
    pddl_tensor::vecmat_acc(&v, &w, &mut out);
    for (got, want) in out.iter().zip(&expect) {
        assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
    }
}

#[test]
fn degenerate_dims_are_safe() {
    let a = Matrix::zeros(0, 5);
    let b = Matrix::zeros(5, 4);
    assert_eq!(a.matmul(&b).shape(), (0, 4));
    let a = Matrix::zeros(3, 0);
    let b = Matrix::zeros(0, 4);
    assert_eq!(a.matmul(&b), Matrix::zeros(3, 4));
    let a = Matrix::zeros(3, 5);
    let b = Matrix::zeros(5, 0);
    assert_eq!(a.matmul(&b).shape(), (3, 0));
}
