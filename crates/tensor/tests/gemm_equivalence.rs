//! Equivalence, determinism, and allocation-reuse suite for the blocked
//! packed GEMM core.
//!
//! Uses the in-tree seeded `Rng` for randomized sweeps (instead of the
//! `proptest` crate) so the whole file runs in offline containers via
//! `scripts/offline_check.sh test-tensor` as well as in networked CI.
//!
//! Tolerance policy (see `crates/tensor/src/gemm.rs`): blocked results
//! are compared to `matmul_reference` at ≤ 1e-5 *relative* error — the
//! summation order differs, the math does not. Determinism is asserted
//! in exact bits: same inputs, any pool size, same output.

use pddl_par::WorkPool;
use pddl_tensor::{Activation, KernelBackend, Matrix, PackBuffer, PackedBf16, Rng};
use std::sync::Mutex;

/// Serializes tests that flip the process-global kernel backend (or that
/// assert bit-identity across several products, which a concurrent flip
/// would break).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// RAII force-scalar override that restores the previous state even when
/// the assertion inside panics.
struct ScalarGuard(bool);

impl ScalarGuard {
    fn engage() -> Self {
        let prev = pddl_tensor::kernels::force_scalar();
        pddl_tensor::set_force_scalar(true);
        Self(prev)
    }
}

impl Drop for ScalarGuard {
    fn drop(&mut self) {
        pddl_tensor::set_force_scalar(self.0);
    }
}

/// max |a-b| / max(1, |a|, |b|), elementwise.
fn rel_err(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0f32, f32::max)
}

fn random_pair(m: usize, k: usize, n: usize, rng: &mut Rng) -> (Matrix, Matrix) {
    (
        Matrix::rand_normal(m, k, 1.0, rng),
        Matrix::rand_normal(k, n, 1.0, rng),
    )
}

/// Shapes chosen to cross every dispatch boundary: tiny (direct
/// kernels), blocked-serial, blocked-pooled, plus degenerate m=1 / k=1 /
/// n=1 and non-multiple-of-tile edges.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 32, 32),
    (1, 32, 64),
    (1, 1, 128),
    (7, 1, 5),
    (4, 32, 64),
    (13, 7, 5),
    (32, 32, 32),
    (33, 65, 17),
    (64, 64, 64),
    (67, 129, 66),
    (128, 128, 128),
    (1, 300, 300),
    (130, 1, 130),
];

#[test]
fn blocked_matches_reference_across_shapes() {
    let mut rng = Rng::new(0xB10C);
    for &(m, k, n) in SHAPES {
        let (a, b) = random_pair(m, k, n, &mut rng);
        let reference = a.matmul_reference(&b);
        let blocked = a.matmul(&b);
        let err = rel_err(&blocked, &reference);
        assert!(err <= 1e-5, "{m}x{k}·{k}x{n}: rel err {err}");
    }
}

#[test]
fn blocked_matches_reference_on_random_shapes() {
    let mut rng = Rng::new(0x5EED);
    for _ in 0..60 {
        let m = 1 + (rng.next_u64() % 90) as usize;
        let k = 1 + (rng.next_u64() % 90) as usize;
        let n = 1 + (rng.next_u64() % 90) as usize;
        let (a, b) = random_pair(m, k, n, &mut rng);
        let err = rel_err(&a.matmul(&b), &a.matmul_reference(&b));
        assert!(err <= 1e-5, "{m}x{k}·{k}x{n}: rel err {err}");
    }
}

#[test]
fn nt_and_tn_match_explicit_transposes() {
    let mut rng = Rng::new(0x7A);
    for &(m, k, n) in SHAPES {
        let a = Matrix::rand_normal(m, k, 1.0, &mut rng);
        let bt = Matrix::rand_normal(n, k, 1.0, &mut rng);
        let err = rel_err(&a.matmul_nt(&bt), &a.matmul_reference(&bt.transpose()));
        assert!(err <= 1e-5, "NT {m}x{k}: rel err {err}");

        let at = Matrix::rand_normal(k, m, 1.0, &mut rng);
        let b = Matrix::rand_normal(k, n, 1.0, &mut rng);
        let err = rel_err(&at.t_matmul(&b), &at.transpose().matmul_reference(&b));
        assert!(err <= 1e-5, "TN {k}x{m}: rel err {err}");
    }
}

#[test]
fn fused_ops_equal_unfused_pipeline() {
    let mut rng = Rng::new(0xF00D);
    for &(m, k, n) in SHAPES {
        let (a, b) = random_pair(m, k, n, &mut rng);
        let bias = Matrix::rand_normal(1, n, 1.0, &mut rng);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let fused = a.matmul_bias_act(&b, &bias, act);
            let unfused = a.matmul(&b).add_row_broadcast(&bias).map(|x| act.apply(x));
            let err = rel_err(&fused, &unfused);
            assert!(err <= 1e-5, "{m}x{k}x{n} {act:?}: rel err {err}");
        }
    }
}

#[test]
fn accumulate_computes_two_operand_affine() {
    // act(x·W + h·U + b) via matmul_bias + matmul_acc_act, the GRU gate
    // form, against the naive pipeline.
    let mut rng = Rng::new(0xACC);
    for &(m, d) in &[(1usize, 8usize), (5, 32), (40, 64), (130, 33)] {
        let x = Matrix::rand_normal(m, d, 1.0, &mut rng);
        let h = Matrix::rand_normal(m, d, 1.0, &mut rng);
        let w = Matrix::rand_normal(d, d, 1.0, &mut rng);
        let u = Matrix::rand_normal(d, d, 1.0, &mut rng);
        let b = Matrix::rand_normal(1, d, 1.0, &mut rng);
        let mut fused = x.matmul_bias(&w, &b);
        h.matmul_acc_act(&u, &mut fused, Activation::Sigmoid);
        let unfused = (&x.matmul(&w).add_row_broadcast(&b) + &h.matmul(&u))
            .map(|v| Activation::Sigmoid.apply(v));
        let err = rel_err(&fused, &unfused);
        assert!(err <= 1e-5, "m={m} d={d}: rel err {err}");
    }
}

/// The dispatch matrix of the kernel layer: every backend available on
/// this host × every layout (`Nn`/`Nt`/`Tn`) × every fused epilogue.
/// Policy (see `crates/tensor/src/kernels.rs`): two runs on the *same*
/// backend are bit-identical; the SIMD backends match scalar at ≤ 1e-5
/// relative (FMA fuses the multiply-add rounding, so exact bits are not
/// promised across backends).
#[test]
fn dispatch_matrix_backends_agree_across_layouts_and_epilogues() {
    let _lock = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let native = pddl_tensor::backend();
    let mut rng = Rng::new(0xD15);
    for &(m, k, n) in &[(1usize, 32usize, 64usize), (13, 7, 5), (33, 65, 17), (128, 128, 128)] {
        let a = Matrix::rand_normal(m, k, 1.0, &mut rng);
        let b = Matrix::rand_normal(k, n, 1.0, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let bias = Matrix::rand_normal(1, n, 1.0, &mut rng);
        type Product<'a> = (&'a str, Box<dyn Fn() -> Matrix + 'a>);
        let products: Vec<Product> = vec![
            ("Nn", Box::new(|| a.matmul(&b))),
            ("Nt", Box::new(|| a.matmul_nt(&bt))),
            ("Tn", Box::new(|| at.t_matmul(&b))),
            ("Nn+bias+relu", Box::new(|| a.matmul_bias_act(&b, &bias, Activation::Relu))),
            ("Nn+bias+tanh", Box::new(|| a.matmul_bias_act(&b, &bias, Activation::Tanh))),
            ("Nn+bias+sigmoid", Box::new(|| a.matmul_bias_act(&b, &bias, Activation::Sigmoid))),
        ];
        for (label, run) in &products {
            let on_native = run();
            assert_eq!(
                bits(&on_native),
                bits(&run()),
                "{m}x{k}x{n} {label}: same backend must be deterministic"
            );
            let on_scalar = {
                let _guard = ScalarGuard::engage();
                assert_eq!(pddl_tensor::backend(), KernelBackend::Scalar);
                run()
            };
            if native == KernelBackend::Scalar {
                assert_eq!(
                    bits(&on_native),
                    bits(&on_scalar),
                    "{m}x{k}x{n} {label}: scalar fallback must be bit-exact"
                );
            } else {
                let err = rel_err(&on_native, &on_scalar);
                assert!(
                    err <= 1e-5,
                    "{m}x{k}x{n} {label}: {native:?} vs scalar rel err {err}"
                );
            }
        }
    }
}

/// bf16 storage is a *pure storage* change: widening the quantized panel
/// back to f32 and running the f32 path produces bit-identical results to
/// the bf16 entry points, because the kernel layer widens to f32 before
/// any arithmetic. Against the original f32 weights the drift is bounded
/// by bf16's 2⁻⁸ relative quantization step.
#[test]
fn bf16_matmul_is_exactly_widened_f32_and_tracks_original() {
    let _lock = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::new(0xBF16);
    // Shapes crossing the small/vecmat and blocked dispatch boundaries.
    for &(m, k, n) in &[(1usize, 24usize, 48usize), (5, 33, 17), (64, 64, 64), (96, 128, 80)] {
        let a = Matrix::rand_normal(m, k, 1.0, &mut rng);
        let w = Matrix::rand_normal(k, n, 1.0, &mut rng);
        let bias = Matrix::rand_normal(1, n, 1.0, &mut rng);
        let packed = PackedBf16::from_matrix(&w);
        let widened = packed.to_matrix();
        for act in [Activation::Identity, Activation::Relu, Activation::Sigmoid] {
            let via_bf16 = a.matmul_bias_act_bf16(&packed, &bias, act);
            let via_widened = a.matmul_bias_act(&widened, &bias, act);
            assert_eq!(
                bits(&via_bf16),
                bits(&via_widened),
                "{m}x{k}x{n} {act:?}: bf16 path must equal widened-f32 path exactly"
            );
            let vs_f32 = a.matmul_bias_act(&w, &bias, act);
            let err = rel_err(&via_bf16, &vs_f32);
            // k accumulated terms each perturbed ≤2⁻⁹ on average (RNE):
            // for unit-normal factors the absolute drift is bounded by
            // Σ|aᵢwᵢ|·2⁻⁹ ≈ 0.64·k/512, so gate at k/512 with the
            // rel_err scale floor of 1.0 absorbing small outputs.
            let bound = k as f32 / 512.0;
            assert!(
                err <= bound,
                "{m}x{k}x{n} {act:?}: bf16 drift {err} vs f32 (bound {bound})"
            );
        }
        // Accumulating entry point (the GRU gate form).
        let mut acc_bf16 = a.matmul_bias_bf16(&packed, &bias);
        let mut acc_f32 = a.matmul_bias(&widened, &bias);
        assert_eq!(bits(&acc_bf16), bits(&acc_f32));
        a.matmul_acc_act_bf16(&packed, &mut acc_bf16, Activation::Sigmoid);
        a.matmul_acc_act(&widened, &mut acc_f32, Activation::Sigmoid);
        assert_eq!(bits(&acc_bf16), bits(&acc_f32), "{m}x{k}x{n}: accumulate path");
    }
}

#[test]
fn vecmat_acc_bf16_matches_widened_f32_exactly() {
    let _lock = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::new(0x7EC2);
    let w = Matrix::rand_normal(37, 19, 1.0, &mut rng);
    let packed = PackedBf16::from_matrix(&w);
    let widened = packed.to_matrix();
    let v: Vec<f32> = (0..37).map(|_| rng.normal()).collect();
    let mut via_bf16 = vec![0.25f32; 19];
    let mut via_widened = via_bf16.clone();
    pddl_tensor::vecmat_acc_bf16(&v, &packed, &mut via_bf16);
    pddl_tensor::vecmat_acc(&v, &widened, &mut via_widened);
    assert_eq!(
        via_bf16.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        via_widened.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
    );
}

#[test]
fn results_are_bit_identical_across_runs_and_pool_sizes() {
    let _lock = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::new(0xD37);
    for &(m, k, n) in &[(1usize, 300usize, 300usize), (64, 64, 64), (128, 128, 128), (33, 65, 17)] {
        let (a, b) = random_pair(m, k, n, &mut rng);
        let baseline = a.matmul_pooled(&b, &WorkPool::new(1));
        // Repeated runs: identical bits.
        for _ in 0..3 {
            let again = a.matmul(&b);
            assert_eq!(bits(&baseline), bits(&again), "{m}x{k}x{n} rerun drifted");
        }
        // Any worker count: identical bits (fixed macro-tile partition).
        for threads in [2, 3, 7, 16] {
            let pooled = a.matmul_pooled(&b, &WorkPool::new(threads));
            assert_eq!(bits(&baseline), bits(&pooled), "{m}x{k}x{n} threads={threads}");
        }
        // Caller-owned pack buffer (serial path): same bits again.
        let mut pack = PackBuffer::new();
        assert_eq!(bits(&baseline), bits(&a.matmul_with(&b, &mut pack)));
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn pack_buffer_reuse_stops_allocating() {
    let mut rng = Rng::new(0x9AC);
    let (a, b) = random_pair(96, 96, 96, &mut rng);
    let mut pack = PackBuffer::new();
    let _ = a.matmul_with(&b, &mut pack);
    let after_first = pack.allocations();
    assert!(after_first >= 1, "first product must populate the workspace");
    for _ in 0..10 {
        let _ = a.matmul_with(&b, &mut pack);
    }
    assert_eq!(
        pack.allocations(),
        after_first,
        "repeated same-shape products must not grow the workspace"
    );
    // Smaller products fit in the warm workspace too.
    let (c, d) = random_pair(40, 50, 60, &mut rng);
    let _ = c.matmul_with(&d, &mut pack);
    assert_eq!(pack.allocations(), after_first, "smaller shapes reuse the buffers");
}

/// Regression test for the pack-workspace reuse fix: alternating between
/// *mismatched* shapes — none larger than the first in any packed
/// dimension — must never grow the workspace again, and every growth
/// event lands on the `tensor.pack_allocs` telemetry counter.
#[test]
fn mismatched_smaller_shapes_never_reallocate() {
    let mut rng = Rng::new(0x51A3);
    let before = pddl_telemetry::snapshot().counter("tensor.pack_allocs").unwrap_or(0);
    let mut pack = PackBuffer::new();
    // Largest shape first: warms both the A panel and the B slab.
    let (a, b) = random_pair(128, 128, 128, &mut rng);
    let _ = a.matmul_with(&b, &mut pack);
    let warm = pack.allocations();
    assert!(warm >= 1);
    // Mismatched smaller shapes, cycling so consecutive calls never agree
    // on m, k, or n — the pre-fix behavior reallocated on every change.
    for &(m, k, n) in &[(96usize, 64usize, 32usize), (17, 128, 90), (128, 33, 65), (5, 100, 128)] {
        let (c, d) = random_pair(m, k, n, &mut rng);
        let _ = c.matmul_with(&d, &mut pack);
        assert_eq!(
            pack.allocations(),
            warm,
            "{m}x{k}x{n}: smaller mismatched shape must reuse capacity"
        );
    }
    // A genuinely larger shape is allowed (and required) to grow.
    let (e, f) = random_pair(160, 160, 160, &mut rng);
    let _ = e.matmul_with(&f, &mut pack);
    assert!(pack.allocations() > warm, "larger shape must grow the workspace");
    let after = pddl_telemetry::snapshot().counter("tensor.pack_allocs").unwrap_or(0);
    assert!(
        after >= before + pack.allocations() as u64,
        "every growth event must be counted on tensor.pack_allocs ({before} -> {after})"
    );
}

#[test]
fn add_row_broadcast_mut_matches_allocating_version() {
    let mut rng = Rng::new(0xB1A5);
    let m = Matrix::rand_normal(9, 17, 1.0, &mut rng);
    let bias = Matrix::rand_normal(1, 17, 1.0, &mut rng);
    let expect = m.add_row_broadcast(&bias);
    let mut inplace = m.clone();
    inplace.add_row_broadcast_mut(&bias);
    assert_eq!(bits(&expect), bits(&inplace));
}

#[test]
fn vecmat_acc_matches_row_vector_matmul() {
    let mut rng = Rng::new(0x7EC);
    let w = Matrix::rand_normal(37, 19, 1.0, &mut rng);
    let v: Vec<f32> = (0..37).map(|_| rng.normal()).collect();
    let mut out = vec![0.5f32; 19];
    let mut expect = out.clone();
    let prod = Matrix::row_vector(&v).matmul_reference(&w);
    for (e, &p) in expect.iter_mut().zip(prod.as_slice()) {
        *e += p;
    }
    pddl_tensor::vecmat_acc(&v, &w, &mut out);
    for (got, want) in out.iter().zip(&expect) {
        assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0));
    }
}

#[test]
fn degenerate_dims_are_safe() {
    let a = Matrix::zeros(0, 5);
    let b = Matrix::zeros(5, 4);
    assert_eq!(a.matmul(&b).shape(), (0, 4));
    let a = Matrix::zeros(3, 0);
    let b = Matrix::zeros(0, 4);
    assert_eq!(a.matmul(&b), Matrix::zeros(3, 4));
    let a = Matrix::zeros(3, 5);
    let b = Matrix::zeros(5, 0);
    assert_eq!(a.matmul(&b).shape(), (3, 0));
}
