//! Live cluster state and the feature vector consumed by the Inference
//! Engine (§III-C: number of servers, CPUs, GPUs, RAM, cores, FLOPS).

use crate::equations::{available_flops, available_ram};
use crate::spec::{ServerClass, ServerSpec};
use serde::{Deserialize, Serialize};

/// One server's spec plus its current load.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerStatus {
    pub spec: ServerSpec,
    /// CPU busy fraction in `[0,1]`.
    pub cpu_util: f64,
    /// GPUs currently allocated to other jobs.
    pub gpus_busy: usize,
    /// True when the collector has not heard a heartbeat from this server
    /// recently: the spec and load figures are last-known-good, not live.
    /// Stale servers still count toward capacity (the paper's collector
    /// treats missing heartbeats as stale data, not departure) — consumers
    /// that want to exclude them can filter on this flag.
    #[serde(default)]
    pub stale: bool,
}

impl ServerStatus {
    /// A fully idle server.
    pub fn idle(spec: ServerSpec) -> Self {
        Self { spec, cpu_util: 0.0, gpus_busy: 0, stale: false }
    }

    /// GPUs free for a new job.
    pub fn free_gpus(&self) -> usize {
        self.spec.gpus.saturating_sub(self.gpus_busy)
    }
}

/// Width of [`ClusterState::feature_vector`].
pub const CLUSTER_FEATURE_DIM: usize = 8;

/// Snapshot of the whole training cluster.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    pub servers: Vec<ServerStatus>,
}

impl ClusterState {
    /// A homogeneous idle cluster of `n` servers of one class.
    pub fn homogeneous(class: ServerClass, n: usize) -> Self {
        let servers = (0..n)
            .map(|i| ServerStatus::idle(ServerSpec::preset(class, format!("node-{i}"))))
            .collect();
        Self { servers }
    }

    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Sum of per-server *available* training FLOPS (GPU if present, else
    /// load-adjusted CPU per Eq. (1)–(2)).
    pub fn total_training_flops(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| {
                if s.spec.is_gpu() {
                    s.free_gpus() as f64 * s.spec.gpu_flops
                } else {
                    available_flops(&s.spec, s.cpu_util)
                }
            })
            .sum()
    }

    /// Slowest server's training FLOPS — the straggler bound in
    /// synchronous data-parallel training.
    pub fn min_training_flops(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| {
                if s.spec.is_gpu() {
                    s.free_gpus() as f64 * s.spec.gpu_flops
                } else {
                    available_flops(&s.spec, s.cpu_util)
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Total available RAM across servers (Eq. 2).
    pub fn total_available_ram(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| available_ram(&s.spec, s.cpu_util))
            .sum()
    }

    /// Minimum network bandwidth along the ring (allreduce bottleneck).
    pub fn min_net_bps(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| s.spec.net_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of servers with at least one free GPU.
    pub fn gpu_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.free_gpus() > 0).count()
    }

    /// The cluster-description features of §III-C, O(1)-normalized for
    /// regression: [#servers, log-total-FLOPS, log-min-FLOPS, log-RAM,
    /// total-cores/100, gpu-fraction, log-net-bw, mean-util].
    pub fn feature_vector(&self) -> [f64; CLUSTER_FEATURE_DIM] {
        let n = self.num_servers().max(1) as f64;
        let total_cores: usize = self.servers.iter().map(|s| s.spec.cpu_cores).sum();
        let mean_util: f64 =
            self.servers.iter().map(|s| s.cpu_util).sum::<f64>() / n;
        [
            self.num_servers() as f64,
            (self.total_training_flops().max(1.0)).log10() - 12.0,
            (self.min_training_flops().max(1.0)).log10() - 12.0,
            (self.total_available_ram().max(1.0)).log10() - 11.0,
            total_cores as f64 / 100.0,
            self.gpu_servers() as f64 / n,
            (self.min_net_bps().max(1.0)).log10() - 9.0,
            mean_util,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster_counts() {
        let c = ClusterState::homogeneous(ServerClass::GpuP100, 4);
        assert_eq!(c.num_servers(), 4);
        assert_eq!(c.gpu_servers(), 4);
        assert!((c.total_training_flops() - 4.0 * 9.3e12).abs() < 1e9);
    }

    #[test]
    fn straggler_is_min() {
        let mut c = ClusterState::homogeneous(ServerClass::CpuE5_2630, 2);
        c.servers
            .push(ServerStatus::idle(ServerSpec::preset(ServerClass::CpuE5_2650, "slow")));
        assert_eq!(c.min_training_flops(), 128e9);
    }

    #[test]
    fn busy_gpus_reduce_capacity() {
        let mut c = ClusterState::homogeneous(ServerClass::GpuP100, 2);
        c.servers[0].gpus_busy = 1;
        assert_eq!(c.gpu_servers(), 1);
        assert!((c.total_training_flops() - 9.3e12).abs() < 1e9);
    }

    #[test]
    fn feature_vector_bounded_and_monotone_in_servers() {
        let small = ClusterState::homogeneous(ServerClass::GpuP100, 2).feature_vector();
        let large = ClusterState::homogeneous(ServerClass::GpuP100, 16).feature_vector();
        assert!(large[0] > small[0]);
        assert!(large[1] > small[1]);
        for f in large.iter().chain(small.iter()) {
            assert!(f.is_finite());
            assert!(f.abs() < 100.0, "feature {f} out of scale");
        }
    }

    #[test]
    fn utilization_shrinks_ram() {
        let mut c = ClusterState::homogeneous(ServerClass::CpuE5_2630, 1);
        let idle = c.total_available_ram();
        c.servers[0].cpu_util = 0.75;
        assert!(c.total_available_ram() < idle / 3.0);
    }
}
