//! Partial-load resource transformations — Eq. (1) and Eq. (2) of the paper.
//!
//! A cluster under partial load is modeled per core:
//! `RAM' = RAM / |cores|` (Eq. 1) and
//! `AvailableRAM = Σ_{available cores} RAM'` (Eq. 2),
//! "the same transformation applies to disk throughput and the number of
//! FLOPS" (§III-C).

use crate::spec::ServerSpec;

/// Eq. (1): per-core share of a resource.
pub fn per_core(total: f64, cores: usize) -> f64 {
    assert!(cores > 0, "per_core with zero cores");
    total / cores as f64
}

/// Eq. (2): available amount of a resource when only `available_cores` of
/// `cores` are free.
pub fn available(total: f64, cores: usize, available_cores: usize) -> f64 {
    assert!(available_cores <= cores, "more available cores than installed");
    per_core(total, cores) * available_cores as f64
}

/// Available RAM of a server given its CPU utilization (busy fraction in
/// `[0,1]`); busy cores take their RAM share with them.
pub fn available_ram(spec: &ServerSpec, cpu_util: f64) -> f64 {
    let free_cores = free_cores(spec.cpu_cores, cpu_util);
    available(spec.ram_bytes as f64, spec.cpu_cores, free_cores)
}

/// Available CPU FLOPS under partial load.
pub fn available_flops(spec: &ServerSpec, cpu_util: f64) -> f64 {
    let free_cores = free_cores(spec.cpu_cores, cpu_util);
    available(spec.cpu_flops, spec.cpu_cores, free_cores)
}

/// Available disk throughput under partial load.
pub fn available_disk(spec: &ServerSpec, cpu_util: f64) -> f64 {
    let free_cores = free_cores(spec.cpu_cores, cpu_util);
    available(spec.disk_bps, spec.cpu_cores, free_cores)
}

/// Number of whole cores free at the given utilization (floor — a
/// partially busy core is not schedulable for training).
pub fn free_cores(cores: usize, cpu_util: f64) -> usize {
    assert!((0.0..=1.0).contains(&cpu_util), "utilization out of [0,1]");
    ((cores as f64) * (1.0 - cpu_util)).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ServerClass, ServerSpec};

    #[test]
    fn per_core_divides_evenly() {
        assert_eq!(per_core(128.0, 16), 8.0);
    }

    #[test]
    fn idle_server_has_everything_available() {
        let s = ServerSpec::preset(ServerClass::CpuE5_2630, "x");
        assert_eq!(available_ram(&s, 0.0), s.ram_bytes as f64);
        assert_eq!(available_flops(&s, 0.0), s.cpu_flops);
        assert_eq!(available_disk(&s, 0.0), s.disk_bps);
    }

    #[test]
    fn half_loaded_server_has_half() {
        let s = ServerSpec::preset(ServerClass::CpuE5_2630, "x");
        let ram = available_ram(&s, 0.5);
        assert!((ram - s.ram_bytes as f64 / 2.0).abs() < 1.0);
    }

    #[test]
    fn fully_loaded_server_has_nothing() {
        let s = ServerSpec::preset(ServerClass::CpuE5_2650, "x");
        assert_eq!(available_flops(&s, 1.0), 0.0);
    }

    #[test]
    fn partial_cores_floor() {
        // 8 cores at 30% busy → 5.6 → 5 free cores.
        assert_eq!(free_cores(8, 0.3), 5);
    }

    #[test]
    #[should_panic(expected = "utilization out of")]
    fn rejects_bad_utilization() {
        let _ = free_cores(8, 1.5);
    }
}
