//! Capped, jittered exponential backoff shared by the wire-layer clients
//! (the collector client here and the controller client in `predictddl`).

use pddl_faults::FaultRng;
use std::time::Duration;

/// Retry budget and pacing for one logical request.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (0 behaves as 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Cap on any single backoff sleep.
    pub max_delay: Duration,
    /// Per-attempt deadline applied to connect, reads, and writes.
    pub attempt_timeout: Duration,
    /// Seed of the jitter stream, so test schedules are reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            attempt_timeout: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A fast-paced policy for tests: tight timeouts, millisecond backoff.
    pub fn fast(jitter_seed: u64) -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            attempt_timeout: Duration::from_millis(500),
            jitter_seed,
        }
    }
}

/// The backoff state machine for one logical request.
#[derive(Clone, Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    failures: u32,
    rng: FaultRng,
}

impl Backoff {
    /// A fresh backoff under `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        let rng = FaultRng::new(policy.jitter_seed);
        Self { policy, failures: 0, rng }
    }

    /// Records a failed attempt. Returns the jittered delay to sleep
    /// before the next attempt, or `None` when the budget is exhausted.
    /// Jitter is uniform in `[d/2, d)` around the capped exponential `d`,
    /// decorrelating clients that fail in lockstep.
    pub fn next_delay(&mut self) -> Option<Duration> {
        self.failures += 1;
        if self.failures >= self.policy.max_attempts.max(1) {
            return None;
        }
        let exp = self.failures.saturating_sub(1).min(20);
        let raw = self
            .policy
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.policy.max_delay);
        let nanos = raw.as_nanos().min(u64::MAX as u128) as u64;
        let jittered = nanos / 2 + self.rng.below(nanos / 2 + 1);
        Some(Duration::from_nanos(jittered))
    }

    /// Failed attempts recorded so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }
}

/// Why the server shed a request — the typed `reason` field of an
/// `overloaded` reply. Distinguishing the causes matters operationally:
/// `QueueFull` wants more capacity, `Deadline` wants a laxer deadline or
/// faster handlers, `ConnectionLimit` wants fewer clients per node, and
/// `Draining` is expected during rollout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The bounded request queue was at capacity.
    QueueFull,
    /// The request expired in the queue past its deadline.
    Deadline,
    /// The per-controller connection cap was reached.
    ConnectionLimit,
    /// The server is draining for graceful shutdown.
    Draining,
    /// The reply carried no (or an unrecognized) reason — e.g. a peer
    /// predating the typed field.
    Unknown,
}

impl ShedReason {
    /// Wire name, as carried in the `reason` field of a shed reply.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Deadline => "deadline",
            ShedReason::ConnectionLimit => "connection_limit",
            ShedReason::Draining => "draining",
            ShedReason::Unknown => "unknown",
        }
    }

    /// Parses a wire name; anything unrecognized maps to `Unknown` rather
    /// than erroring — the reason is advisory.
    pub fn parse(s: &str) -> ShedReason {
        match s {
            "queue_full" => ShedReason::QueueFull,
            "deadline" => ShedReason::Deadline,
            "connection_limit" => ShedReason::ConnectionLimit,
            "draining" => ShedReason::Draining,
            _ => ShedReason::Unknown,
        }
    }
}

/// The error payload of a server-side load shed: the bounded serving core
/// replied `{"error":"overloaded","retry_after_ms":...,"reason":...}`
/// instead of doing the work. Classified as transient by [`is_transient`]
/// — the condition clears as soon as the queue drains — and carries the
/// server's advisory pacing hint ([`overload_retry_hint`]) and typed shed
/// reason ([`overload_reason`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// Server-suggested minimum wait before retrying.
    pub retry_after: Duration,
    /// Why the server shed the request.
    pub reason: ShedReason,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "server overloaded ({}); retry after {}ms",
            self.reason.as_str(),
            self.retry_after.as_millis()
        )
    }
}

impl std::error::Error for Overloaded {}

/// Wraps a shed reply as an `io::Error` that [`is_transient`] accepts, so
/// the resilient retry loops treat "overloaded" exactly like any other
/// transient transport failure — back off and try again. Replies without
/// a typed reason use [`ShedReason::Unknown`]; prefer
/// [`overloaded_error_with_reason`] when the reason is known.
pub fn overloaded_error(retry_after_ms: u64) -> std::io::Error {
    overloaded_error_with_reason(retry_after_ms, ShedReason::Unknown)
}

/// [`overloaded_error`] carrying the server's typed shed reason.
pub fn overloaded_error_with_reason(retry_after_ms: u64, reason: ShedReason) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::WouldBlock,
        Overloaded { retry_after: Duration::from_millis(retry_after_ms), reason },
    )
}

/// The server's `retry_after` hint, if `e` is an overload shed produced by
/// [`overloaded_error`]. Retry loops use it as a backoff floor.
pub fn overload_retry_hint(e: &std::io::Error) -> Option<Duration> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<Overloaded>())
        .map(|o| o.retry_after)
}

/// The typed shed reason, if `e` is an overload shed. Load generators and
/// dashboards use this to attribute sheds to their cause instead of
/// lumping them into one count.
pub fn overload_reason(e: &std::io::Error) -> Option<ShedReason> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<Overloaded>())
        .map(|o| o.reason)
}

/// The error payload of a router re-route: the shard a request was routed
/// to died before answering, membership has already absorbed the death
/// (epoch bumped, ring rebuilt), and the client should refresh its route
/// table and retry — the retry lands on the replacement shard. Classified
/// as transient by [`is_transient`]. The request was not executed twice:
/// this reply is only sent in place of an answer, and the dedup cache
/// absorbs replays of answered requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMoved {
    /// Membership epoch after the death was absorbed. A client whose
    /// cached route table already carries this epoch need not refresh.
    pub epoch: u64,
    /// Router-suggested minimum wait before retrying.
    pub retry_after: Duration,
}

impl std::fmt::Display for ShardMoved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard moved (membership epoch {}); retry after {}ms",
            self.epoch,
            self.retry_after.as_millis()
        )
    }
}

impl std::error::Error for ShardMoved {}

/// Wraps a router `shard_moved` reply as an `io::Error` that
/// [`is_transient`] accepts, carrying the post-death membership epoch
/// ([`shard_moved_epoch`]) and pacing hint ([`shard_moved_retry_hint`]).
pub fn shard_moved_error(epoch: u64, retry_after_ms: u64) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::WouldBlock,
        ShardMoved { epoch, retry_after: Duration::from_millis(retry_after_ms) },
    )
}

/// The membership epoch, if `e` is a `shard_moved` reply produced by
/// [`shard_moved_error`].
pub fn shard_moved_epoch(e: &std::io::Error) -> Option<u64> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<ShardMoved>())
        .map(|s| s.epoch)
}

/// The router's `retry_after` hint, if `e` is a `shard_moved` reply.
/// Retry loops use it as a backoff floor, like [`overload_retry_hint`].
pub fn shard_moved_retry_hint(e: &std::io::Error) -> Option<Duration> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<ShardMoved>())
        .map(|s| s.retry_after)
}

/// Transport-level failures worth a retry — as opposed to semantic
/// rejections (`InvalidData`, `InvalidInput`) that the server would repeat
/// verbatim. Includes `WouldBlock`, which covers both client-side read
/// timeouts and typed server overload sheds ([`overloaded_error`]).
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::NotConnected
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_max_attempts() {
        let mut b = Backoff::new(RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_none());
    }

    #[test]
    fn delays_grow_and_cap() {
        let policy = RetryPolicy {
            max_attempts: 32,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let mut b = Backoff::new(policy);
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 31);
        for (i, d) in delays.iter().enumerate() {
            let raw = policy.base_delay.saturating_mul(1u32 << i.min(20)).min(policy.max_delay);
            assert!(*d >= raw / 2, "delay {i} below jitter floor: {d:?}");
            assert!(*d <= raw, "delay {i} above cap: {d:?}");
        }
        // The tail is capped.
        assert!(delays[30] <= policy.max_delay);
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let policy = RetryPolicy { max_attempts: 10, jitter_seed: 42, ..RetryPolicy::default() };
        let mut a = Backoff::new(policy);
        let mut b = Backoff::new(policy);
        for _ in 0..9 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn zero_attempts_behaves_as_one() {
        let mut b = Backoff::new(RetryPolicy { max_attempts: 0, ..RetryPolicy::default() });
        assert!(b.next_delay().is_none());
    }

    #[test]
    fn overload_errors_are_transient_and_carry_the_hint() {
        let e = overloaded_error(40);
        assert!(is_transient(&e), "overload must enter the retry path");
        assert_eq!(overload_retry_hint(&e), Some(Duration::from_millis(40)));
        assert_eq!(overload_reason(&e), Some(ShedReason::Unknown));
        assert!(e.to_string().contains("overloaded"), "{e}");
        // Unrelated errors of the same kind carry no hint or reason.
        let plain = std::io::Error::new(std::io::ErrorKind::WouldBlock, "timed out");
        assert_eq!(overload_retry_hint(&plain), None);
        assert_eq!(overload_reason(&plain), None);
    }

    #[test]
    fn shard_moved_errors_are_transient_and_carry_the_epoch() {
        let e = shard_moved_error(12, 15);
        assert!(is_transient(&e), "shard_moved must enter the retry path");
        assert_eq!(shard_moved_epoch(&e), Some(12));
        assert_eq!(shard_moved_retry_hint(&e), Some(Duration::from_millis(15)));
        // The two typed payloads do not cross-classify.
        assert_eq!(overload_retry_hint(&e), None);
        assert_eq!(shard_moved_epoch(&overloaded_error(5)), None);
        assert!(e.to_string().contains("epoch 12"), "{e}");
    }

    #[test]
    fn shed_reasons_round_trip_and_tolerate_garbage() {
        for r in [
            ShedReason::QueueFull,
            ShedReason::Deadline,
            ShedReason::ConnectionLimit,
            ShedReason::Draining,
            ShedReason::Unknown,
        ] {
            assert_eq!(ShedReason::parse(r.as_str()), r);
        }
        assert_eq!(ShedReason::parse("???"), ShedReason::Unknown);
        let e = overloaded_error_with_reason(10, ShedReason::QueueFull);
        assert_eq!(overload_reason(&e), Some(ShedReason::QueueFull));
        assert!(e.to_string().contains("queue_full"), "{e}");
    }
}
