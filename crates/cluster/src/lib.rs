//! Cluster resource modeling for PredictDDL.
//!
//! Covers three pieces of the paper:
//! * **§IV-A1 testbed specs** — the three CloudLab server classes
//!   ([`spec::ServerSpec`] presets) used in every experiment;
//! * **§III-C Inference Engine inputs** — the cluster-description feature
//!   vector (number of servers, CPUs, GPUs, RAM, cores, FLOPS) and the
//!   partial-load transformations of Eq. (1)–(2) ([`equations`]);
//! * **§III-F Cluster Resource Collector** — a real client/server inventory
//!   service over TCP with one accept thread and a worker pool
//!   ([`collector`]).

pub mod collector;
pub mod equations;
pub mod protocol;
pub mod retry;
pub mod spec;
pub mod state;

pub use collector::{CollectorClient, CollectorServer, DEFAULT_STALE_AFTER};
pub use equations::{available_flops, available_ram, per_core};
pub use protocol::{LinePoll, LineReader, WireError, MAX_FRAME_BYTES};
pub use retry::{
    is_transient, overload_reason, overload_retry_hint, overloaded_error,
    overloaded_error_with_reason, shard_moved_epoch, shard_moved_error,
    shard_moved_retry_hint, Backoff, Overloaded, RetryPolicy, ShardMoved, ShedReason,
};
pub use spec::{ServerClass, ServerSpec};
pub use state::{ClusterState, ServerStatus, CLUSTER_FEATURE_DIM};
