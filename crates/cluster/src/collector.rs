//! The Cluster Resource Collector (§III-F).
//!
//! "This component leverages a client-server architecture ... The Cluster
//! Resource Collector maintains one thread open for new connections to the
//! cluster and launches a pool of threads to collect details about available
//! compute and memory resources."
//!
//! [`CollectorServer`] binds a TCP listener, runs one accept thread, and
//! hands each accepted connection to a collector thread from a dynamically
//! grown pool (one per joined server — heartbeat connections are long-lived,
//! so a fixed-size pool would starve once the cluster outgrew it; the
//! paper's pool likewise scales with the servers being collected from).
//! Collector threads parse JSON-line messages and update a shared inventory
//! behind a `parking_lot::RwLock`. [`CollectorServer::snapshot`] produces
//! the [`ClusterState`] consumed by the Inference Engine.
//!
//! ## Degradation & chaos
//!
//! A malformed or over-long frame earns the peer an error reply (and, for
//! over-long frames, a closed connection) — never a dead collector thread.
//! Servers whose heartbeats lapse beyond the stale window keep serving
//! last-known-good specs from [`CollectorServer::snapshot`], flagged
//! [`ServerStatus::stale`], instead of erroring. When `PDDL_FAULT_PLAN` is
//! set (see `pddl-faults`), every accepted connection is wrapped in
//! deterministic fault injectors so integration tests and the CLI can run
//! identical chaos schedules.

use crate::protocol::{read_msg, read_msg_bounded, write_msg, ClientMsg, ServerMsg, WireError, MAX_FRAME_BYTES};
use crate::retry::{is_transient, Backoff, RetryPolicy};
use crate::spec::ServerSpec;
use crate::state::{ClusterState, ServerStatus};
use parking_lot::RwLock;
use pddl_faults::{Direction, FaultPlan, FaultyRead, FaultyWrite};
use pddl_telemetry::trace::{flight_recorder, stages};
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level, SpanStatus, TraceContext};
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One registered server plus collector-side bookkeeping that must not
/// travel over the wire (liveness is an `Instant`, not data).
struct Entry {
    status: ServerStatus,
    last_seen: Instant,
}

#[derive(Default)]
struct Inventory {
    servers: HashMap<String, Entry>,
}

/// Collector metric handles, resolved once (heartbeat-path updates stay
/// lock-free).
struct Metrics {
    heartbeats: &'static Counter,
    registrations: &'static Counter,
    leaves: &'static Counter,
    rejected_msgs: &'static Counter,
    oversize_frames: &'static Counter,
    disconnects: &'static Counter,
    servers_joined: &'static Gauge,
    stale_servers: &'static Gauge,
    lock_wait: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        heartbeats: pddl_telemetry::counter("collector.heartbeats"),
        registrations: pddl_telemetry::counter("collector.registrations"),
        leaves: pddl_telemetry::counter("collector.leaves"),
        rejected_msgs: pddl_telemetry::counter("collector.rejected_msgs"),
        oversize_frames: pddl_telemetry::counter("collector.oversize_frames"),
        disconnects: pddl_telemetry::counter("collector.disconnects"),
        servers_joined: pddl_telemetry::gauge("collector.servers_joined"),
        stale_servers: pddl_telemetry::gauge("collector.stale_servers"),
        lock_wait: pddl_telemetry::histogram("collector.inventory_lock_wait"),
    })
}

/// Acquires the inventory write lock, recording the wait in the
/// `collector.inventory_lock_wait` histogram (nanoseconds).
fn write_inventory<'a>(
    inv: &'a RwLock<Inventory>,
    m: &Metrics,
) -> parking_lot::RwLockWriteGuard<'a, Inventory> {
    let t0 = Instant::now();
    let guard = inv.write();
    m.lock_wait.record_duration(t0.elapsed());
    guard
}

/// Heartbeat-lapse window after which a server's snapshot entry is flagged
/// stale (last-known-good data, not live).
pub const DEFAULT_STALE_AFTER: Duration = Duration::from_secs(30);

/// The collector service handle. Dropping it shuts the service down.
pub struct CollectorServer {
    addr: SocketAddr,
    inventory: Arc<RwLock<Inventory>>,
    shutdown: Arc<AtomicBool>,
    stale_after_ms: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CollectorServer {
    /// Binds to `addr` (use port 0 for an ephemeral port). `initial_pool`
    /// pre-sizes the handler-thread bookkeeping; the pool grows with the
    /// number of connected servers, since heartbeat connections are
    /// long-lived.
    ///
    /// If `PDDL_FAULT_PLAN` is set, every accepted connection is wrapped in
    /// that plan's deterministic fault injectors; an unparseable plan is an
    /// `InvalidInput` error (misconfigured chaos must not silently become
    /// no chaos).
    pub fn bind(addr: &str, initial_pool: usize) -> std::io::Result<Self> {
        let fault_plan = FaultPlan::from_env()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inventory = Arc::new(RwLock::new(Inventory::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let stale_after_ms =
            Arc::new(AtomicU64::new(DEFAULT_STALE_AFTER.as_millis() as u64));
        let _ = initial_pool; // sizing hint only; the pool grows on demand
        if let Some(plan) = &fault_plan {
            tlog!(Level::Warn, "collector", "fault injection active", plan = plan.to_spec());
        }

        // Accept thread: one detached collector thread per connection.
        // Handlers exit when their client disconnects (clean EOF or error);
        // connections still open when the server drops finish with their
        // client, which matches the collector's process-lifetime role.
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let inv = Arc::clone(&inventory);
            std::thread::spawn(move || {
                let mut next_conn: u64 = 0;
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            let conn = next_conn;
                            next_conn += 1;
                            let inv = Arc::clone(&inv);
                            std::thread::spawn(move || {
                                let halves = split_stream(stream, fault_plan.as_ref(), conn);
                                if let Ok((reader, writer)) = halves {
                                    if handle_connection(reader, writer, &inv).is_err() {
                                        metrics().disconnects.inc();
                                    }
                                }
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(Self {
            addr: local,
            inventory,
            shutdown,
            stale_after_ms,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (for clients connecting to an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Overrides the heartbeat-lapse window after which snapshot entries
    /// are flagged stale (default [`DEFAULT_STALE_AFTER`]).
    pub fn set_stale_after(&self, window: Duration) {
        self.stale_after_ms
            .store(window.as_millis().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Number of currently registered servers (live or stale).
    pub fn num_registered(&self) -> usize {
        self.inventory.read().servers.len()
    }

    /// Current cluster snapshot, hostname-sorted for determinism. Servers
    /// whose heartbeats have lapsed beyond the stale window are served with
    /// last-known-good data and [`ServerStatus::stale`] set — degraded, not
    /// dropped. The live stale count is exported as
    /// `collector.stale_servers`.
    pub fn snapshot(&self) -> ClusterState {
        let stale_after =
            Duration::from_millis(self.stale_after_ms.load(Ordering::Relaxed));
        let now = Instant::now();
        let inv = self.inventory.read();
        let mut stale = 0i64;
        let mut servers: Vec<ServerStatus> = inv
            .servers
            .values()
            .map(|e| {
                let mut status = e.status.clone();
                status.stale = now.saturating_duration_since(e.last_seen) > stale_after;
                if status.stale {
                    stale += 1;
                }
                status
            })
            .collect();
        drop(inv);
        metrics().stale_servers.set(stale);
        servers.sort_by(|a, b| a.spec.hostname.cmp(&b.spec.hostname));
        ClusterState { servers }
    }
}

impl Drop for CollectorServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Splits a stream into boxed read/write halves, wearing the fault plan's
/// injectors when one is active.
fn split_stream(
    stream: TcpStream,
    plan: Option<&FaultPlan>,
    conn: u64,
) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    let writer = stream.try_clone()?;
    Ok(match plan {
        Some(p) => (
            Box::new(FaultyRead::new(stream, p.schedule(conn, Direction::Read))),
            Box::new(FaultyWrite::new(writer, p.schedule(conn, Direction::Write))),
        ),
        None => (Box::new(stream), Box::new(writer)),
    })
}

fn handle_connection(
    reader: Box<dyn Read + Send>,
    mut writer: Box<dyn Write + Send>,
    inv: &RwLock<Inventory>,
) -> std::io::Result<()> {
    let m = metrics();
    let mut reader = BufReader::new(reader);
    loop {
        let msg = match read_msg_bounded::<ClientMsg>(&mut reader, MAX_FRAME_BYTES) {
            Ok(Some(msg)) => msg,
            Ok(None) => break, // clean EOF; keep the entry (stale, not gone)
            Err(WireError::Malformed { detail }) => {
                // The stream is still line-synchronized: reply and go on.
                m.rejected_msgs.inc();
                write_msg(&mut writer, &ServerMsg::Error { reason: format!("malformed frame: {detail}") })?;
                continue;
            }
            Err(e @ WireError::FrameTooLong { .. }) => {
                // Line sync is lost; reply if possible and drop the peer.
                m.oversize_frames.inc();
                let _ = write_msg(&mut writer, &ServerMsg::Error { reason: e.to_string() });
                break;
            }
            Err(WireError::Io(e)) => return Err(e),
        };
        match msg {
            ClientMsg::Register { spec } => {
                let hostname = spec.hostname.clone();
                let mut guard = write_inventory(inv, m);
                guard.servers.insert(
                    spec.hostname.clone(),
                    Entry { status: ServerStatus::idle(spec), last_seen: Instant::now() },
                );
                let joined = guard.servers.len();
                drop(guard);
                m.registrations.inc();
                m.servers_joined.set(joined as i64);
                tlog!(Level::Info, "collector", "server joined", hostname = hostname, joined = joined);
                write_msg(&mut writer, &ServerMsg::Ack)?;
            }
            ClientMsg::Heartbeat { hostname, cpu_util, gpus_busy } => {
                let mut guard = write_inventory(inv, m);
                match guard.servers.get_mut(&hostname) {
                    Some(entry) if (0.0..=1.0).contains(&cpu_util) => {
                        entry.status.cpu_util = cpu_util;
                        entry.status.gpus_busy = gpus_busy.min(entry.status.spec.gpus);
                        entry.last_seen = Instant::now();
                        drop(guard);
                        m.heartbeats.inc();
                        tlog!(
                            Level::Trace,
                            "collector.heartbeat",
                            "heartbeat",
                            hostname = hostname,
                            cpu_util = cpu_util,
                        );
                        write_msg(&mut writer, &ServerMsg::Ack)?;
                    }
                    Some(_) => {
                        drop(guard);
                        m.rejected_msgs.inc();
                        write_msg(
                            &mut writer,
                            &ServerMsg::Error { reason: "utilization out of [0,1]".into() },
                        )?;
                    }
                    None => {
                        drop(guard);
                        m.rejected_msgs.inc();
                        write_msg(
                            &mut writer,
                            &ServerMsg::Error { reason: format!("unknown host {hostname}") },
                        )?;
                    }
                }
            }
            ClientMsg::Leave { hostname } => {
                let mut guard = write_inventory(inv, m);
                guard.servers.remove(&hostname);
                let joined = guard.servers.len();
                drop(guard);
                m.leaves.inc();
                m.servers_joined.set(joined as i64);
                tlog!(Level::Info, "collector", "server left", hostname = hostname, joined = joined);
                write_msg(&mut writer, &ServerMsg::Ack)?;
                break;
            }
        }
    }
    // Abrupt disconnect without Leave: keep the entry (the paper's
    // collector treats missing heartbeats as stale data, not departure).
    Ok(())
}

/// Client-side metric handles.
struct ClientMetrics {
    retries: &'static Counter,
    reconnects: &'static Counter,
}

fn client_metrics() -> &'static ClientMetrics {
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ClientMetrics {
        retries: pddl_telemetry::counter("collector_client.retries"),
        reconnects: pddl_telemetry::counter("collector_client.reconnects"),
    })
}

/// Client half: runs on each cluster node and reports to the collector.
pub struct CollectorClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    spec: ServerSpec,
    addr: SocketAddr,
    retry: Option<RetryPolicy>,
    exchanges: u64,
}

impl CollectorClient {
    /// Connects and registers the given spec. No retries: a transport
    /// failure surfaces immediately (see [`Self::register_with_retry`]).
    pub fn register(addr: SocketAddr, spec: ServerSpec) -> std::io::Result<Self> {
        let mut client = Self::connect(addr, spec, None)?;
        client.send_register()?;
        Ok(client)
    }

    /// Connects and registers under `policy`: capped jittered exponential
    /// backoff across attempts, with the policy's per-attempt deadline on
    /// connect, reads, and writes. Subsequent [`Self::heartbeat`]s
    /// reconnect and re-register under the same policy when the transport
    /// fails mid-stream.
    pub fn register_with_retry(
        addr: SocketAddr,
        spec: ServerSpec,
        policy: RetryPolicy,
    ) -> std::io::Result<Self> {
        let mut backoff = Backoff::new(policy);
        loop {
            let attempt = Self::connect(addr, spec.clone(), Some(policy))
                .and_then(|mut c| c.send_register().map(|()| c));
            match attempt {
                Ok(client) => return Ok(client),
                Err(e) if is_transient(&e) => match backoff.next_delay() {
                    Some(delay) => {
                        client_metrics().retries.inc();
                        std::thread::sleep(delay);
                    }
                    None => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }

    fn connect(
        addr: SocketAddr,
        spec: ServerSpec,
        retry: Option<RetryPolicy>,
    ) -> std::io::Result<Self> {
        let stream = match retry {
            Some(policy) => {
                let s = TcpStream::connect_timeout(&addr, policy.attempt_timeout)?;
                s.set_read_timeout(Some(policy.attempt_timeout))?;
                s.set_write_timeout(Some(policy.attempt_timeout))?;
                s
            }
            None => TcpStream::connect(addr)?,
        };
        let writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        Ok(Self { writer, reader, spec, addr, retry, exchanges: 0 })
    }

    /// Records one collector wire exchange as a `collect` span. All of a
    /// node's exchanges share one trace id (derived from the hostname),
    /// so the flight recorder shows a node's register/heartbeat cadence
    /// as a single trace; each exchange is a distinct child span.
    fn record_collect(&mut self, t0: Instant, ok: bool) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.spec.hostname.hash(&mut h);
        let ctx = TraceContext::root(h.finish());
        self.exchanges += 1;
        let rec = flight_recorder();
        let el = t0.elapsed();
        let start = rec.now_us().saturating_sub(el.as_micros() as u64);
        let status = if ok { SpanStatus::Ok } else { SpanStatus::Error };
        rec.record_span(ctx.child(self.exchanges), stages::COLLECT, start, el, status);
    }

    fn send_register(&mut self) -> std::io::Result<()> {
        let t0 = Instant::now();
        let out = write_msg(&mut self.writer, &ClientMsg::Register { spec: self.spec.clone() })
            .and_then(|()| self.expect_ack());
        self.record_collect(t0, out.is_ok());
        out
    }

    /// Sends a load report. Under a retry policy, transport failures
    /// (resets, timeouts, EOF) trigger reconnect + re-register + resend
    /// with backoff; heartbeats are idempotent (last-write-wins), so a
    /// retried report cannot corrupt the inventory. Semantic rejections
    /// (the collector's `Error` reply) are returned without retry.
    pub fn heartbeat(&mut self, cpu_util: f64, gpus_busy: usize) -> std::io::Result<()> {
        let mut backoff = self.retry.map(Backoff::new);
        loop {
            match self.try_heartbeat(cpu_util, gpus_busy) {
                Ok(()) => return Ok(()),
                Err(e) if is_transient(&e) => {
                    let delay = match backoff.as_mut().and_then(Backoff::next_delay) {
                        Some(d) => d,
                        None => return Err(e),
                    };
                    client_metrics().retries.inc();
                    std::thread::sleep(delay);
                    if self.reconnect().is_ok() {
                        client_metrics().reconnects.inc();
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_heartbeat(&mut self, cpu_util: f64, gpus_busy: usize) -> std::io::Result<()> {
        let t0 = Instant::now();
        let out = write_msg(
            &mut self.writer,
            &ClientMsg::Heartbeat {
                hostname: self.spec.hostname.clone(),
                cpu_util,
                gpus_busy,
            },
        )
        .and_then(|()| self.expect_ack());
        self.record_collect(t0, out.is_ok());
        out
    }

    /// Re-dials the collector and re-registers on the fresh connection.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let fresh = Self::connect(self.addr, self.spec.clone(), self.retry)?;
        self.writer = fresh.writer;
        self.reader = fresh.reader;
        self.send_register()
    }

    /// Gracefully leaves the cluster.
    pub fn leave(mut self) -> std::io::Result<()> {
        let t0 = Instant::now();
        let out = write_msg(
            &mut self.writer,
            &ClientMsg::Leave { hostname: self.spec.hostname.clone() },
        )
        .and_then(|()| self.expect_ack());
        self.record_collect(t0, out.is_ok());
        out
    }

    fn expect_ack(&mut self) -> std::io::Result<()> {
        match read_msg::<ServerMsg>(&mut self.reader)? {
            Some(ServerMsg::Ack) => Ok(()),
            Some(ServerMsg::Error { reason }) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                reason,
            )),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "collector closed connection",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ServerClass;

    fn spec(name: &str, class: ServerClass) -> ServerSpec {
        ServerSpec::preset(class, name)
    }

    #[test]
    fn register_and_snapshot() {
        let server = CollectorServer::bind("127.0.0.1:0", 2).unwrap();
        let c1 = CollectorClient::register(server.addr(), spec("a", ServerClass::GpuP100)).unwrap();
        let c2 = CollectorClient::register(server.addr(), spec("b", ServerClass::CpuE5_2630)).unwrap();
        let snap = server.snapshot();
        assert_eq!(snap.num_servers(), 2);
        assert_eq!(snap.servers[0].spec.hostname, "a");
        assert!(snap.servers.iter().all(|s| !s.stale));
        drop((c1, c2));
    }

    #[test]
    fn heartbeat_updates_utilization() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let mut c = CollectorClient::register(server.addr(), spec("n", ServerClass::CpuE5_2650)).unwrap();
        c.heartbeat(0.4, 0).unwrap();
        let snap = server.snapshot();
        assert!((snap.servers[0].cpu_util - 0.4).abs() < 1e-9);
    }

    #[test]
    fn leave_removes_server() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let c = CollectorClient::register(server.addr(), spec("n", ServerClass::CpuE5_2650)).unwrap();
        assert_eq!(server.num_registered(), 1);
        c.leave().unwrap();
        // The worker processes Leave synchronously before acking, so the
        // inventory is already updated.
        assert_eq!(server.num_registered(), 0);
    }

    #[test]
    fn invalid_heartbeat_rejected() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let mut c = CollectorClient::register(server.addr(), spec("n", ServerClass::GpuP100)).unwrap();
        let err = c.heartbeat(2.0, 0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn abrupt_disconnect_keeps_entry() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        {
            let _c = CollectorClient::register(server.addr(), spec("n", ServerClass::GpuP100)).unwrap();
            // dropped without leave()
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(server.num_registered(), 1);
    }

    #[test]
    fn lapsed_heartbeats_flag_stale_but_keep_serving() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        server.set_stale_after(Duration::from_millis(30));
        let mut c = CollectorClient::register(server.addr(), spec("n", ServerClass::GpuP100)).unwrap();
        c.heartbeat(0.2, 1).unwrap();
        assert!(!server.snapshot().servers[0].stale, "fresh heartbeat flagged stale");
        std::thread::sleep(Duration::from_millis(80));
        let snap = server.snapshot();
        // Degraded, not dropped: last-known-good data with the flag set.
        assert_eq!(snap.num_servers(), 1);
        assert!(snap.servers[0].stale);
        assert!((snap.servers[0].cpu_util - 0.2).abs() < 1e-9);
        // A fresh heartbeat revives the entry.
        c.heartbeat(0.3, 0).unwrap();
        assert!(!server.snapshot().servers[0].stale);
    }

    #[test]
    fn malformed_frame_gets_error_reply_and_connection_survives() {
        use std::io::{BufRead, Write};
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = std::io::BufReader::new(stream);
        w.write_all(b"completely bogus\n").unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("error"), "{line}");
        // Same connection still works for a real registration.
        write_msg(&mut w, &ClientMsg::Register { spec: spec("z", ServerClass::GpuP100) }).unwrap();
        let mut ack = String::new();
        r.read_line(&mut ack).unwrap();
        assert!(ack.contains("ack"), "{ack}");
        assert_eq!(server.num_registered(), 1);
    }

    #[test]
    fn oversize_frame_closes_connection_with_error() {
        use std::io::{BufRead, Write};
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = std::io::BufReader::new(stream);
        let huge = vec![b'x'; MAX_FRAME_BYTES + 4096];
        // The collector may reset mid-write once the bound trips; either
        // way the connection must end with at most one error reply.
        let _ = w.write_all(&huge);
        let _ = w.write_all(b"\n");
        let _ = w.flush();
        let mut line = String::new();
        let n = r.read_line(&mut line).unwrap_or(0);
        assert!(n == 0 || line.contains("error"), "{line}");
        assert_eq!(server.num_registered(), 0);
    }

    #[test]
    fn register_with_retry_waits_out_a_late_collector() {
        // Reserve an ephemeral port, free it, and bring the collector up on
        // it only after a delay: early attempts see ConnectionRefused and
        // must back off rather than fail.
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let server_thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            CollectorServer::bind(&addr.to_string(), 1).unwrap()
        });
        let c = CollectorClient::register_with_retry(
            addr,
            spec("late", ServerClass::GpuP100),
            RetryPolicy::fast(1),
        );
        let server = server_thread.join().unwrap();
        c.expect("registration should retry until the collector is up");
        assert_eq!(server.num_registered(), 1);
    }

    /// A TCP proxy that kills its first connection after `kill_after`
    /// newline-terminated server replies, then forwards all later
    /// connections transparently — a deterministic mid-stream death for
    /// reconnect tests.
    fn flaky_proxy(upstream: SocketAddr, kill_after: usize) -> SocketAddr {
        use std::net::Shutdown;
        fn pump(mut from: TcpStream, mut to: TcpStream, mut newline_budget: usize) {
            let mut buf = [0u8; 1024];
            loop {
                let n = match std::io::Read::read(&mut from, &mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                if std::io::Write::write_all(&mut to, &buf[..n]).is_err() {
                    break;
                }
                for &b in &buf[..n] {
                    if b == b'\n' {
                        newline_budget = newline_budget.saturating_sub(1);
                        if newline_budget == 0 {
                            let _ = to.shutdown(Shutdown::Both);
                            let _ = from.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                }
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut first = true;
            for conn in listener.incoming() {
                let Ok(client) = conn else { break };
                let Ok(server) = TcpStream::connect(upstream) else { break };
                let budget = if first { kill_after } else { usize::MAX };
                first = false;
                let (c2, s2) = (client.try_clone().unwrap(), server.try_clone().unwrap());
                std::thread::spawn(move || pump(c2, server, usize::MAX));
                std::thread::spawn(move || pump(s2, client, budget));
            }
        });
        addr
    }

    #[test]
    fn heartbeat_reconnects_after_midstream_disconnect() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        // Kill the first proxied connection after two server replies: the
        // register ack and the first heartbeat ack.
        let proxy = flaky_proxy(server.addr(), 2);
        let mut c = CollectorClient::register_with_retry(
            proxy,
            spec("n", ServerClass::GpuP100),
            RetryPolicy::fast(2),
        )
        .unwrap();
        c.heartbeat(0.1, 0).unwrap();
        // The connection is now dead; this heartbeat must reconnect,
        // re-register, and land the report on a fresh connection.
        c.heartbeat(0.5, 0).unwrap();
        let snap = server.snapshot();
        assert_eq!(snap.num_servers(), 1);
        assert!((snap.servers[0].cpu_util - 0.5).abs() < 1e-9);
    }

    #[test]
    fn many_concurrent_clients() {
        let server = CollectorServer::bind("127.0.0.1:0", 4).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..12)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = CollectorClient::register(
                        addr,
                        ServerSpec::preset(ServerClass::CpuE5_2630, format!("node-{i}")),
                    )
                    .unwrap();
                    c.heartbeat(0.1, 0).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.num_registered(), 12);
    }
}
