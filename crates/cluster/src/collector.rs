//! The Cluster Resource Collector (§III-F).
//!
//! "This component leverages a client-server architecture ... The Cluster
//! Resource Collector maintains one thread open for new connections to the
//! cluster and launches a pool of threads to collect details about available
//! compute and memory resources."
//!
//! [`CollectorServer`] binds a TCP listener, runs one accept thread, and
//! hands each accepted connection to a collector thread from a dynamically
//! grown pool (one per joined server — heartbeat connections are long-lived,
//! so a fixed-size pool would starve once the cluster outgrew it; the
//! paper's pool likewise scales with the servers being collected from).
//! Collector threads parse JSON-line messages and update a shared inventory
//! behind a `parking_lot::RwLock`. [`CollectorServer::snapshot`] produces
//! the [`ClusterState`] consumed by the Inference Engine.

use crate::protocol::{read_msg, write_msg, ClientMsg, ServerMsg};
use crate::spec::ServerSpec;
use crate::state::{ClusterState, ServerStatus};
use parking_lot::RwLock;
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

#[derive(Default)]
struct Inventory {
    servers: HashMap<String, ServerStatus>,
}

/// Collector metric handles, resolved once (heartbeat-path updates stay
/// lock-free).
struct Metrics {
    heartbeats: &'static Counter,
    registrations: &'static Counter,
    leaves: &'static Counter,
    rejected_msgs: &'static Counter,
    servers_joined: &'static Gauge,
    lock_wait: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        heartbeats: pddl_telemetry::counter("collector.heartbeats"),
        registrations: pddl_telemetry::counter("collector.registrations"),
        leaves: pddl_telemetry::counter("collector.leaves"),
        rejected_msgs: pddl_telemetry::counter("collector.rejected_msgs"),
        servers_joined: pddl_telemetry::gauge("collector.servers_joined"),
        lock_wait: pddl_telemetry::histogram("collector.inventory_lock_wait"),
    })
}

/// Acquires the inventory write lock, recording the wait in the
/// `collector.inventory_lock_wait` histogram (nanoseconds).
fn write_inventory<'a>(
    inv: &'a RwLock<Inventory>,
    m: &Metrics,
) -> parking_lot::RwLockWriteGuard<'a, Inventory> {
    let t0 = Instant::now();
    let guard = inv.write();
    m.lock_wait.record_duration(t0.elapsed());
    guard
}

/// The collector service handle. Dropping it shuts the service down.
pub struct CollectorServer {
    addr: SocketAddr,
    inventory: Arc<RwLock<Inventory>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CollectorServer {
    /// Binds to `addr` (use port 0 for an ephemeral port). `initial_pool`
    /// pre-sizes the handler-thread bookkeeping; the pool grows with the
    /// number of connected servers, since heartbeat connections are
    /// long-lived.
    pub fn bind(addr: &str, initial_pool: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inventory = Arc::new(RwLock::new(Inventory::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let _ = initial_pool; // sizing hint only; the pool grows on demand

        // Accept thread: one detached collector thread per connection.
        // Handlers exit when their client disconnects (clean EOF or error);
        // connections still open when the server drops finish with their
        // client, which matches the collector's process-lifetime role.
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let inv = Arc::clone(&inventory);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            let inv = Arc::clone(&inv);
                            std::thread::spawn(move || {
                                let _ = handle_connection(stream, &inv);
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(Self {
            addr: local,
            inventory,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (for clients connecting to an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently registered servers.
    pub fn num_registered(&self) -> usize {
        self.inventory.read().servers.len()
    }

    /// Current cluster snapshot, hostname-sorted for determinism.
    pub fn snapshot(&self) -> ClusterState {
        let inv = self.inventory.read();
        let mut servers: Vec<ServerStatus> = inv.servers.values().cloned().collect();
        servers.sort_by(|a, b| a.spec.hostname.cmp(&b.spec.hostname));
        ClusterState { servers }
    }
}

impl Drop for CollectorServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_connection(stream: TcpStream, inv: &RwLock<Inventory>) -> std::io::Result<()> {
    let m = metrics();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut registered: Option<String> = None;
    while let Some(msg) = read_msg::<ClientMsg>(&mut reader)? {
        match msg {
            ClientMsg::Register { spec } => {
                registered = Some(spec.hostname.clone());
                let hostname = spec.hostname.clone();
                let mut guard = write_inventory(inv, m);
                guard.servers.insert(spec.hostname.clone(), ServerStatus::idle(spec));
                let joined = guard.servers.len();
                drop(guard);
                m.registrations.inc();
                m.servers_joined.set(joined as i64);
                tlog!(Level::Info, "collector", "server joined", hostname = hostname, joined = joined);
                write_msg(&mut writer, &ServerMsg::Ack)?;
            }
            ClientMsg::Heartbeat { hostname, cpu_util, gpus_busy } => {
                let mut guard = write_inventory(inv, m);
                match guard.servers.get_mut(&hostname) {
                    Some(status) if (0.0..=1.0).contains(&cpu_util) => {
                        status.cpu_util = cpu_util;
                        status.gpus_busy = gpus_busy.min(status.spec.gpus);
                        drop(guard);
                        m.heartbeats.inc();
                        tlog!(
                            Level::Trace,
                            "collector.heartbeat",
                            "heartbeat",
                            hostname = hostname,
                            cpu_util = cpu_util,
                        );
                        write_msg(&mut writer, &ServerMsg::Ack)?;
                    }
                    Some(_) => {
                        drop(guard);
                        m.rejected_msgs.inc();
                        write_msg(
                            &mut writer,
                            &ServerMsg::Error { reason: "utilization out of [0,1]".into() },
                        )?;
                    }
                    None => {
                        drop(guard);
                        m.rejected_msgs.inc();
                        write_msg(
                            &mut writer,
                            &ServerMsg::Error { reason: format!("unknown host {hostname}") },
                        )?;
                    }
                }
            }
            ClientMsg::Leave { hostname } => {
                let mut guard = write_inventory(inv, m);
                guard.servers.remove(&hostname);
                let joined = guard.servers.len();
                drop(guard);
                m.leaves.inc();
                m.servers_joined.set(joined as i64);
                tlog!(Level::Info, "collector", "server left", hostname = hostname, joined = joined);
                write_msg(&mut writer, &ServerMsg::Ack)?;
                break;
            }
        }
    }
    // Abrupt disconnect without Leave: keep the entry (the paper's
    // collector treats missing heartbeats as stale data, not departure).
    let _ = registered;
    Ok(())
}

/// Client half: runs on each cluster node and reports to the collector.
pub struct CollectorClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    hostname: String,
}

impl CollectorClient {
    /// Connects and registers the given spec.
    pub fn register(addr: SocketAddr, spec: ServerSpec) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        let hostname = spec.hostname.clone();
        let mut client = Self { writer, reader, hostname };
        write_msg(&mut client.writer, &ClientMsg::Register { spec })?;
        client.expect_ack()?;
        Ok(client)
    }

    /// Sends a load report.
    pub fn heartbeat(&mut self, cpu_util: f64, gpus_busy: usize) -> std::io::Result<()> {
        write_msg(
            &mut self.writer,
            &ClientMsg::Heartbeat { hostname: self.hostname.clone(), cpu_util, gpus_busy },
        )?;
        self.expect_ack()
    }

    /// Gracefully leaves the cluster.
    pub fn leave(mut self) -> std::io::Result<()> {
        write_msg(&mut self.writer, &ClientMsg::Leave { hostname: self.hostname.clone() })?;
        self.expect_ack()
    }

    fn expect_ack(&mut self) -> std::io::Result<()> {
        match read_msg::<ServerMsg>(&mut self.reader)? {
            Some(ServerMsg::Ack) => Ok(()),
            Some(ServerMsg::Error { reason }) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                reason,
            )),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "collector closed connection",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ServerClass;

    fn spec(name: &str, class: ServerClass) -> ServerSpec {
        ServerSpec::preset(class, name)
    }

    #[test]
    fn register_and_snapshot() {
        let server = CollectorServer::bind("127.0.0.1:0", 2).unwrap();
        let c1 = CollectorClient::register(server.addr(), spec("a", ServerClass::GpuP100)).unwrap();
        let c2 = CollectorClient::register(server.addr(), spec("b", ServerClass::CpuE5_2630)).unwrap();
        let snap = server.snapshot();
        assert_eq!(snap.num_servers(), 2);
        assert_eq!(snap.servers[0].spec.hostname, "a");
        drop((c1, c2));
    }

    #[test]
    fn heartbeat_updates_utilization() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let mut c = CollectorClient::register(server.addr(), spec("n", ServerClass::CpuE5_2650)).unwrap();
        c.heartbeat(0.4, 0).unwrap();
        let snap = server.snapshot();
        assert!((snap.servers[0].cpu_util - 0.4).abs() < 1e-9);
    }

    #[test]
    fn leave_removes_server() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let c = CollectorClient::register(server.addr(), spec("n", ServerClass::CpuE5_2650)).unwrap();
        assert_eq!(server.num_registered(), 1);
        c.leave().unwrap();
        // The worker processes Leave synchronously before acking, so the
        // inventory is already updated.
        assert_eq!(server.num_registered(), 0);
    }

    #[test]
    fn invalid_heartbeat_rejected() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        let mut c = CollectorClient::register(server.addr(), spec("n", ServerClass::GpuP100)).unwrap();
        let err = c.heartbeat(2.0, 0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn abrupt_disconnect_keeps_entry() {
        let server = CollectorServer::bind("127.0.0.1:0", 1).unwrap();
        {
            let _c = CollectorClient::register(server.addr(), spec("n", ServerClass::GpuP100)).unwrap();
            // dropped without leave()
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(server.num_registered(), 1);
    }

    #[test]
    fn many_concurrent_clients() {
        let server = CollectorServer::bind("127.0.0.1:0", 4).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..12)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = CollectorClient::register(
                        addr,
                        ServerSpec::preset(ServerClass::CpuE5_2630, format!("node-{i}")),
                    )
                    .unwrap();
                    c.heartbeat(0.1, 0).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.num_registered(), 12);
    }
}
