//! Server hardware descriptions, mirroring the paper's CloudLab testbed.

use serde::{Deserialize, Serialize};

/// The three server classes of §IV-A1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerClass {
    /// 2× 8-core Intel E5-2630 (v3-era), 128 GB RAM. CPU-only.
    CpuE5_2630,
    /// 1× 8-core Intel E5-2650, 64 GB RAM. CPU-only.
    CpuE5_2650,
    /// 2× 10-core Xeon Silver 4114, 192 GB RAM, 1× NVIDIA P100 (12 GB).
    GpuP100,
}

/// Full hardware description of one server.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    pub class: ServerClass,
    pub hostname: String,
    /// Total physical CPU cores.
    pub cpu_cores: usize,
    /// Peak aggregate CPU FLOPS (single precision).
    pub cpu_flops: f64,
    /// RAM in bytes.
    pub ram_bytes: u64,
    /// Number of GPUs.
    pub gpus: usize,
    /// Peak FLOPS of one GPU (0 if none).
    pub gpu_flops: f64,
    /// GPU memory in bytes per GPU.
    pub gpu_mem_bytes: u64,
    /// Local disk throughput, bytes/s.
    pub disk_bps: f64,
    /// Network bandwidth, bytes/s.
    pub net_bps: f64,
}

impl ServerSpec {
    /// Preset matching the paper's testbed for a given class.
    pub fn preset(class: ServerClass, hostname: impl Into<String>) -> Self {
        match class {
            // 2 sockets × 8 cores × 2.4 GHz × 16 SP FLOP/cycle ≈ 614 GFLOPS.
            ServerClass::CpuE5_2630 => Self {
                class,
                hostname: hostname.into(),
                cpu_cores: 16,
                cpu_flops: 614e9,
                ram_bytes: 128 * GIB,
                gpus: 0,
                gpu_flops: 0.0,
                gpu_mem_bytes: 0,
                disk_bps: 500e6,
                net_bps: 10e9 / 8.0, // 10 GbE
            },
            // 1 socket × 8 cores × 2.0 GHz × 8 SP FLOP/cycle ≈ 128 GFLOPS.
            ServerClass::CpuE5_2650 => Self {
                class,
                hostname: hostname.into(),
                cpu_cores: 8,
                cpu_flops: 128e9,
                ram_bytes: 64 * GIB,
                gpus: 0,
                gpu_flops: 0.0,
                gpu_mem_bytes: 0,
                disk_bps: 400e6,
                net_bps: 10e9 / 8.0,
            },
            // P100: 9.3 TFLOPS FP32, 12 GB HBM2, PCIe attach.
            ServerClass::GpuP100 => Self {
                class,
                hostname: hostname.into(),
                cpu_cores: 20,
                cpu_flops: 1.28e12,
                ram_bytes: 192 * GIB,
                gpus: 1,
                gpu_flops: 9.3e12,
                gpu_mem_bytes: 12 * GIB,
                disk_bps: 500e6,
                net_bps: 25e9 / 8.0, // 25 GbE on the GPU nodes
            },
        }
    }

    /// Peak compute of the device training actually runs on: the GPU when
    /// present, otherwise the aggregate CPU.
    pub fn training_flops(&self) -> f64 {
        if self.gpus > 0 {
            self.gpus as f64 * self.gpu_flops
        } else {
            self.cpu_flops
        }
    }

    /// True if this server trains on a GPU.
    pub fn is_gpu(&self) -> bool {
        self.gpus > 0
    }
}

const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_core_counts() {
        let a = ServerSpec::preset(ServerClass::CpuE5_2630, "a");
        assert_eq!(a.cpu_cores, 16); // two 8-core CPUs
        let b = ServerSpec::preset(ServerClass::CpuE5_2650, "b");
        assert_eq!(b.cpu_cores, 8); // one 8-core CPU
        let g = ServerSpec::preset(ServerClass::GpuP100, "g");
        assert_eq!(g.cpu_cores, 20); // two 10-core CPUs
        assert_eq!(g.gpus, 1);
    }

    #[test]
    fn gpu_server_trains_on_gpu() {
        let g = ServerSpec::preset(ServerClass::GpuP100, "g");
        assert!(g.is_gpu());
        assert!(g.training_flops() > 5e12);
        let c = ServerSpec::preset(ServerClass::CpuE5_2630, "c");
        assert!(!c.is_gpu());
        assert_eq!(c.training_flops(), c.cpu_flops);
    }

    #[test]
    fn ram_matches_paper() {
        assert_eq!(ServerSpec::preset(ServerClass::CpuE5_2630, "x").ram_bytes, 128 * GIB);
        assert_eq!(ServerSpec::preset(ServerClass::CpuE5_2650, "x").ram_bytes, 64 * GIB);
        assert_eq!(ServerSpec::preset(ServerClass::GpuP100, "x").ram_bytes, 192 * GIB);
    }

    #[test]
    fn serde_round_trip() {
        let s = ServerSpec::preset(ServerClass::GpuP100, "node-1");
        let j = serde_json::to_string(&s).unwrap();
        let s2: ServerSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(s2, s);
    }
}
