//! Wire protocol of the Cluster Resource Collector: newline-delimited JSON.

use crate::spec::ServerSpec;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ClientMsg {
    /// First message after connecting: "every new server that joins the
    /// cluster notifies the Cluster Resource Collector with details about
    /// the underlying system and hardware resources" (§III-F).
    Register { spec: ServerSpec },
    /// Periodic load report.
    Heartbeat { hostname: String, cpu_util: f64, gpus_busy: usize },
    /// Graceful departure.
    Leave { hostname: String },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ServerMsg {
    /// Registration accepted.
    Ack,
    /// Malformed or out-of-order message.
    Error { reason: String },
}

/// Writes one message as a JSON line.
pub fn write_msg<T: Serialize>(w: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let mut line = serde_json::to_string(msg)?;
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one JSON-line message; `Ok(None)` on clean EOF.
pub fn read_msg<T: for<'de> Deserialize<'de>>(
    r: &mut impl BufRead,
) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    let msg = serde_json::from_str(line.trim_end())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ServerClass, ServerSpec};
    use std::io::{BufReader, Cursor};

    #[test]
    fn round_trip_register() {
        let msg = ClientMsg::Register {
            spec: ServerSpec::preset(ServerClass::CpuE5_2650, "n0"),
        };
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        let got: ClientMsg = read_msg(&mut r).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn eof_is_none() {
        let mut r = BufReader::new(Cursor::new(Vec::<u8>::new()));
        let got: Option<ClientMsg> = read_msg(&mut r).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn malformed_line_is_error() {
        let mut r = BufReader::new(Cursor::new(b"not json\n".to_vec()));
        let got: std::io::Result<Option<ClientMsg>> = read_msg(&mut r);
        assert!(got.is_err());
    }

    #[test]
    fn multiple_messages_stream() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &ClientMsg::Heartbeat { hostname: "a".into(), cpu_util: 0.5, gpus_busy: 0 }).unwrap();
        write_msg(&mut buf, &ClientMsg::Leave { hostname: "a".into() }).unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        let m1: ClientMsg = read_msg(&mut r).unwrap().unwrap();
        let m2: ClientMsg = read_msg(&mut r).unwrap().unwrap();
        assert!(matches!(m1, ClientMsg::Heartbeat { .. }));
        assert!(matches!(m2, ClientMsg::Leave { .. }));
    }
}
