//! Wire protocol of the Cluster Resource Collector: newline-delimited JSON.

use crate::spec::ServerSpec;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ClientMsg {
    /// First message after connecting: "every new server that joins the
    /// cluster notifies the Cluster Resource Collector with details about
    /// the underlying system and hardware resources" (§III-F).
    Register { spec: ServerSpec },
    /// Periodic load report.
    Heartbeat { hostname: String, cpu_util: f64, gpus_busy: usize },
    /// Graceful departure.
    Leave { hostname: String },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ServerMsg {
    /// Registration accepted.
    Ack,
    /// Malformed or out-of-order message.
    Error { reason: String },
}

/// Upper bound on a single wire frame (one JSON line), applied by
/// [`read_msg`]. A peer that never sends a newline can buffer at most this
/// much before the read fails with [`WireError::FrameTooLong`].
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Structured wire-layer failures, replacing bare `io::Error`s so callers
/// can tell a hostile frame from a dead transport.
#[derive(Debug)]
pub enum WireError {
    /// The frame exceeded the length bound before a newline was seen. The
    /// connection is no longer line-synchronized and should be closed.
    FrameTooLong {
        /// The bound that was exceeded.
        limit: usize,
    },
    /// The frame was complete but not valid JSON for the expected type.
    /// The stream is still line-synchronized; reading may continue.
    Malformed {
        /// Parser diagnostic.
        detail: String,
    },
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLong { limit } => {
                write!(f, "wire frame exceeds {limit} bytes without a newline")
            }
            WireError::Malformed { detail } => write!(f, "malformed wire frame: {detail}"),
            WireError::Io(e) => write!(f, "wire transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes one message as a JSON line.
pub fn write_msg<T: Serialize>(w: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let mut line = serde_json::to_string(msg)?;
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one newline-terminated line of at most `limit` bytes (exclusive of
/// the newline). `Ok(None)` on clean EOF; a final unterminated line is
/// returned as-is, matching `read_line`. Bytes are converted lossily, so a
/// line corrupted into invalid UTF-8 still surfaces as a (malformed) frame
/// rather than killing the connection.
pub fn read_line_bounded(
    r: &mut impl BufRead,
    limit: usize,
) -> Result<Option<String>, WireError> {
    let mut frame: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf().map_err(WireError::Io)?;
        if chunk.is_empty() {
            return if frame.is_empty() {
                Ok(None)
            } else {
                Ok(Some(String::from_utf8_lossy(&frame).into_owned()))
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if frame.len().saturating_add(pos) > limit {
                    return Err(WireError::FrameTooLong { limit });
                }
                frame.extend_from_slice(&chunk[..pos]);
                r.consume(pos + 1);
                return Ok(Some(String::from_utf8_lossy(&frame).into_owned()));
            }
            None => {
                let n = chunk.len();
                if frame.len().saturating_add(n) > limit {
                    return Err(WireError::FrameTooLong { limit });
                }
                frame.extend_from_slice(chunk);
                r.consume(n);
            }
        }
    }
}

/// One step of a [`LineReader`] poll.
#[derive(Debug, PartialEq, Eq)]
pub enum LinePoll {
    /// A complete newline-terminated line (newline stripped), or a final
    /// unterminated line at EOF.
    Line(String),
    /// Clean EOF with no buffered bytes.
    Eof,
    /// The read would block (`WouldBlock` / `TimedOut` with no complete
    /// line yet). Partial bytes stay buffered; call [`LineReader::poll`]
    /// again.
    Pending,
}

/// A resumable bounded line reader for sockets with read timeouts.
///
/// [`read_line_bounded`] accumulates the partial frame in a local buffer,
/// so a `WouldBlock`/`TimedOut` from the transport *loses* any bytes read
/// so far — fatal on a socket with `set_read_timeout`, where timeouts are
/// routine (the serving core's reader threads use them to poll the
/// shutdown flag). `LineReader` keeps the partial frame across polls: a
/// timed-out read returns [`LinePoll::Pending`] and the next poll resumes
/// where it left off. The same `limit` bound applies — a peer that never
/// sends a newline fails with [`WireError::FrameTooLong`].
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    limit: usize,
}

impl LineReader {
    /// A reader that bounds each line at `limit` bytes (newline excluded).
    pub fn bounded(limit: usize) -> Self {
        Self { buf: Vec::new(), limit }
    }

    /// Attempts to complete one line from `r`. Interruptions
    /// (`WouldBlock`, `TimedOut`, `Interrupted`) yield [`LinePoll::Pending`]
    /// with the partial frame retained; other I/O errors are fatal.
    pub fn poll(&mut self, r: &mut impl BufRead) -> Result<LinePoll, WireError> {
        loop {
            let chunk = match r.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(LinePoll::Pending);
                }
                Err(e) => return Err(WireError::Io(e)),
            };
            if chunk.is_empty() {
                return if self.buf.is_empty() {
                    Ok(LinePoll::Eof)
                } else {
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    Ok(LinePoll::Line(line))
                };
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if self.buf.len().saturating_add(pos) > self.limit {
                        return Err(WireError::FrameTooLong { limit: self.limit });
                    }
                    self.buf.extend_from_slice(&chunk[..pos]);
                    r.consume(pos + 1);
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(LinePoll::Line(line));
                }
                None => {
                    let n = chunk.len();
                    if self.buf.len().saturating_add(n) > self.limit {
                        return Err(WireError::FrameTooLong { limit: self.limit });
                    }
                    self.buf.extend_from_slice(chunk);
                    r.consume(n);
                }
            }
        }
    }
}

/// Reads one JSON-line message of at most `limit` bytes; `Ok(None)` on
/// clean EOF, [`WireError::Malformed`] on a complete-but-unparseable frame.
pub fn read_msg_bounded<T: for<'de> Deserialize<'de>>(
    r: &mut impl BufRead,
    limit: usize,
) -> Result<Option<T>, WireError> {
    let Some(line) = read_line_bounded(r, limit)? else {
        return Ok(None);
    };
    serde_json::from_str(line.trim_end())
        .map(Some)
        .map_err(|e| WireError::Malformed { detail: e.to_string() })
}

/// Reads one JSON-line message bounded at [`MAX_FRAME_BYTES`]; `Ok(None)`
/// on clean EOF. Malformed and over-long frames surface as
/// `InvalidData` `io::Error`s (see [`read_msg_bounded`] for the structured
/// form).
pub fn read_msg<T: for<'de> Deserialize<'de>>(
    r: &mut impl BufRead,
) -> std::io::Result<Option<T>> {
    read_msg_bounded(r, MAX_FRAME_BYTES).map_err(std::io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ServerClass, ServerSpec};
    use std::io::{BufReader, Cursor};

    #[test]
    fn round_trip_register() {
        let msg = ClientMsg::Register {
            spec: ServerSpec::preset(ServerClass::CpuE5_2650, "n0"),
        };
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        let got: ClientMsg = read_msg(&mut r).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn eof_is_none() {
        let mut r = BufReader::new(Cursor::new(Vec::<u8>::new()));
        let got: Option<ClientMsg> = read_msg(&mut r).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn malformed_line_is_error() {
        let mut r = BufReader::new(Cursor::new(b"not json\n".to_vec()));
        let got: std::io::Result<Option<ClientMsg>> = read_msg(&mut r);
        assert!(got.is_err());
    }

    #[test]
    fn overlong_frame_rejected_with_structured_error() {
        // A "peer" that drips bytes without ever sending a newline must be
        // cut off at the bound, not buffered indefinitely.
        let bytes = vec![b'x'; 4096];
        let mut r = BufReader::with_capacity(64, Cursor::new(bytes));
        let got = read_msg_bounded::<ClientMsg>(&mut r, 1024);
        assert!(matches!(got, Err(WireError::FrameTooLong { limit: 1024 })));
    }

    #[test]
    fn frame_at_limit_is_accepted() {
        let mut line = vec![b'"'; 1];
        line.extend_from_slice(&[b'a'; 8]);
        line.push(b'"');
        line.push(b'\n');
        let limit = line.len() - 1;
        let mut r = BufReader::new(Cursor::new(line));
        let got: Option<String> = read_msg_bounded(&mut r, limit).expect("within bound");
        assert_eq!(got.as_deref(), Some("aaaaaaaa"));
    }

    #[test]
    fn malformed_frame_keeps_stream_synchronized() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"{\"type\":\"nonsense\"}\n");
        write_msg(&mut buf, &ClientMsg::Leave { hostname: "a".into() }).unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        let first = read_msg_bounded::<ClientMsg>(&mut r, MAX_FRAME_BYTES);
        assert!(matches!(first, Err(WireError::Malformed { .. })));
        // The malformed line was consumed; the next frame parses fine.
        let second: ClientMsg = read_msg(&mut r).unwrap().unwrap();
        assert!(matches!(second, ClientMsg::Leave { .. }));
    }

    #[test]
    fn invalid_utf8_is_malformed_not_fatal() {
        let mut r = BufReader::new(Cursor::new(b"\xff\xfe\xfd\n".to_vec()));
        let got = read_msg_bounded::<ClientMsg>(&mut r, MAX_FRAME_BYTES);
        assert!(matches!(got, Err(WireError::Malformed { .. })));
        let eof: Option<ClientMsg> = read_msg(&mut r).unwrap();
        assert!(eof.is_none());
    }

    /// A reader that injects `WouldBlock` between every real chunk,
    /// imitating a socket with a read timeout that keeps firing mid-frame.
    struct Choppy {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        serve_next: bool,
        buffered: usize,
    }

    impl std::io::Read for Choppy {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("BufRead path only")
        }
    }

    impl BufRead for Choppy {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.buffered == 0 {
                if !self.serve_next {
                    self.serve_next = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "simulated timeout",
                    ));
                }
                self.serve_next = false;
                self.buffered = self.chunk.min(self.data.len() - self.pos);
            }
            Ok(&self.data[self.pos..self.pos + self.buffered])
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
            self.buffered -= amt;
        }
    }

    #[test]
    fn line_reader_survives_wouldblock_mid_frame() {
        // read_line_bounded would lose the partial frame at each timeout;
        // LineReader must hand back the exact same lines as an untimed read.
        let mut r = Choppy {
            data: b"hello world\nsecond line\n".to_vec(),
            pos: 0,
            chunk: 4,
            serve_next: false,
            buffered: 0,
        };
        let mut lr = LineReader::bounded(1024);
        let mut lines = Vec::new();
        loop {
            match lr.poll(&mut r).expect("no fatal error") {
                LinePoll::Line(l) => lines.push(l),
                LinePoll::Eof => break,
                LinePoll::Pending => continue,
            }
        }
        assert_eq!(lines, vec!["hello world".to_string(), "second line".to_string()]);
    }

    #[test]
    fn line_reader_enforces_limit_across_polls() {
        let mut r = Choppy {
            data: vec![b'x'; 256],
            pos: 0,
            chunk: 16,
            serve_next: false,
            buffered: 0,
        };
        let mut lr = LineReader::bounded(64);
        let err = loop {
            match lr.poll(&mut r) {
                Ok(LinePoll::Pending) => continue,
                Ok(other) => panic!("expected FrameTooLong, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WireError::FrameTooLong { limit: 64 }));
    }

    #[test]
    fn line_reader_final_unterminated_line_at_eof() {
        let mut r = BufReader::new(Cursor::new(b"tail without newline".to_vec()));
        let mut lr = LineReader::bounded(1024);
        assert_eq!(
            lr.poll(&mut r).unwrap(),
            LinePoll::Line("tail without newline".into())
        );
        assert_eq!(lr.poll(&mut r).unwrap(), LinePoll::Eof);
    }

    #[test]
    fn multiple_messages_stream() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &ClientMsg::Heartbeat { hostname: "a".into(), cpu_util: 0.5, gpus_busy: 0 }).unwrap();
        write_msg(&mut buf, &ClientMsg::Leave { hostname: "a".into() }).unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        let m1: ClientMsg = read_msg(&mut r).unwrap().unwrap();
        let m2: ClientMsg = read_msg(&mut r).unwrap().unwrap();
        assert!(matches!(m1, ClientMsg::Heartbeat { .. }));
        assert!(matches!(m2, ClientMsg::Leave { .. }));
    }
}
