//! Primitive operation vocabulary and per-node analytic costs.

use serde::{Deserialize, Serialize};

/// The primitive-operation vocabulary.
///
/// This is the union of the DARTS primitive set that GHN-2 was trained over
/// and the ops named in Fig. 3 of the PredictDDL paper (convolution, group
/// convolution, concatenation, summation, averaging, pooling, bias addition,
/// batch normalization), plus the activations needed to express the
/// torchvision families in `pddl-zoo`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum OpKind {
    /// Graph input (image tensor).
    Input,
    /// Graph output (logits).
    Output,
    /// Dense convolution (any kernel; kernel size lives in [`NodeAttrs`]).
    Conv,
    /// Depthwise convolution (groups == channels).
    DepthwiseConv,
    /// Grouped convolution with 1 < groups < channels (ResNeXt/ShuffleNet).
    GroupConv,
    /// Dilated convolution (DARTS `dil_conv`).
    DilConv,
    /// Max pooling.
    MaxPool,
    /// Average pooling.
    AvgPool,
    /// Global average pooling (spatial → 1×1).
    GlobalAvgPool,
    /// Fully-connected / linear layer.
    Dense,
    /// Batch normalization.
    BatchNorm,
    /// Bias addition.
    BiasAdd,
    /// ReLU (covers ReLU6 for cost purposes).
    Relu,
    /// Sigmoid (squeeze-excite gates).
    Sigmoid,
    /// Tanh.
    Tanh,
    /// Swish / SiLU (EfficientNet).
    Swish,
    /// Hard-swish (MobileNet-V3).
    HardSwish,
    /// Softmax over classes.
    Softmax,
    /// Elementwise summation (residual join).
    Sum,
    /// Channel concatenation (DenseNet/Inception join).
    Concat,
    /// Elementwise multiplication (squeeze-excite scaling).
    Mul,
    /// Identity / skip connection.
    Identity,
    /// Channel shuffle (ShuffleNet).
    ChannelShuffle,
    /// Dropout (no FLOPs at inference; kept for structural fidelity).
    Dropout,
}

impl OpKind {
    /// All variants in one-hot order. The order is part of the embedding
    /// contract: a trained GHN is only valid for the vocabulary it saw.
    pub const ALL: [OpKind; 24] = [
        OpKind::Input,
        OpKind::Output,
        OpKind::Conv,
        OpKind::DepthwiseConv,
        OpKind::GroupConv,
        OpKind::DilConv,
        OpKind::MaxPool,
        OpKind::AvgPool,
        OpKind::GlobalAvgPool,
        OpKind::Dense,
        OpKind::BatchNorm,
        OpKind::BiasAdd,
        OpKind::Relu,
        OpKind::Sigmoid,
        OpKind::Tanh,
        OpKind::Swish,
        OpKind::HardSwish,
        OpKind::Softmax,
        OpKind::Sum,
        OpKind::Concat,
        OpKind::Mul,
        OpKind::Identity,
        OpKind::ChannelShuffle,
        OpKind::Dropout,
    ];

    /// Size of the one-hot vocabulary.
    pub const COUNT: usize = Self::ALL.len();

    /// Index of this op in the one-hot encoding.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("op kind present in ALL")
    }

    /// True for ops that own trainable parameters.
    pub fn is_parameterized(self) -> bool {
        matches!(
            self,
            OpKind::Conv
                | OpKind::DepthwiseConv
                | OpKind::GroupConv
                | OpKind::DilConv
                | OpKind::Dense
                | OpKind::BatchNorm
                | OpKind::BiasAdd
        )
    }

    /// True for convolution-family ops.
    pub fn is_conv(self) -> bool {
        matches!(
            self,
            OpKind::Conv | OpKind::DepthwiseConv | OpKind::GroupConv | OpKind::DilConv
        )
    }

    /// True for ops counted as a "layer" by the gray-box baselines
    /// (the paper's `#layers` feature counts weight layers).
    pub fn is_layer(self) -> bool {
        self.is_conv() || self == OpKind::Dense
    }
}

/// Shape/config metadata attached to each node, from which FLOPs and
/// parameter counts are derived analytically.
///
/// Spatial resolution is recorded at the node **output**; feature maps are
/// assumed square (`spatial × spatial`), which matches every workload in the
/// paper (CIFAR-10 32×32, Tiny-ImageNet 64×64).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeAttrs {
    /// Input channels (or input features for Dense).
    pub c_in: usize,
    /// Output channels (or output features for Dense).
    pub c_out: usize,
    /// Kernel size (k×k); 0 for non-kernel ops.
    pub kernel: usize,
    /// Stride; 1 for non-strided ops.
    pub stride: usize,
    /// Convolution groups (1 = dense conv, c_in = depthwise).
    pub groups: usize,
    /// Output spatial resolution (H = W). 1 after global pooling / for Dense.
    pub spatial: usize,
}

impl Default for NodeAttrs {
    fn default() -> Self {
        Self { c_in: 0, c_out: 0, kernel: 0, stride: 1, groups: 1, spatial: 1 }
    }
}

impl NodeAttrs {
    /// Elementwise op over `c` channels at `spatial` resolution.
    pub fn elementwise(c: usize, spatial: usize) -> Self {
        Self { c_in: c, c_out: c, spatial, ..Default::default() }
    }

    /// Convolution attrs.
    pub fn conv(c_in: usize, c_out: usize, kernel: usize, stride: usize, spatial_out: usize) -> Self {
        Self { c_in, c_out, kernel, stride, groups: 1, spatial: spatial_out }
    }

    /// Grouped convolution attrs.
    pub fn group_conv(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        groups: usize,
        spatial_out: usize,
    ) -> Self {
        Self { c_in, c_out, kernel, stride, groups, spatial: spatial_out }
    }

    /// Dense layer attrs.
    pub fn dense(f_in: usize, f_out: usize) -> Self {
        Self { c_in: f_in, c_out: f_out, spatial: 1, ..Default::default() }
    }
}

/// Forward-pass multiply-add count for one node on a **single example**.
///
/// The convention follows Paleo/ptflops: one multiply-add = 2 FLOPs for
/// GEMM-like ops; elementwise ops cost one FLOP per element.
pub fn node_flops(kind: OpKind, a: &NodeAttrs) -> f64 {
    let hw = (a.spatial * a.spatial) as f64;
    let cin = a.c_in as f64;
    let cout = a.c_out as f64;
    let k2 = (a.kernel * a.kernel) as f64;
    match kind {
        OpKind::Conv | OpKind::DilConv => 2.0 * k2 * cin * cout * hw,
        OpKind::GroupConv | OpKind::DepthwiseConv => {
            let g = a.groups.max(1) as f64;
            2.0 * k2 * cin * cout * hw / g
        }
        OpKind::Dense => 2.0 * cin * cout,
        OpKind::MaxPool | OpKind::AvgPool => k2 * cout * hw,
        // Global pool reads the full input map; `spatial` here is the output
        // (1), so charge by input channels times the input map the builders
        // record in `kernel` (kernel = input spatial for this op).
        OpKind::GlobalAvgPool => cin * k2.max(1.0),
        OpKind::BatchNorm => 4.0 * cout * hw,
        OpKind::BiasAdd | OpKind::Relu | OpKind::Identity | OpKind::ChannelShuffle => cout * hw,
        OpKind::Sigmoid | OpKind::Tanh | OpKind::Swish | OpKind::HardSwish => 4.0 * cout * hw,
        OpKind::Softmax => 5.0 * cout,
        OpKind::Sum | OpKind::Mul => cout * hw,
        OpKind::Concat | OpKind::Dropout | OpKind::Input | OpKind::Output => 0.0,
    }
}

/// Trainable parameter count for one node.
pub fn node_params(kind: OpKind, a: &NodeAttrs) -> u64 {
    let k2 = (a.kernel * a.kernel) as u64;
    match kind {
        OpKind::Conv | OpKind::DilConv => k2 * a.c_in as u64 * a.c_out as u64 + a.c_out as u64,
        OpKind::GroupConv | OpKind::DepthwiseConv => {
            let g = a.groups.max(1) as u64;
            k2 * a.c_in as u64 * a.c_out as u64 / g + a.c_out as u64
        }
        OpKind::Dense => (a.c_in as u64 + 1) * a.c_out as u64,
        OpKind::BatchNorm => 2 * a.c_out as u64,
        OpKind::BiasAdd => a.c_out as u64,
        _ => 0,
    }
}

/// Activation-memory footprint in elements for one node's output on a
/// single example (drives the roofline/arithmetic-intensity term of the
/// simulator's efficiency model).
pub fn node_activation_elems(a: &NodeAttrs) -> u64 {
    a.c_out as u64 * (a.spatial * a.spatial) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_indices_are_unique_and_dense() {
        let mut seen = [false; OpKind::COUNT];
        for k in OpKind::ALL {
            let i = k.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn conv_flops_formula() {
        // 3x3 conv, 16→32 channels, 8x8 output: 2*9*16*32*64
        let a = NodeAttrs::conv(16, 32, 3, 1, 8);
        assert_eq!(node_flops(OpKind::Conv, &a), 2.0 * 9.0 * 16.0 * 32.0 * 64.0);
    }

    #[test]
    fn depthwise_is_groups_times_cheaper() {
        let dense = NodeAttrs::conv(32, 32, 3, 1, 8);
        let dw = NodeAttrs::group_conv(32, 32, 3, 1, 32, 8);
        let fd = node_flops(OpKind::Conv, &dense);
        let fw = node_flops(OpKind::DepthwiseConv, &dw);
        assert!((fd / fw - 32.0).abs() < 1e-9);
    }

    #[test]
    fn dense_params_include_bias() {
        let a = NodeAttrs::dense(512, 10);
        assert_eq!(node_params(OpKind::Dense, &a), 513 * 10);
    }

    #[test]
    fn pooling_has_no_params() {
        let a = NodeAttrs::conv(64, 64, 2, 2, 4);
        assert_eq!(node_params(OpKind::MaxPool, &a), 0);
        assert_eq!(node_params(OpKind::AvgPool, &a), 0);
    }

    #[test]
    fn layer_predicate_matches_paper_convention() {
        assert!(OpKind::Conv.is_layer());
        assert!(OpKind::Dense.is_layer());
        assert!(OpKind::DepthwiseConv.is_layer());
        assert!(!OpKind::BatchNorm.is_layer());
        assert!(!OpKind::Relu.is_layer());
        assert!(!OpKind::Sum.is_layer());
    }

    #[test]
    fn group_conv_params_divide_by_groups() {
        let a = NodeAttrs::group_conv(64, 64, 3, 1, 4, 8);
        // 9 * 64 * 64 / 4 + 64
        assert_eq!(node_params(OpKind::GroupConv, &a), 9 * 64 * 64 / 4 + 64);
    }
}
