//! All-pairs shortest-path distances for GHN-2 virtual edges.
//!
//! Eq. (4) of the paper extends message passing with *virtual edges*: node
//! `v` additionally receives `MLP_sp(h_u)/s_vu` from every node `u` whose
//! shortest-path distance satisfies `1 < s_vu ≤ s_max`. Distances follow the
//! propagation direction: for the forward pass, `s_vu` is the length of the
//! shortest directed path `u → v`; the backward pass uses the reverse graph.

use crate::dag::{CompGraph, NodeId};
use std::collections::VecDeque;

/// Unreachable marker in the distance matrix.
pub const UNREACHABLE: u32 = u32::MAX;

/// Dense all-pairs shortest-path table over a graph's directed edges.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    n: usize,
    /// `dist[u * n + v]` = length of shortest directed path u → v.
    dist: Vec<u32>,
}

impl ShortestPaths {
    /// BFS from every node over the forward edges. O(V·(V+E)), fine for the
    /// ≤ a-few-hundred-node graphs in the zoo.
    pub fn forward(g: &CompGraph) -> Self {
        Self::build(g, false)
    }

    /// Same over the reversed edges (for the backward propagation pass).
    pub fn backward(g: &CompGraph) -> Self {
        Self::build(g, true)
    }

    fn build(g: &CompGraph, reversed: bool) -> Self {
        let n = g.num_nodes();
        let mut dist = vec![UNREACHABLE; n * n];
        let mut queue = VecDeque::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                let next = if reversed { g.predecessors(u) } else { g.successors(u) };
                for &v in next {
                    if row[v] == UNREACHABLE {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        Self { n, dist }
    }

    /// Distance of the shortest directed path `u → v`, or `UNREACHABLE`.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u32 {
        self.dist[u * self.n + v]
    }

    /// Virtual-edge neighbor set of `v`: sources `u` with `1 < s(u→v) ≤ s_max`,
    /// returned with their distances. Direct neighbors (distance 1) are
    /// excluded — they already participate in regular message passing.
    pub fn virtual_sources(&self, v: NodeId, s_max: u32) -> Vec<(NodeId, u32)> {
        (0..self.n)
            .filter_map(|u| {
                let d = self.dist(u, v);
                (d > 1 && d <= s_max).then_some((u, d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{NodeAttrs, OpKind};

    /// in → a → b → c → out, plus skip in → c.
    fn chain_with_skip() -> CompGraph {
        let mut g = CompGraph::new("t");
        let input = g.add_node(OpKind::Input, NodeAttrs::default(), "in");
        let a = g.chain(input, OpKind::Conv, NodeAttrs::default(), "a");
        let b = g.chain(a, OpKind::Relu, NodeAttrs::default(), "b");
        let c = g.chain(b, OpKind::Sum, NodeAttrs::default(), "c");
        g.add_edge(input, c);
        let _ = g.chain(c, OpKind::Output, NodeAttrs::default(), "out");
        g
    }

    #[test]
    fn forward_distances() {
        let g = chain_with_skip();
        let sp = ShortestPaths::forward(&g);
        assert_eq!(sp.dist(0, 0), 0);
        assert_eq!(sp.dist(0, 1), 1);
        assert_eq!(sp.dist(0, 2), 2);
        assert_eq!(sp.dist(0, 3), 1, "skip edge shortens path to c");
        assert_eq!(sp.dist(0, 4), 2);
        assert_eq!(sp.dist(4, 0), UNREACHABLE, "no backward reachability forward");
    }

    #[test]
    fn backward_is_transpose_of_forward() {
        let g = chain_with_skip();
        let fw = ShortestPaths::forward(&g);
        let bw = ShortestPaths::backward(&g);
        for u in 0..g.num_nodes() {
            for v in 0..g.num_nodes() {
                assert_eq!(fw.dist(u, v), bw.dist(v, u));
            }
        }
    }

    #[test]
    fn virtual_sources_exclude_direct_neighbors() {
        let g = chain_with_skip();
        let sp = ShortestPaths::forward(&g);
        // Sources for node b (id 2) within s_max=3: only input at distance 2.
        let vs = sp.virtual_sources(2, 3);
        assert_eq!(vs, vec![(0, 2)]);
        // Node c (id 3): a at distance 2 (in is at distance 1 via skip).
        let vs = sp.virtual_sources(3, 3);
        assert_eq!(vs, vec![(1, 2)]);
    }

    #[test]
    fn s_max_truncates() {
        let g = chain_with_skip();
        let sp = ShortestPaths::forward(&g);
        // Output (id 4) has in at distance 2, a at 3, b at 2... check cap.
        let all = sp.virtual_sources(4, 10);
        let capped = sp.virtual_sources(4, 2);
        assert!(capped.len() <= all.len());
        assert!(capped.iter().all(|&(_, d)| d <= 2));
    }
}
