//! Initial node features `H₀` for the GHN.
//!
//! The paper (Section III-E) defines `H₀ = [h₁⁰ … h_{|V|}⁰]` where each
//! `h_v⁰` is a **one-hot vector of the operation** performed by the node. We
//! append a small set of normalized shape scalars (log-channels, log-kernel,
//! stride, log-spatial) — GHN-2 likewise conditions on shape metadata when
//! decoding weights; without them two convolutions of very different width
//! would be indistinguishable at the input.

use crate::dag::CompGraph;
use crate::op::OpKind;

/// Number of shape scalars appended after the one-hot block.
pub const SHAPE_FEATS: usize = 4;

/// Width of the initial feature vector.
pub const FEATURE_DIM: usize = OpKind::COUNT + SHAPE_FEATS;

/// Builds `H₀` as a flat row-major `|V| × FEATURE_DIM` buffer.
pub fn one_hot_features(g: &CompGraph) -> Vec<f32> {
    let n = g.num_nodes();
    let mut h = vec![0.0f32; n * FEATURE_DIM];
    for (v, node) in g.nodes().iter().enumerate() {
        let row = &mut h[v * FEATURE_DIM..(v + 1) * FEATURE_DIM];
        row[node.kind.index()] = 1.0;
        let a = &node.attrs;
        // Normalized shape scalars; log1p keeps wide layers O(1).
        row[OpKind::COUNT] = ((a.c_out as f32).ln_1p()) / 8.0;
        row[OpKind::COUNT + 1] = a.kernel as f32 / 8.0;
        row[OpKind::COUNT + 2] = a.stride as f32 / 2.0;
        row[OpKind::COUNT + 3] = ((a.spatial as f32).ln_1p()) / 6.0;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::NodeAttrs;

    #[test]
    fn feature_rows_have_single_hot_bit() {
        let mut g = CompGraph::new("t");
        let a = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 32), "in");
        let b = g.chain(a, OpKind::Conv, NodeAttrs::conv(3, 64, 3, 1, 32), "c");
        let _ = g.chain(b, OpKind::Output, NodeAttrs::elementwise(64, 32), "o");
        let h = one_hot_features(&g);
        assert_eq!(h.len(), 3 * FEATURE_DIM);
        for v in 0..3 {
            let row = &h[v * FEATURE_DIM..v * FEATURE_DIM + OpKind::COUNT];
            let hot: usize = row.iter().filter(|&&x| x == 1.0).count();
            assert_eq!(hot, 1, "node {v} one-hot block malformed");
        }
    }

    #[test]
    fn wider_layer_has_larger_channel_feature() {
        let mut g = CompGraph::new("t");
        let a = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 32), "in");
        let narrow = g.chain(a, OpKind::Conv, NodeAttrs::conv(3, 16, 3, 1, 32), "n");
        let wide = g.chain(narrow, OpKind::Conv, NodeAttrs::conv(16, 512, 3, 1, 32), "w");
        let _ = g.chain(wide, OpKind::Output, NodeAttrs::elementwise(512, 32), "o");
        let h = one_hot_features(&g);
        let f = |v: usize| h[v * FEATURE_DIM + OpKind::COUNT];
        assert!(f(2) > f(1), "wide layer should have larger channel feature");
    }

    #[test]
    fn shape_features_bounded() {
        let mut g = CompGraph::new("t");
        let a = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 224), "in");
        let b = g.chain(a, OpKind::Conv, NodeAttrs::conv(3, 2048, 7, 2, 112), "c");
        let _ = g.chain(b, OpKind::Output, NodeAttrs::elementwise(2048, 1), "o");
        for x in one_hot_features(&g) {
            assert!(x.abs() <= 2.0, "feature {x} out of expected range");
        }
    }
}
