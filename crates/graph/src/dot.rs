//! Graphviz DOT export — renders the Fig. 3 view of an architecture
//! ("nodes define linked primitive operations").

use crate::dag::CompGraph;
use crate::op::OpKind;
use std::fmt::Write;

/// Fill color per op family, for readable renders.
fn color(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Input | OpKind::Output => "lightgoldenrod",
        k if k.is_conv() => "lightblue",
        OpKind::Dense => "lightsalmon",
        OpKind::BatchNorm | OpKind::BiasAdd => "lavender",
        OpKind::MaxPool | OpKind::AvgPool | OpKind::GlobalAvgPool => "palegreen",
        OpKind::Sum | OpKind::Concat | OpKind::Mul => "khaki",
        _ => "white",
    }
}

/// Serializes the graph in Graphviz DOT format. Node labels show the op
/// kind and (for parameterized ops) the channel signature.
pub fn to_dot(g: &CompGraph) -> String {
    let mut out = String::with_capacity(64 * g.num_nodes());
    writeln!(out, "digraph \"{}\" {{", g.name).unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    writeln!(out, "  node [shape=box, style=filled, fontsize=10];").unwrap();
    for (v, node) in g.nodes().iter().enumerate() {
        let a = &node.attrs;
        let label = if node.kind.is_parameterized() {
            format!("{:?}\\n{}→{} k{}s{}", node.kind, a.c_in, a.c_out, a.kernel, a.stride)
        } else {
            format!("{:?}", node.kind)
        };
        writeln!(
            out,
            "  n{v} [label=\"{label}\", fillcolor=\"{}\"];",
            color(node.kind)
        )
        .unwrap();
    }
    for v in 0..g.num_nodes() {
        for &w in g.successors(v) {
            writeln!(out, "  n{v} -> n{w};").unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::NodeAttrs;

    fn sample() -> CompGraph {
        let mut g = CompGraph::new("dot-test");
        let i = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 8), "in");
        let c = g.chain(i, OpKind::Conv, NodeAttrs::conv(3, 16, 3, 1, 8), "c");
        let _ = g.chain(c, OpKind::Output, NodeAttrs::elementwise(16, 8), "o");
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"dot-test\""));
        for v in 0..g.num_nodes() {
            assert!(dot.contains(&format!("n{v} [label=")), "missing node {v}");
        }
        assert_eq!(dot.matches("->").count(), g.num_edges());
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn parameterized_nodes_show_shapes() {
        let dot = to_dot(&sample());
        assert!(dot.contains("3→16 k3s1"), "{dot}");
    }

    #[test]
    fn dot_is_valid_for_every_zoo_shape_of_node() {
        // Smoke: every op kind renders with some color without panicking.
        let mut g = CompGraph::new("all-ops");
        let mut prev = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 8), "in");
        for (i, &k) in OpKind::ALL
            .iter()
            .filter(|&&k| k != OpKind::Input && k != OpKind::Output)
            .enumerate()
        {
            prev = g.chain(prev, k, NodeAttrs::elementwise(8, 8), format!("n{i}"));
        }
        let _ = g.chain(prev, OpKind::Output, NodeAttrs::elementwise(8, 8), "out");
        let dot = to_dot(&g);
        assert!(dot.lines().count() > OpKind::COUNT);
    }
}
