//! DNN architectures as computational graphs.
//!
//! Mirrors Section II-B / Fig. 3 of the PredictDDL paper: a deep neural
//! network is a directed acyclic graph whose nodes are *primitive
//! operations* (convolution, group convolution, concatenation, summation,
//! averaging, pooling, bias addition, batch normalization, …) and whose
//! edges carry data flow. The GHN consumes exactly this structure:
//!
//! * the binary adjacency matrix `A ∈ {0,1}^{|V|×|V|}`,
//! * one-hot initial node features `H₀` over the operation vocabulary,
//! * the propagation orders `π ∈ {fw, bw}` (topological and reverse
//!   topological order),
//! * shortest-path distances for GHN-2's **virtual edges**.
//!
//! Each node also carries shape metadata ([`NodeAttrs`]) from which analytic
//! per-node FLOPs and parameter counts are derived; the model zoo
//! (`pddl-zoo`) and the training-time simulator (`pddl-ddlsim`) consume
//! those.

pub mod dag;
pub mod dot;
pub mod features;
pub mod op;
pub mod paths;

pub use dag::{CompGraph, GraphError, Node, NodeId};
pub use dot::to_dot;
pub use features::one_hot_features;
pub use op::{NodeAttrs, OpKind};
pub use paths::ShortestPaths;
