//! The computational-graph DAG itself.

use crate::op::{node_activation_elems, node_flops, node_params, NodeAttrs, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Index of a node within its [`CompGraph`].
pub type NodeId = usize;

/// One primitive operation in the graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub kind: OpKind,
    pub attrs: NodeAttrs,
    /// Human-readable label for debugging/visualization (e.g. "layer3.conv2").
    pub label: String,
}

/// Structural problems detected by [`CompGraph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a directed cycle.
    Cyclic,
    /// No `Input` node present.
    NoInput,
    /// No `Output` node present.
    NoOutput,
    /// Node unreachable from any input (dead subgraph).
    Unreachable(NodeId),
    /// Edge endpoint out of range.
    DanglingEdge(NodeId, NodeId),
    /// A non-input node with no predecessors.
    OrphanNode(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cyclic => write!(f, "graph contains a cycle"),
            GraphError::NoInput => write!(f, "graph has no Input node"),
            GraphError::NoOutput => write!(f, "graph has no Output node"),
            GraphError::Unreachable(v) => write!(f, "node {v} unreachable from input"),
            GraphError::DanglingEdge(u, v) => write!(f, "edge {u}->{v} out of range"),
            GraphError::OrphanNode(v) => write!(f, "non-input node {v} has no predecessors"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A DNN architecture as a DAG of primitive operations.
///
/// Nodes are stored in insertion order; the model-zoo builders insert in a
/// valid topological order but nothing relies on that — [`topo_order`]
/// recomputes via Kahn's algorithm and [`validate`] rejects cycles.
///
/// [`topo_order`]: CompGraph::topo_order
/// [`validate`]: CompGraph::validate
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompGraph {
    /// Architecture name, e.g. `"resnet18"`.
    pub name: String,
    nodes: Vec<Node>,
    /// Forward adjacency: `out_edges[u]` lists v with u → v.
    out_edges: Vec<Vec<NodeId>>,
    /// Reverse adjacency: `in_edges[v]` lists u with u → v.
    in_edges: Vec<Vec<NodeId>>,
}

impl CompGraph {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: OpKind, attrs: NodeAttrs, label: impl Into<String>) -> NodeId {
        self.nodes.push(Node { kind, attrs, label: label.into() });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds a directed data-flow edge `from → to`. Duplicate edges are
    /// ignored (the adjacency matrix is binary).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from < self.nodes.len() && to < self.nodes.len(), "edge endpoint out of range");
        assert_ne!(from, to, "self-loop is not a valid data flow");
        if !self.out_edges[from].contains(&to) {
            self.out_edges[from].push(to);
            self.in_edges[to].push(from);
        }
    }

    /// Convenience: adds a node wired from a single predecessor.
    pub fn chain(&mut self, prev: NodeId, kind: OpKind, attrs: NodeAttrs, label: impl Into<String>) -> NodeId {
        let id = self.add_node(kind, attrs, label);
        self.add_edge(prev, id);
        id
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_edges(&self) -> usize {
        self.out_edges.iter().map(|e| e.len()).sum()
    }

    /// Successors of `v` (forward-pass neighbors 𝒩ᵥ for π = bw).
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        &self.out_edges[v]
    }

    /// Predecessors of `v` (incoming neighbors 𝒩ᵥ for π = fw).
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        &self.in_edges[v]
    }

    /// Kahn's-algorithm topological order; `None` if the graph is cyclic.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree: Vec<usize> = self.in_edges.iter().map(|e| e.len()).collect();
        let mut queue: VecDeque<NodeId> =
            (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &self.out_edges[v] {
                indegree[w] -= 1;
                if indegree[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Binary adjacency matrix as a flat row-major `Vec` (1.0 where u → v).
    pub fn adjacency_flat(&self) -> Vec<f32> {
        let n = self.nodes.len();
        let mut a = vec![0.0f32; n * n];
        for (u, outs) in self.out_edges.iter().enumerate() {
            for &v in outs {
                a[u * n + v] = 1.0;
            }
        }
        a
    }

    /// Structural validation per the invariants the GHN relies on.
    pub fn validate(&self) -> Result<(), GraphError> {
        if !self.nodes.iter().any(|n| n.kind == OpKind::Input) {
            return Err(GraphError::NoInput);
        }
        if !self.nodes.iter().any(|n| n.kind == OpKind::Output) {
            return Err(GraphError::NoOutput);
        }
        for (v, node) in self.nodes.iter().enumerate() {
            if node.kind != OpKind::Input && self.in_edges[v].is_empty() {
                return Err(GraphError::OrphanNode(v));
            }
        }
        let order = self.topo_order().ok_or(GraphError::Cyclic)?;
        // Reachability from the set of inputs.
        let mut reach = vec![false; self.nodes.len()];
        for (v, node) in self.nodes.iter().enumerate() {
            if node.kind == OpKind::Input {
                reach[v] = true;
            }
        }
        for &v in &order {
            if reach[v] {
                for &w in &self.out_edges[v] {
                    reach[w] = true;
                }
            }
        }
        if let Some(v) = reach.iter().position(|&r| !r) {
            return Err(GraphError::Unreachable(v));
        }
        Ok(())
    }

    // ----- analytic cost aggregates (consumed by zoo/ddlsim/baselines) -----

    /// Forward-pass FLOPs for a single example.
    pub fn flops_per_example(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| node_flops(n.kind, &n.attrs))
            .sum()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| node_params(n.kind, &n.attrs))
            .sum()
    }

    /// Number of weight layers (conv + dense), the paper's `#layers` feature.
    pub fn num_layers(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_layer()).count()
    }

    /// Total activation elements for one example (memory-traffic proxy).
    pub fn activation_elems(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| node_activation_elems(&n.attrs))
            .sum()
    }

    /// Fraction of conv FLOPs performed by depthwise/grouped convolutions —
    /// a strong determinant of hardware efficiency (low arithmetic
    /// intensity), used by the simulator.
    pub fn grouped_flop_fraction(&self) -> f64 {
        let mut grouped = 0.0;
        let mut total = 0.0;
        for n in &self.nodes {
            if n.kind.is_conv() {
                let f = node_flops(n.kind, &n.attrs);
                total += f;
                if matches!(n.kind, OpKind::DepthwiseConv | OpKind::GroupConv) {
                    grouped += f;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            grouped / total
        }
    }

    /// Fraction of nodes that are branch joins (Sum/Concat/Mul) — a proxy
    /// for kernel-launch/fragmentation overhead in the efficiency model.
    pub fn branching_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let joins = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Sum | OpKind::Concat | OpKind::Mul))
            .count();
        joins as f64 / self.nodes.len() as f64
    }

    /// Histogram of op kinds, normalized to sum to 1 (a decoder target for
    /// the surrogate GHN objective).
    pub fn op_histogram(&self) -> Vec<f32> {
        let mut h = vec![0.0f32; OpKind::COUNT];
        for n in &self.nodes {
            h[n.kind.index()] += 1.0;
        }
        let total: f32 = h.iter().sum();
        if total > 0.0 {
            for x in &mut h {
                *x /= total;
            }
        }
        h
    }

    /// Longest path length (in edges) from an input to an output — the
    /// "depth" target of the surrogate objective.
    pub fn depth(&self) -> usize {
        let order = match self.topo_order() {
            Some(o) => o,
            None => return 0,
        };
        let mut dist = vec![0usize; self.nodes.len()];
        let mut best = 0;
        for &v in &order {
            for &w in &self.out_edges[v] {
                dist[w] = dist[w].max(dist[v] + 1);
                best = best.max(dist[w]);
            }
        }
        best
    }

    /// A stable 64-bit structural fingerprint of the graph: FNV-1a over
    /// every node's op kind and attributes plus the full edge list, in
    /// storage order. Two graphs built the same way (e.g. the same zoo
    /// model resolved twice) hash identically regardless of `name` or node
    /// labels, which makes the fingerprint a usable cache key for derived
    /// artifacts such as GHN embeddings. Not a cryptographic hash; the
    /// value is stable across processes and platforms.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        fold(self.nodes.len() as u64);
        for n in &self.nodes {
            fold(n.kind.index() as u64);
            fold(n.attrs.c_in as u64);
            fold(n.attrs.c_out as u64);
            fold(n.attrs.kernel as u64);
            fold(n.attrs.stride as u64);
            fold(n.attrs.groups as u64);
            fold(n.attrs.spatial as u64);
        }
        for (u, outs) in self.out_edges.iter().enumerate() {
            for &v in outs {
                fold(u as u64);
                fold(v as u64);
            }
        }
        h
    }

    /// JSON serialization (the on-disk format for traces and registries).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("CompGraph serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// input → conv → relu → output, with a skip input → sum.
    fn small_graph() -> CompGraph {
        let mut g = CompGraph::new("tiny");
        let input = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 32), "in");
        let conv = g.chain(input, OpKind::Conv, NodeAttrs::conv(3, 16, 3, 1, 32), "c1");
        let relu = g.chain(conv, OpKind::Relu, NodeAttrs::elementwise(16, 32), "r1");
        let sum = g.add_node(OpKind::Sum, NodeAttrs::elementwise(16, 32), "s");
        g.add_edge(relu, sum);
        g.add_edge(input, sum);
        let _out = g.chain(sum, OpKind::Output, NodeAttrs::elementwise(16, 32), "out");
        g
    }

    #[test]
    fn fingerprint_ignores_names_but_sees_structure() {
        let a = small_graph();
        let mut b = small_graph();
        b.name = "renamed".into();
        assert_eq!(a.fingerprint(), b.fingerprint(), "name must not affect the hash");

        // A structural change (one extra edge) must change the hash.
        let mut c = small_graph();
        c.add_edge(0, 2);
        assert_ne!(a.fingerprint(), c.fingerprint());

        // An attribute change must change the hash.
        let mut d = CompGraph::new("tiny");
        let input = d.add_node(OpKind::Input, NodeAttrs::elementwise(3, 32), "in");
        let conv = d.chain(input, OpKind::Conv, NodeAttrs::conv(3, 32, 3, 1, 32), "c1");
        let relu = d.chain(conv, OpKind::Relu, NodeAttrs::elementwise(32, 32), "r1");
        let sum = d.add_node(OpKind::Sum, NodeAttrs::elementwise(32, 32), "s");
        d.add_edge(relu, sum);
        d.add_edge(input, sum);
        let _out = d.chain(sum, OpKind::Output, NodeAttrs::elementwise(32, 32), "out");
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = small_graph();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_nodes()];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for u in 0..g.num_nodes() {
            for &v in g.successors(u) {
                assert!(pos[u] < pos[v], "edge {u}->{v} violated");
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut g = CompGraph::new("cyclic");
        let a = g.add_node(OpKind::Input, NodeAttrs::default(), "a");
        let b = g.chain(a, OpKind::Relu, NodeAttrs::default(), "b");
        let c = g.chain(b, OpKind::Output, NodeAttrs::default(), "c");
        g.add_edge(c, b);
        assert!(g.topo_order().is_none());
        assert_eq!(g.validate(), Err(GraphError::Cyclic));
    }

    #[test]
    fn validate_accepts_small_graph() {
        assert_eq!(small_graph().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_output() {
        let mut g = CompGraph::new("no-out");
        let _ = g.add_node(OpKind::Input, NodeAttrs::default(), "in");
        assert_eq!(g.validate(), Err(GraphError::NoOutput));
    }

    #[test]
    fn validate_rejects_orphan() {
        let mut g = small_graph();
        let _orphan = g.add_node(OpKind::Relu, NodeAttrs::default(), "orphan");
        assert_eq!(g.validate(), Err(GraphError::OrphanNode(5)));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = CompGraph::new("dup");
        let a = g.add_node(OpKind::Input, NodeAttrs::default(), "a");
        let b = g.add_node(OpKind::Output, NodeAttrs::default(), "b");
        g.add_edge(a, b);
        g.add_edge(a, b);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = small_graph();
        let n = g.num_nodes();
        let a = g.adjacency_flat();
        for u in 0..n {
            for v in 0..n {
                let has = g.successors(u).contains(&v);
                assert_eq!(a[u * n + v] == 1.0, has);
            }
        }
    }

    #[test]
    fn depth_of_chain() {
        let g = small_graph();
        // in→conv→relu→sum→out = 4 edges.
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn aggregates_are_positive() {
        let g = small_graph();
        assert!(g.flops_per_example() > 0.0);
        assert!(g.num_params() > 0);
        assert_eq!(g.num_layers(), 1);
    }

    #[test]
    fn json_round_trip() {
        let g = small_graph();
        let s = g.to_json();
        let g2 = CompGraph::from_json(&s).unwrap();
        assert_eq!(g2.name, g.name);
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.nodes(), g.nodes());
    }

    #[test]
    fn op_histogram_sums_to_one() {
        let h = small_graph().op_histogram();
        let s: f32 = h.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = CompGraph::new("x");
        let a = g.add_node(OpKind::Input, NodeAttrs::default(), "a");
        g.add_edge(a, a);
    }
}
