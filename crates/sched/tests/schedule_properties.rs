//! Property tests over schedule validity: whatever the policy and
//! estimator, the produced schedule must be *physically consistent*.

use pddl_cluster::ServerClass;
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use pddl_sched::policy::Policy;
use pddl_sched::{
    DeadlineAware, FcfsFixed, NaiveEstimator, QueueSimulator, SchedJob, SpjfBackfill,
};
use pddl_tensor::Rng;
use proptest::prelude::*;

const MODELS: [&str; 5] = ["resnet18", "vgg16", "squeezenet1_1", "alexnet", "mobilenet_v2"];

fn random_jobs(n: usize, seed: u64) -> Vec<SchedJob> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            let model = MODELS[rng.below(MODELS.len())];
            let submit = rng.uniform(0.0, 60.0) as f64;
            let mut j = SchedJob::new(i, Workload::new(model, "cifar10", 128, 1), submit);
            if rng.chance(0.5) {
                j = j.with_deadline(submit + rng.uniform(30.0, 400.0) as f64);
            }
            let min = 1 + rng.below(3);
            j.with_server_range(min, min + rng.below(6))
        })
        .collect()
}

/// Checks physical consistency of a trace against its job set and capacity.
fn assert_valid(trace: &pddl_sched::ScheduleTrace, jobs: &[SchedJob], capacity: usize) {
    assert_eq!(trace.outcomes.len(), jobs.len(), "lost jobs");
    for o in &trace.outcomes {
        let job = jobs.iter().find(|j| j.id == o.id).unwrap();
        assert!(o.start + 1e-9 >= job.submit_time, "job {} started early", o.id);
        assert!(o.finish > o.start, "non-positive runtime");
        assert!(o.servers >= 1 && o.servers <= job.max_servers.max(1));
    }
    // Capacity: at every start event, the sum of overlapping allocations
    // must not exceed the pool.
    for o in &trace.outcomes {
        let t = o.start + 1e-6;
        let in_use: usize = trace
            .outcomes
            .iter()
            .filter(|x| x.start <= t && t < x.finish)
            .map(|x| x.servers)
            .sum();
        assert!(
            in_use <= capacity,
            "overcommit at t={t}: {in_use} > {capacity}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn schedules_are_physically_consistent(seed in any::<u64>(), n in 1usize..7, capacity in 4usize..16) {
        let sim = Simulator::new(SimConfig::default());
        let q = QueueSimulator::new(capacity, ServerClass::GpuP100, &sim);
        let jobs = random_jobs(n, seed);
        let est = NaiveEstimator { assumed_secs: 60.0 };
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(FcfsFixed { servers_per_job: 4 }),
            Box::new(DeadlineAware),
            Box::new(SpjfBackfill),
        ];
        for p in policies {
            let trace = q.run(&jobs, p.as_ref(), &est);
            assert_valid(&trace, &jobs, capacity);
        }
    }

    #[test]
    fn makespan_never_beats_total_work_over_capacity(seed in any::<u64>(), n in 2usize..6) {
        // Lower bound: makespan ≥ Σ(serial work)/capacity under any policy.
        let capacity = 8;
        let sim = Simulator::new(SimConfig::default());
        let q = QueueSimulator::new(capacity, ServerClass::GpuP100, &sim);
        let jobs = random_jobs(n, seed);
        let est = NaiveEstimator { assumed_secs: 60.0 };
        let trace = q.run(&jobs, &SpjfBackfill, &est);
        let total_server_secs = trace.metrics.server_seconds;
        prop_assert!(
            trace.metrics.makespan + 1e-6 >= total_server_secs / capacity as f64 * 0.99,
            "makespan {} below work bound {}",
            trace.metrics.makespan,
            total_server_secs / capacity as f64
        );
    }
}
