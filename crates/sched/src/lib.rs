//! Prediction-driven cluster scheduling — the integration the paper leaves
//! as future work ("integrate PredictDDL with production-level cluster
//! schedulers", §VI) and motivates in its abstract ("allocating the
//! required cluster resources for completing critical model training tasks
//! before a deadline").
//!
//! The crate provides:
//! * a [`estimator::RuntimeEstimator`] abstraction over runtime predictors
//!   (PredictDDL, an oracle wrapping the simulator, and a naive
//!   constant-work heuristic);
//! * allocation [`policy`]s that consume estimates: FCFS with fixed
//!   allocation, deadline-aware smallest-feasible sizing, and
//!   shortest-predicted-job-first with backfill;
//! * a discrete-event [`simulator`] that runs a job queue against a finite
//!   server pool, charging *actual* (simulated-testbed) runtimes while the
//!   policy only ever sees *predictions* — so estimator error shows up as
//!   missed deadlines and idle servers, exactly as in production;
//! * the continual-refit loop at production scale: seeded [`arrivals`]
//!   (Poisson/burst), a [`live::LivePredictor`] that folds every completed
//!   job back into an online ridge model with Page–Hinkley drift
//!   detection, and the heap-based [`engine`] that runs 10⁵–10⁶ jobs with
//!   deadline SLOs, mid-run cost-model shifts, and policies (FIFO,
//!   SJF-by-prediction, deadline-aware right-sizing,
//!   autoscale-by-prediction) driven by the live predictor — all
//!   bit-deterministic for a fixed seed.

pub mod arrivals;
pub mod engine;
pub mod estimator;
pub mod job;
pub mod live;
pub mod policy;
pub mod simulator;

pub use arrivals::ArrivalProcess;
pub use engine::{
    run_engine, AccuracyBucket, AccuracySummary, ArrivalSpec, AutoscaleConfig, CostShift,
    DriftRecord, EngineConfig, EngineMetrics, EngineTrace, PolicyKind,
};
pub use estimator::{NaiveEstimator, OracleEstimator, PredictDdlEstimator, RuntimeEstimator};
pub use job::{JobId, SchedJob};
pub use live::{LiveConfig, LivePredictor};
pub use policy::{DeadlineAware, FcfsFixed, Policy, SpjfBackfill};
pub use simulator::{QueueSimulator, ScheduleMetrics, ScheduleTrace};
