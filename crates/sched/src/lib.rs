//! Prediction-driven cluster scheduling — the integration the paper leaves
//! as future work ("integrate PredictDDL with production-level cluster
//! schedulers", §VI) and motivates in its abstract ("allocating the
//! required cluster resources for completing critical model training tasks
//! before a deadline").
//!
//! The crate provides:
//! * a [`estimator::RuntimeEstimator`] abstraction over runtime predictors
//!   (PredictDDL, an oracle wrapping the simulator, and a naive
//!   constant-work heuristic);
//! * allocation [`policy`]s that consume estimates: FCFS with fixed
//!   allocation, deadline-aware smallest-feasible sizing, and
//!   shortest-predicted-job-first with backfill;
//! * a discrete-event [`simulator`] that runs a job queue against a finite
//!   server pool, charging *actual* (simulated-testbed) runtimes while the
//!   policy only ever sees *predictions* — so estimator error shows up as
//!   missed deadlines and idle servers, exactly as in production.

pub mod estimator;
pub mod job;
pub mod policy;
pub mod simulator;

pub use estimator::{NaiveEstimator, OracleEstimator, PredictDdlEstimator, RuntimeEstimator};
pub use job::{JobId, SchedJob};
pub use policy::{DeadlineAware, FcfsFixed, Policy, SpjfBackfill};
pub use simulator::{QueueSimulator, ScheduleMetrics, ScheduleTrace};
