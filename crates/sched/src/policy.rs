//! Allocation policies.
//!
//! A policy examines the waiting queue and the number of free servers, and
//! decides which job to start next and with how many servers — using only
//! *estimates* of runtimes, never ground truth.

use crate::estimator::RuntimeEstimator;
use crate::job::SchedJob;

/// A start decision: job index within the waiting queue + server count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    pub queue_index: usize,
    pub servers: usize,
}

/// Scheduling policy interface.
pub trait Policy {
    /// Chooses the next job to launch from `waiting` given `free` servers
    /// and the current time, or `None` to stay idle until the next event.
    fn next(
        &self,
        waiting: &[SchedJob],
        free: usize,
        now: f64,
        est: &dyn RuntimeEstimator,
    ) -> Option<Decision>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// First-come-first-served with a fixed per-job allocation (what a plain
/// SLURM partition does when users hard-code `--nodes`).
pub struct FcfsFixed {
    pub servers_per_job: usize,
}

impl Policy for FcfsFixed {
    fn next(
        &self,
        waiting: &[SchedJob],
        free: usize,
        _now: f64,
        _est: &dyn RuntimeEstimator,
    ) -> Option<Decision> {
        let job = waiting.first()?;
        let servers = self
            .servers_per_job
            .clamp(job.min_servers, job.max_servers);
        (servers <= free).then_some(Decision { queue_index: 0, servers })
    }

    fn name(&self) -> &'static str {
        "fcfs-fixed"
    }
}

/// Deadline-aware right-sizing: take the earliest-deadline waiting job and
/// give it the *smallest* feasible allocation that (per the estimator)
/// meets its deadline; jobs without deadlines get their minimum.
pub struct DeadlineAware;

impl Policy for DeadlineAware {
    fn next(
        &self,
        waiting: &[SchedJob],
        free: usize,
        now: f64,
        est: &dyn RuntimeEstimator,
    ) -> Option<Decision> {
        if waiting.is_empty() || free == 0 {
            return None;
        }
        // Earliest deadline first; deadline-free jobs last.
        let queue_index = (0..waiting.len())
            .min_by(|&a, &b| {
                let da = waiting[a].deadline.unwrap_or(f64::INFINITY);
                let db = waiting[b].deadline.unwrap_or(f64::INFINITY);
                da.partial_cmp(&db).unwrap()
            })
            .expect("non-empty queue");
        let job = &waiting[queue_index];
        let cap = job.max_servers.min(free);
        if cap < job.min_servers {
            return None;
        }
        match job.deadline {
            None => Some(Decision { queue_index, servers: job.min_servers.min(cap) }),
            Some(deadline) => {
                let slack = deadline - now;
                for n in job.min_servers..=cap {
                    if let Some(t) = est.estimate(&job.workload, n) {
                        if t <= slack {
                            return Some(Decision { queue_index, servers: n });
                        }
                    }
                }
                // Cannot meet the deadline: run wide to minimize the miss.
                Some(Decision { queue_index, servers: cap })
            }
        }
    }

    fn name(&self) -> &'static str {
        "deadline-aware"
    }
}

/// Shortest-predicted-job-first with backfill: order by estimated runtime
/// at the job's minimum allocation; start the shortest job that fits in the
/// free servers (skipping over larger ones — backfill).
pub struct SpjfBackfill;

impl Policy for SpjfBackfill {
    fn next(
        &self,
        waiting: &[SchedJob],
        free: usize,
        _now: f64,
        est: &dyn RuntimeEstimator,
    ) -> Option<Decision> {
        let mut best: Option<(usize, f64)> = None;
        for (i, job) in waiting.iter().enumerate() {
            if job.min_servers > free {
                continue; // backfill: skip jobs that cannot start now
            }
            let t = est
                .estimate(&job.workload, job.min_servers)
                .unwrap_or(f64::INFINITY);
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((i, t));
            }
        }
        best.map(|(queue_index, _)| {
            let job = &waiting[queue_index];
            Decision { queue_index, servers: job.min_servers.min(free) }
        })
    }

    fn name(&self) -> &'static str {
        "spjf-backfill"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::NaiveEstimator;
    use pddl_ddlsim::Workload;

    fn job(id: usize, submit: f64) -> SchedJob {
        SchedJob::new(id, Workload::standard("resnet18", "cifar10"), submit)
    }

    #[test]
    fn fcfs_takes_head_of_queue_when_it_fits() {
        let p = FcfsFixed { servers_per_job: 4 };
        let est = NaiveEstimator { assumed_secs: 10.0 };
        let q = vec![job(1, 0.0), job(2, 1.0)];
        let d = p.next(&q, 8, 0.0, &est).unwrap();
        assert_eq!(d, Decision { queue_index: 0, servers: 4 });
        assert!(p.next(&q, 3, 0.0, &est).is_none(), "head doesn't fit → wait");
    }

    #[test]
    fn deadline_aware_prefers_earliest_deadline() {
        let p = DeadlineAware;
        let est = NaiveEstimator { assumed_secs: 100.0 };
        let q = vec![
            job(1, 0.0).with_deadline(500.0),
            job(2, 0.0).with_deadline(100.0),
        ];
        let d = p.next(&q, 16, 0.0, &est).unwrap();
        assert_eq!(d.queue_index, 1);
    }

    #[test]
    fn deadline_aware_right_sizes() {
        let p = DeadlineAware;
        // Naive: t = 100/n. Deadline slack 30 → needs n ≥ 4.
        let est = NaiveEstimator { assumed_secs: 100.0 };
        let q = vec![job(1, 0.0).with_deadline(30.0).with_server_range(1, 16)];
        let d = p.next(&q, 16, 0.0, &est).unwrap();
        assert_eq!(d.servers, 4);
    }

    #[test]
    fn deadline_aware_runs_wide_when_hopeless() {
        let p = DeadlineAware;
        let est = NaiveEstimator { assumed_secs: 10_000.0 };
        let q = vec![job(1, 0.0).with_deadline(1.0).with_server_range(1, 8)];
        let d = p.next(&q, 6, 0.0, &est).unwrap();
        assert_eq!(d.servers, 6, "should run as wide as possible");
    }

    #[test]
    fn backfill_skips_oversized_jobs() {
        let p = SpjfBackfill;
        let est = NaiveEstimator { assumed_secs: 100.0 };
        let q = vec![
            job(1, 0.0).with_server_range(8, 8), // cannot fit in 4 free
            job(2, 0.0).with_server_range(2, 4),
        ];
        let d = p.next(&q, 4, 0.0, &est).unwrap();
        assert_eq!(d.queue_index, 1);
    }
}
