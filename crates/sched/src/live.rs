//! The live, continually-refit runtime predictor that drives the
//! large-scale engine's policies.
//!
//! [`LivePredictor`] wraps [`pddl_regress::OnlineRidge`] in log space over
//! per-workload-class curve features, runs every completed job through the
//! [`pddl_regress::PageHinkley`] drift detector, and — when the detector
//! fires — estimates the shift's log magnitude from the post-shift
//! residual run, translates the window's history onto the new level, and
//! refits in canonical order. A `frozen` predictor (the paper's fit-once
//! baseline) is the same object with updates disabled: it keeps predicting
//! from the bootstrap fit while the world moves on, which is exactly the
//! comparison `BENCH_sched.json` pins.

use pddl_regress::{DriftConfig, DriftEvent, OnlineRidge, PageHinkley, ResidualScale};
use std::collections::VecDeque;

/// Recent prequential residuals retained for shift-magnitude estimation
/// (a drift fire reads at most [`DriftEvent::run_length`] of them).
const RECENT_RESIDUALS: usize = 64;

/// Configuration for a [`LivePredictor`].
#[derive(Clone, Copy, Debug)]
pub struct LiveConfig {
    /// Ridge penalty λ on the log-space model.
    pub lambda: f64,
    /// Sliding-window capacity backing drift refits.
    pub window: usize,
    /// Page–Hinkley parameters on standardized log-residuals.
    pub drift: DriftConfig,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self { lambda: 1e-3, window: 4096, drift: DriftConfig::default() }
    }
}

/// Per-class runtime curve features in log space: each workload class `c`
/// owns three slots `[1, ln n, 1/n]`, so the model is an independent
/// `ln T = a_c + b_c·ln n + c_c/n` curve per class sharing one ridge
/// solve — a good low-dimensional fit to the simulator's
/// compute/communication scaling over realistic server counts.
fn class_features(class: usize, classes: usize, servers: usize) -> Vec<f64> {
    let mut x = vec![0.0f64; 3 * classes];
    let n = servers.max(1) as f64;
    x[3 * class] = 1.0;
    x[3 * class + 1] = n.ln();
    x[3 * class + 2] = 1.0 / n;
    x
}

/// A runtime predictor that learns from every completed job.
#[derive(Clone, Debug)]
pub struct LivePredictor {
    model: OnlineRidge,
    detector: PageHinkley,
    scale: ResidualScale,
    recent: VecDeque<f64>,
    classes: usize,
    frozen: bool,
    observed: u64,
}

impl LivePredictor {
    /// New predictor over `classes` workload classes.
    pub fn new(classes: usize, cfg: LiveConfig) -> Self {
        assert!(classes >= 1);
        Self {
            model: OnlineRidge::new(3 * classes, cfg.lambda, cfg.window),
            detector: PageHinkley::new(cfg.drift),
            scale: ResidualScale::default(),
            recent: VecDeque::with_capacity(RECENT_RESIDUALS),
            classes,
            frozen: false,
            observed: 0,
        }
    }

    /// Bootstrap fit from a batch of `(class, servers, actual_secs)`
    /// samples — the offline training phase every deployment starts with.
    /// Seeds the residual-scale estimate from the fitted model so the
    /// drift detector standardizes against healthy noise from the start.
    pub fn pretrain(&mut self, samples: &[(usize, usize, f64)]) {
        for &(class, servers, secs) in samples {
            let x = class_features(class, self.classes, servers);
            self.model.observe(&x, secs.max(1e-9).ln());
        }
        for &(class, servers, secs) in samples {
            let x = class_features(class, self.classes, servers);
            let r = secs.max(1e-9).ln() - self.model.predict(&x);
            self.scale.absorb(r);
        }
    }

    /// A frozen copy of this predictor: same coefficients forever, no
    /// drift detection — the paper's fit-once baseline.
    pub fn freeze(&self) -> Self {
        let mut f = self.clone();
        f.frozen = true;
        f
    }

    /// Whether this predictor ignores observations.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Predicted runtime in seconds for one job.
    pub fn predict_secs(&self, class: usize, servers: usize) -> f64 {
        let x = class_features(class, self.classes, servers);
        self.model.predict(&x).exp()
    }

    /// Feeds one completed job back. Computes the prequential residual
    /// (against the model *before* this update), runs drift detection on
    /// its standardized value, and folds the observation in. On a drift
    /// fire, the shift's log magnitude is estimated as the mean of the
    /// post-shift residual run (in excess of the healthy residual mean),
    /// the pre-shift window history is translated onto the new level, and
    /// the model refits — one-step adaptation, because an abrupt shift
    /// fires the detector within a few samples, far too few to refit the
    /// per-class curves from post-shift data alone. Returns the drift
    /// event, if any. No-op when frozen.
    pub fn observe(&mut self, class: usize, servers: usize, actual_secs: f64) -> Option<DriftEvent> {
        if self.frozen {
            return None;
        }
        self.observed += 1;
        let x = class_features(class, self.classes, servers);
        let y = actual_secs.max(1e-9).ln();
        let r = y - self.model.predict(&x);
        let z = self.scale.standardize(r);
        let event = self.detector.observe(z);
        if self.recent.len() == RECENT_RESIDUALS {
            self.recent.pop_front();
        }
        self.recent.push_back(r);
        self.scale.absorb(r);
        self.model.observe(&x, y);
        if let Some(e) = event {
            let run = (e.run_length as usize).clamp(1, self.recent.len());
            let run_mean =
                self.recent.iter().rev().take(run).sum::<f64>() / run as f64;
            let dy = run_mean - self.scale.mean();
            self.model.translate_targets_and_refit(dy, run);
            self.recent.clear();
            // The old noise estimate belongs to the old regime: a
            // prediction-driven policy reallocates jobs after the shift,
            // which widens the residual spread, and standardizing the new
            // spread by the stale (smaller) σ would slowly re-fire the
            // detector on model-misspecification bias. Re-bootstrap the
            // scale from post-recovery residuals instead.
            self.scale = ResidualScale::default();
        }
        event
    }

    /// Observations accepted (lifetime, excluding pretraining).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Window refits performed by the underlying model.
    pub fn refits(&self) -> u64 {
        self.model.refits()
    }

    /// Drift events fired by the detector.
    pub fn drift_events(&self) -> u64 {
        self.detector.events()
    }

    /// Current drift statistic (diagnostics).
    pub fn drift_statistic(&self) -> f64 {
        self.detector.statistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    /// Synthetic two-class ground truth: T = base · n^{-0.8} · e^{noise}.
    fn sample(rng: &mut Rng, class: usize, servers: usize, factor: f64) -> f64 {
        let base = [120.0, 400.0][class];
        let noise = (rng.normal() as f64 * 0.03).exp();
        factor * base * (servers as f64).powf(-0.8) * noise
    }

    fn pretrained(rng: &mut Rng) -> LivePredictor {
        let mut p = LivePredictor::new(2, LiveConfig::default());
        let mut samples = Vec::new();
        for class in 0..2 {
            for servers in [1usize, 2, 4, 8, 16] {
                for _ in 0..4 {
                    samples.push((class, servers, sample(rng, class, servers, 1.0)));
                }
            }
        }
        p.pretrain(&samples);
        p
    }

    #[test]
    fn pretrained_predictions_are_accurate() {
        let mut rng = Rng::new(3);
        let p = pretrained(&mut rng);
        for class in 0..2 {
            for servers in [1usize, 4, 16] {
                let truth = [120.0, 400.0][class] * (servers as f64).powf(-0.8);
                let pred = p.predict_secs(class, servers);
                let rel = (pred / truth - 1.0).abs();
                assert!(rel < 0.1, "class {class} n {servers}: rel err {rel}");
            }
        }
    }

    #[test]
    fn recovers_after_cost_shift_while_frozen_degrades() {
        let mut rng = Rng::new(5);
        let mut live = pretrained(&mut rng);
        let frozen = live.freeze();
        // Healthy stream, then a 2.5× cost shift.
        for i in 0..500 {
            let class = i % 2;
            let servers = [1usize, 2, 4, 8][i % 4];
            assert!(live.observe(class, servers, sample(&mut rng, class, servers, 1.0)).is_none());
        }
        let mut fired = 0;
        for i in 0..800 {
            let class = i % 2;
            let servers = [1usize, 2, 4, 8][i % 4];
            if live.observe(class, servers, sample(&mut rng, class, servers, 2.5)).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "drift should fire exactly once for one shift");
        // Post-recovery accuracy: live tracks the new regime, frozen does not.
        let mut live_err = 0.0;
        let mut frozen_err = 0.0;
        let mut n = 0.0;
        for i in 0..200 {
            let class = i % 2;
            let servers = [1usize, 2, 4, 8][i % 4];
            let actual = sample(&mut rng, class, servers, 2.5);
            live_err += (live.predict_secs(class, servers) / actual - 1.0).abs();
            frozen_err += (frozen.predict_secs(class, servers) / actual - 1.0).abs();
            n += 1.0;
            live.observe(class, servers, actual);
        }
        live_err /= n;
        frozen_err /= n;
        assert!(live_err < 0.15, "live err {live_err}");
        assert!(frozen_err > 3.0 * live_err, "frozen {frozen_err} vs live {live_err}");
    }

    #[test]
    fn frozen_never_updates_or_fires() {
        let mut rng = Rng::new(9);
        let live = pretrained(&mut rng);
        let mut frozen = live.freeze();
        let before = frozen.predict_secs(0, 4).to_bits();
        for _ in 0..200 {
            assert!(frozen.observe(0, 4, 1e6).is_none());
        }
        assert_eq!(frozen.predict_secs(0, 4).to_bits(), before);
        assert_eq!(frozen.drift_events(), 0);
        assert_eq!(frozen.observed(), 0);
    }
}
