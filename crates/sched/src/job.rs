//! Scheduler job descriptions.

use pddl_ddlsim::Workload;
use serde::{Deserialize, Serialize};

/// Identifier of a job within one queue.
pub type JobId = usize;

/// A training job submitted to the scheduler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchedJob {
    pub id: JobId,
    pub workload: Workload,
    /// Arrival time (seconds since simulation start).
    pub submit_time: f64,
    /// Optional completion deadline (absolute time).
    pub deadline: Option<f64>,
    /// Minimum servers the job accepts.
    pub min_servers: usize,
    /// Maximum servers the job can use.
    pub max_servers: usize,
}

impl SchedJob {
    pub fn new(id: JobId, workload: Workload, submit_time: f64) -> Self {
        Self { id, workload, submit_time, deadline: None, min_servers: 1, max_servers: 16 }
    }

    pub fn with_deadline(mut self, deadline: f64) -> Self {
        assert!(deadline > self.submit_time, "deadline before submission");
        self.deadline = Some(deadline);
        self
    }

    pub fn with_server_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid server range");
        self.min_servers = min;
        self.max_servers = max;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let j = SchedJob::new(1, Workload::standard("resnet18", "cifar10"), 10.0)
            .with_deadline(100.0)
            .with_server_range(2, 8);
        assert_eq!(j.deadline, Some(100.0));
        assert_eq!((j.min_servers, j.max_servers), (2, 8));
    }

    #[test]
    #[should_panic(expected = "deadline before submission")]
    fn rejects_past_deadline() {
        let _ = SchedJob::new(1, Workload::standard("resnet18", "cifar10"), 10.0)
            .with_deadline(5.0);
    }

    #[test]
    #[should_panic(expected = "invalid server range")]
    fn rejects_inverted_range() {
        let _ = SchedJob::new(1, Workload::standard("resnet18", "cifar10"), 0.0)
            .with_server_range(8, 2);
    }
}
