//! Discrete-event queue simulation.
//!
//! Jobs arrive over time; the policy launches them with some allocation;
//! each running job occupies its servers for its **actual** duration (from
//! the testbed simulator), which the policy never saw — only the
//! estimator's prediction. Estimator error therefore manifests as missed
//! deadlines, queue buildup, or wasted width, exactly as in a real
//! deployment.

use crate::engine::sched_telemetry;
use crate::estimator::RuntimeEstimator;
use crate::job::{JobId, SchedJob};
use crate::policy::Policy;
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::Simulator;

/// Per-job outcome.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub id: JobId,
    pub start: f64,
    pub finish: f64,
    pub servers: usize,
    pub deadline_met: Option<bool>,
}

/// Aggregate schedule quality.
#[derive(Clone, Debug)]
pub struct ScheduleMetrics {
    /// Completion time of the last job.
    pub makespan: f64,
    /// Mean queueing delay (start − submit).
    pub mean_wait: f64,
    /// Deadline hits / jobs-with-deadlines.
    pub deadlines_met: usize,
    pub deadlines_total: usize,
    /// Σ servers × runtime (the resource bill).
    pub server_seconds: f64,
}

/// Full result: outcomes + metrics.
#[derive(Clone, Debug)]
pub struct ScheduleTrace {
    pub outcomes: Vec<JobOutcome>,
    pub metrics: ScheduleMetrics,
}

/// The event-driven queue simulator.
pub struct QueueSimulator<'a> {
    pub total_servers: usize,
    pub class: ServerClass,
    /// Ground-truth runtime source (the "testbed").
    pub sim: &'a Simulator,
}

impl<'a> QueueSimulator<'a> {
    pub fn new(total_servers: usize, class: ServerClass, sim: &'a Simulator) -> Self {
        assert!(total_servers >= 1);
        Self { total_servers, class, sim }
    }

    /// Actual runtime of a job at an allocation (ground truth, with the
    /// run-to-run noise a real testbed would show).
    fn actual_runtime(&self, job: &SchedJob, servers: usize) -> f64 {
        let cluster = ClusterState::homogeneous(self.class, servers);
        self.sim
            .measure(&job.workload, &cluster, job.id as u64)
            .unwrap_or(f64::INFINITY)
    }

    /// Runs the queue to completion under a policy + estimator.
    pub fn run(
        &self,
        jobs: &[SchedJob],
        policy: &dyn Policy,
        est: &dyn RuntimeEstimator,
    ) -> ScheduleTrace {
        let mut pending: Vec<SchedJob> = {
            let mut p = jobs.to_vec();
            p.sort_by(|a, b| a.submit_time.partial_cmp(&b.submit_time).unwrap());
            p
        };
        let mut waiting: Vec<SchedJob> = Vec::new();
        // (finish_time, servers, outcome index)
        let mut running: Vec<(f64, usize, usize)> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut free = self.total_servers;
        let mut now = 0.0f64;
        let mut guard = 0usize;

        loop {
            guard += 1;
            assert!(guard < 100_000, "scheduler livelock");
            // Admit arrivals up to `now`.
            while pending.first().is_some_and(|j| j.submit_time <= now) {
                waiting.push(pending.remove(0));
            }
            // Launch as many jobs as the policy wants right now.
            while let Some(d) = policy.next(&waiting, free, now, est) {
                let job = waiting.remove(d.queue_index);
                let servers = d.servers.min(free).max(1);
                let runtime = self.actual_runtime(&job, servers);
                let finish = now + runtime;
                free -= servers;
                // Per-job queue wait lands in the shared telemetry
                // histogram, so sched runs expose p50/p95/p99 waits in
                // `{"op":"metrics"}` exposition, not just the aggregate
                // mean below.
                let t = sched_telemetry();
                t.queue_wait.record(((now - job.submit_time) * 1e6) as u64);
                t.launched.inc();
                outcomes.push(JobOutcome {
                    id: job.id,
                    start: now,
                    finish,
                    servers,
                    deadline_met: job.deadline.map(|dl| finish <= dl),
                });
                running.push((finish, servers, outcomes.len() - 1));
                if free == 0 {
                    break;
                }
            }
            // Advance to the next event: a completion or an arrival.
            let next_finish = running
                .iter()
                .map(|&(f, _, _)| f)
                .fold(f64::INFINITY, f64::min);
            let next_arrival = pending.first().map_or(f64::INFINITY, |j| j.submit_time);
            let next = next_finish.min(next_arrival);
            if !next.is_finite() {
                break; // nothing running, nothing arriving
            }
            now = next;
            // Release finished jobs.
            let mut i = 0;
            while i < running.len() {
                if running[i].0 <= now + 1e-9 {
                    free += running[i].1;
                    running.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        assert!(waiting.is_empty() && pending.is_empty(), "jobs left unscheduled");

        // Metrics.
        let makespan = outcomes.iter().map(|o| o.finish).fold(0.0, f64::max);
        let submit: std::collections::HashMap<JobId, f64> =
            jobs.iter().map(|j| (j.id, j.submit_time)).collect();
        let mean_wait = outcomes
            .iter()
            .map(|o| o.start - submit[&o.id])
            .sum::<f64>()
            / outcomes.len().max(1) as f64;
        let deadlines_total = outcomes.iter().filter(|o| o.deadline_met.is_some()).count();
        let deadlines_met = outcomes
            .iter()
            .filter(|o| o.deadline_met == Some(true))
            .count();
        let server_seconds = outcomes
            .iter()
            .map(|o| (o.finish - o.start) * o.servers as f64)
            .sum();
        ScheduleTrace {
            outcomes,
            metrics: ScheduleMetrics {
                makespan,
                mean_wait,
                deadlines_met,
                deadlines_total,
                server_seconds,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{NaiveEstimator, OracleEstimator};
    use crate::policy::{DeadlineAware, FcfsFixed, SpjfBackfill};
    use pddl_ddlsim::{SimConfig, Workload};

    fn sim() -> Simulator {
        Simulator::new(SimConfig::default())
    }

    fn mixed_queue() -> Vec<SchedJob> {
        vec![
            SchedJob::new(0, Workload::new("vgg16", "cifar10", 128, 2), 0.0),
            SchedJob::new(1, Workload::new("squeezenet1_1", "cifar10", 128, 2), 0.0),
            SchedJob::new(2, Workload::new("resnet18", "cifar10", 128, 2), 5.0),
            SchedJob::new(3, Workload::new("alexnet", "cifar10", 128, 2), 5.0),
        ]
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let sim = sim();
        let q = QueueSimulator::new(8, ServerClass::GpuP100, &sim);
        let est = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(FcfsFixed { servers_per_job: 4 }),
            Box::new(DeadlineAware),
            Box::new(SpjfBackfill),
        ];
        for p in policies {
            let trace = q.run(&mixed_queue(), p.as_ref(), &est);
            assert_eq!(trace.outcomes.len(), 4, "{}", p.name());
            assert!(trace.metrics.makespan > 0.0);
        }
    }

    #[test]
    fn spjf_runs_short_jobs_first() {
        let sim = sim();
        let q = QueueSimulator::new(2, ServerClass::GpuP100, &sim);
        let est = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
        let jobs = vec![
            SchedJob::new(0, Workload::new("vgg16", "cifar10", 128, 2), 0.0)
                .with_server_range(2, 2),
            SchedJob::new(1, Workload::new("squeezenet1_1", "cifar10", 128, 2), 0.0)
                .with_server_range(2, 2),
        ];
        let trace = q.run(&jobs, &SpjfBackfill, &est);
        let squeeze = trace.outcomes.iter().find(|o| o.id == 1).unwrap();
        let vgg = trace.outcomes.iter().find(|o| o.id == 0).unwrap();
        assert!(squeeze.start < vgg.start, "short job should start first");
    }

    #[test]
    fn deadline_policy_with_oracle_beats_fixed_allocation() {
        // Tight-but-feasible deadlines; the fixed policy wastes servers on
        // easy jobs and starves tight ones.
        let sim = sim();
        let q = QueueSimulator::new(8, ServerClass::GpuP100, &sim);
        let est = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
        let jobs: Vec<SchedJob> = vec![
            SchedJob::new(0, Workload::new("vgg16", "cifar10", 128, 2), 0.0)
                .with_deadline(90.0)
                .with_server_range(1, 8),
            SchedJob::new(1, Workload::new("densenet161", "cifar10", 128, 2), 0.0)
                .with_deadline(120.0)
                .with_server_range(1, 8),
            SchedJob::new(2, Workload::new("squeezenet1_1", "cifar10", 128, 2), 0.0)
                .with_deadline(60.0)
                .with_server_range(1, 8),
            SchedJob::new(3, Workload::new("resnet50", "cifar10", 128, 2), 0.0)
                .with_deadline(150.0)
                .with_server_range(1, 8),
        ];
        let aware = q.run(&jobs, &DeadlineAware, &est);
        let fixed = q.run(&jobs, &FcfsFixed { servers_per_job: 8 }, &est);
        assert!(
            aware.metrics.deadlines_met >= fixed.metrics.deadlines_met,
            "aware {}/{} vs fixed {}/{}",
            aware.metrics.deadlines_met,
            aware.metrics.deadlines_total,
            fixed.metrics.deadlines_met,
            fixed.metrics.deadlines_total
        );
        // Right-sizing should also use fewer server-seconds than always-8.
        assert!(aware.metrics.server_seconds <= fixed.metrics.server_seconds);
    }

    #[test]
    fn wildly_wrong_estimator_hurts_deadlines() {
        let sim = sim();
        let q = QueueSimulator::new(8, ServerClass::GpuP100, &sim);
        let oracle = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
        // Estimator that thinks everything is instant → allocates minimum.
        let wrong = NaiveEstimator { assumed_secs: 0.001 };
        let jobs: Vec<SchedJob> = (0..4)
            .map(|i| {
                SchedJob::new(i, Workload::new("vgg16", "cifar10", 128, 2), 0.0)
                    .with_deadline(120.0)
                    .with_server_range(1, 8)
            })
            .collect();
        let good = q.run(&jobs, &DeadlineAware, &oracle);
        let bad = q.run(&jobs, &DeadlineAware, &wrong);
        assert!(
            good.metrics.deadlines_met >= bad.metrics.deadlines_met,
            "oracle {} vs wrong {}",
            good.metrics.deadlines_met,
            bad.metrics.deadlines_met
        );
    }

    #[test]
    fn arrivals_are_respected() {
        let sim = sim();
        let q = QueueSimulator::new(4, ServerClass::GpuP100, &sim);
        let est = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
        let jobs = vec![
            SchedJob::new(0, Workload::new("squeezenet1_1", "cifar10", 128, 1), 50.0),
        ];
        let trace = q.run(&jobs, &SpjfBackfill, &est);
        assert!(trace.outcomes[0].start >= 50.0, "started before arrival");
    }
}
