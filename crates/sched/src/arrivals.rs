//! Seeded arrival processes for the large-scale scheduling engine.
//!
//! Both processes generate the full arrival sequence up front from one
//! [`Rng`] stream, so a fixed seed yields a bit-identical job trace on
//! every run — the foundation of the engine's determinism contract.

use pddl_tensor::Rng;

/// How jobs arrive over time.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson process: independent exponential inter-arrival
    /// times at `rate` jobs/second.
    Poisson {
        /// Mean arrival rate, jobs per second.
        rate: f64,
    },
    /// Piecewise-constant bursty process: every `period` seconds the rate
    /// jumps to `burst_rate` for `burst_len` seconds, then falls back to
    /// `base_rate`. Generated exactly (memorylessness lets each phase
    /// boundary restart the exponential draw without bias).
    Burst {
        /// Rate outside bursts, jobs per second.
        base_rate: f64,
        /// Rate inside bursts, jobs per second.
        burst_rate: f64,
        /// Burst cycle period, seconds.
        period: f64,
        /// Burst duration at the start of each cycle, seconds.
        burst_len: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Burst { base_rate, burst_rate, period, burst_len } => {
                let phase = t - (t / period).floor() * period;
                if phase < burst_len {
                    burst_rate
                } else {
                    base_rate
                }
            }
        }
    }

    /// Next phase boundary strictly after `t` (infinity for homogeneous
    /// processes).
    ///
    /// The strictness matters: [`Self::generate`] restarts stalled draws
    /// *at* the returned boundary, so if this ever returned `t` itself the
    /// generator would loop forever. When `period` is not exactly
    /// representable, `(t / period).floor()` can round a cycle down for a
    /// `t` sitting on a cycle edge, making the naive candidate equal `t`
    /// again — each candidate at or before `t` is therefore skipped.
    fn next_boundary(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { .. } => f64::INFINITY,
            ArrivalProcess::Burst { period, burst_len, .. } => {
                let cycle = (t / period).floor();
                let mut b = cycle * period + burst_len;
                if b <= t {
                    b = (cycle + 1.0) * period;
                }
                if b <= t {
                    b = (cycle + 1.0) * period + burst_len;
                }
                b
            }
        }
    }

    /// Generates `n` arrival times in nondecreasing order. Exact for both
    /// processes: a draw that crosses a rate boundary is restarted at the
    /// boundary under the new rate (valid by memorylessness of the
    /// exponential), so burst edges are sharp rather than smeared.
    pub fn generate(&self, n: usize, rng: &mut Rng) -> Vec<f64> {
        let mut times = Vec::with_capacity(n);
        let mut t = 0.0f64;
        while times.len() < n {
            let rate = self.rate_at(t);
            assert!(rate > 0.0, "arrival rate must be positive");
            // Exponential inter-arrival: −ln(1−u)/rate, u ∈ [0,1).
            let dt = -(1.0 - rng.next_f64()).ln() / rate;
            let boundary = self.next_boundary(t);
            if t + dt < boundary {
                t += dt;
                times.push(t);
            } else {
                // The draw spilled past a rate change: restart there.
                t = boundary;
            }
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut rng = Rng::new(1);
        let times = ArrivalProcess::Poisson { rate: 10.0 }.generate(20_000, &mut rng);
        assert_eq!(times.len(), 20_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let horizon = *times.last().unwrap();
        let observed = times.len() as f64 / horizon;
        assert!((observed - 10.0).abs() < 0.5, "observed rate {observed}");
    }

    #[test]
    fn burst_concentrates_arrivals_in_burst_windows() {
        let p = ArrivalProcess::Burst {
            base_rate: 1.0,
            burst_rate: 50.0,
            period: 100.0,
            burst_len: 10.0,
        };
        let mut rng = Rng::new(2);
        let times = p.generate(30_000, &mut rng);
        let in_burst = times
            .iter()
            .filter(|&&t| (t - (t / 100.0).floor() * 100.0) < 10.0)
            .count();
        // Expected share: 50·10 / (50·10 + 1·90) ≈ 0.847.
        let share = in_burst as f64 / times.len() as f64;
        assert!(share > 0.8, "burst share {share}");
    }

    /// Chains `next_boundary` from boundary to boundary across many
    /// non-dyadic periods. The naive boundary computation stalls (returns
    /// `t` itself) once floating-point rounding drops a cycle, which froze
    /// `generate` mid-run; this pins the strict-progress guarantee.
    #[test]
    fn boundary_chain_always_advances_under_fp_stress() {
        for k in 1..200u64 {
            let period = 0.07 * k as f64 + 0.013;
            let p = ArrivalProcess::Burst {
                base_rate: 1.0,
                burst_rate: 2.0,
                period,
                burst_len: 0.25 * period,
            };
            let mut t = 0.0f64;
            for _ in 0..2000 {
                let b = p.next_boundary(t);
                assert!(b > t, "boundary chain stalled at t={t} (period {period})");
                t = b;
            }
        }
    }

    #[test]
    fn fixed_seed_is_bit_deterministic() {
        let p = ArrivalProcess::Burst {
            base_rate: 2.0,
            burst_rate: 20.0,
            period: 50.0,
            burst_len: 5.0,
        };
        let a = p.generate(5000, &mut Rng::new(7));
        let b = p.generate(5000, &mut Rng::new(7));
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&a), bits(&b));
    }
}
