//! Large-scale discrete-event scheduling engine driven by the live
//! continually-refit predictor.
//!
//! Where [`crate::simulator::QueueSimulator`] replays a handful of jobs
//! against a frozen estimator, this engine runs 10⁵–10⁶ jobs through a
//! binary-heap event queue in O(log n) per event: seeded Poisson/burst
//! [`crate::arrivals::ArrivalProcess`] arrivals, deadline SLOs, a finite
//! (optionally autoscaled) server pool, and a mid-run **cost-model shift**
//! that multiplies every subsequent runtime — the scenario where the
//! paper's fit-once predictor quietly rots. Policies consume the *live*
//! [`crate::live::LivePredictor`]; a frozen clone of the same bootstrap
//! fit is shadow-evaluated on every job so one run yields the
//! frozen-vs-online accuracy comparison committed in `BENCH_sched.json`.
//!
//! Per-job ground truth is a precomputed `expected[class][servers]` table
//! from [`pddl_ddlsim::Simulator::expected_time`] (O(1) per job) times the
//! active shift factor times seeded lognormal run-to-run noise, so the
//! engine is bit-deterministic for a fixed seed: every f64 in
//! [`EngineMetrics`] is reproducible across runs and thread counts.

use crate::arrivals::ArrivalProcess;
use crate::live::{LiveConfig, LivePredictor};
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use pddl_regress::DriftEvent;
use pddl_tensor::Rng;
use pddl_telemetry::{Counter, Histogram};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::OnceLock;

/// Bounded backfill scan depth for the heap-ordered policies: how many
/// queue heads may be skipped looking for a job that fits the free pool.
const BACKFILL_SCAN: usize = 64;

pub(crate) struct SchedTelemetry {
    pub(crate) queue_wait: &'static Histogram,
    pub(crate) launched: &'static Counter,
}

pub(crate) fn sched_telemetry() -> &'static SchedTelemetry {
    static T: OnceLock<SchedTelemetry> = OnceLock::new();
    T.get_or_init(|| SchedTelemetry {
        queue_wait: pddl_telemetry::histogram("sched.queue_wait_us"),
        launched: pddl_telemetry::counter("sched.jobs_launched"),
    })
}

/// Allocation policy the engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// First-in-first-out, requested allocation, head-of-line blocking —
    /// the predictor-free baseline.
    Fifo,
    /// Shortest-predicted-job-first (priority fixed at enqueue) with a
    /// bounded backfill scan.
    SjfPredicted,
    /// Earliest-deadline-first with prediction-driven right-sizing: each
    /// job gets the smallest allocation predicted to meet its deadline.
    DeadlineAware,
    /// FIFO over an elastic pool: capacity scales with the *predicted*
    /// backlog (see [`AutoscaleConfig`]).
    AutoscalePredicted,
}

impl PolicyKind {
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::SjfPredicted => "sjf_predicted",
            PolicyKind::DeadlineAware => "deadline_aware",
            PolicyKind::AutoscalePredicted => "autoscale_predicted",
        }
    }
}

/// A step change in the cluster cost model: every job *started* at or
/// after the shift point runs `factor`× its pre-shift expected time
/// (factors compound across multiple shifts). `at_fraction` positions the
/// shift within the arrival horizon (0 = first arrival, 1 = last).
#[derive(Clone, Copy, Debug)]
pub struct CostShift {
    pub at_fraction: f64,
    pub factor: f64,
}

/// Elastic-pool parameters for [`PolicyKind::AutoscalePredicted`].
/// Backlog thresholds are measured in mean pre-shift job runtimes per
/// server, so they stay meaningful across workload mixes.
#[derive(Clone, Copy, Debug)]
pub struct AutoscaleConfig {
    pub min_servers: usize,
    pub max_servers: usize,
    /// Servers added/removed per adjustment.
    pub step: usize,
    /// Scale up when predicted backlog per server exceeds this many mean
    /// job runtimes.
    pub high_watermark: f64,
    /// Scale down below this many mean job runtimes per server.
    pub low_watermark: f64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_servers: 32,
            max_servers: 128,
            step: 8,
            high_watermark: 4.0,
            low_watermark: 1.0,
        }
    }
}

/// Arrival intensity, expressed either directly or as a target load ρ
/// (offered work / pool capacity) resolved against the engine's expected
/// runtime table so scenarios stay calibrated across workload mixes.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalSpec {
    /// Use this process as-is.
    Explicit(ArrivalProcess),
    /// Poisson arrivals loading the pool to `rho`.
    PoissonLoad { rho: f64 },
    /// Bursty arrivals: base load `rho_base` with periodic bursts to
    /// `rho_burst`. The cycle period is `period_runtimes` mean job
    /// runtimes; each burst occupies `burst_fraction` of the cycle.
    BurstLoad {
        rho_base: f64,
        rho_burst: f64,
        period_runtimes: f64,
        burst_fraction: f64,
    },
}

/// Full engine configuration. Build with [`EngineConfig::new`] and adjust
/// fields; every field participates in the determinism contract.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub seed: u64,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Server-pool size (initial capacity under autoscale).
    pub servers: usize,
    pub server_class: ServerClass,
    /// Workload classes jobs are drawn from (uniformly).
    pub classes: Vec<Workload>,
    pub arrivals: ArrivalSpec,
    /// Fraction of jobs carrying a deadline SLO.
    pub deadline_fraction: f64,
    /// Deadline slack range: deadline = submit + U(lo,hi) × expected
    /// pre-shift runtime at the requested allocation.
    pub deadline_slack: (f64, f64),
    /// Mid-run cost-model shifts (may be empty).
    pub shifts: Vec<CostShift>,
    pub policy: PolicyKind,
    pub live: LiveConfig,
    /// Bootstrap observations per (class, allocation) pair.
    pub pretrain_per_pair: usize,
    /// Largest allocation the table covers (right-sizing search space).
    pub max_alloc: usize,
    pub autoscale: AutoscaleConfig,
    /// Buckets in the frozen-vs-online accuracy curve.
    pub accuracy_buckets: usize,
    /// Jobs launched after a shift that are excluded from the "recovered"
    /// post-shift error (the drift-detect + refit transient).
    pub post_shift_skip: usize,
    /// Stop processing events after this time (for conservation tests);
    /// `None` runs to completion.
    pub horizon: Option<f64>,
    /// Run-to-run lognormal noise σ on actual runtimes.
    pub noise_sigma: f64,
}

/// The standard six-class CNN mix (one epoch of CIFAR-10 each) used by
/// the committed benchmark and the golden fixtures.
pub fn default_classes() -> Vec<Workload> {
    ["resnet18", "vgg16", "squeezenet1_1", "alexnet", "resnet50", "densenet161"]
        .iter()
        .map(|m| Workload::new(m, "cifar10", 128, 1))
        .collect()
}

impl EngineConfig {
    pub fn new(policy: PolicyKind, jobs: usize, seed: u64) -> Self {
        Self {
            seed,
            jobs,
            servers: 64,
            server_class: ServerClass::GpuP100,
            classes: default_classes(),
            arrivals: ArrivalSpec::PoissonLoad { rho: 0.7 },
            deadline_fraction: 0.5,
            deadline_slack: (1.5, 4.0),
            shifts: Vec::new(),
            policy,
            live: LiveConfig::default(),
            pretrain_per_pair: 3,
            max_alloc: 16,
            autoscale: AutoscaleConfig::default(),
            accuracy_buckets: 24,
            post_shift_skip: 1000,
            horizon: None,
            noise_sigma: 0.03,
        }
    }
}

/// Bit-deterministic aggregate outcome of one engine run.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineMetrics {
    /// Arrivals admitted (≤ configured jobs when a horizon cuts the run).
    pub submitted: u64,
    pub completed: u64,
    /// Still queued when the run stopped (0 without a horizon).
    pub in_queue: u64,
    /// Still running when the run stopped (0 without a horizon).
    pub in_flight: u64,
    pub deadlines_total: u64,
    pub deadlines_met: u64,
    pub deadlines_missed: u64,
    pub makespan: f64,
    pub mean_wait: f64,
    pub p50_wait: f64,
    pub p95_wait: f64,
    pub p99_wait: f64,
    /// Busy server-seconds / available capacity-seconds.
    pub utilization: f64,
    pub server_seconds: f64,
    pub capacity_seconds: f64,
    pub peak_queue: u64,
    pub peak_capacity: u64,
    pub drift_events: u64,
    pub refits: u64,
    /// Observations fed to the live model (== completed jobs observed).
    pub updates: u64,
}

impl EngineMetrics {
    /// Missed-deadline fraction among deadline-carrying completed jobs.
    pub fn missed_pct(&self) -> f64 {
        if self.deadlines_total == 0 {
            0.0
        } else {
            100.0 * self.deadlines_missed as f64 / self.deadlines_total as f64
        }
    }

    /// The f64 fields in a fixed order, for exact-bits golden pinning.
    pub fn float_fields(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("makespan", self.makespan),
            ("mean_wait", self.mean_wait),
            ("p50_wait", self.p50_wait),
            ("p95_wait", self.p95_wait),
            ("p99_wait", self.p99_wait),
            ("utilization", self.utilization),
            ("server_seconds", self.server_seconds),
            ("capacity_seconds", self.capacity_seconds),
        ]
    }

    /// The integer fields in a fixed order, for golden pinning.
    pub fn int_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("in_queue", self.in_queue),
            ("in_flight", self.in_flight),
            ("deadlines_total", self.deadlines_total),
            ("deadlines_met", self.deadlines_met),
            ("deadlines_missed", self.deadlines_missed),
            ("peak_queue", self.peak_queue),
            ("peak_capacity", self.peak_capacity),
            ("drift_events", self.drift_events),
            ("refits", self.refits),
            ("updates", self.updates),
        ]
    }
}

/// One point of the frozen-vs-online accuracy curve (bucketed by launch
/// time over the arrival horizon).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccuracyBucket {
    /// Bucket end time, seconds.
    pub t_end: f64,
    /// Mean |pred/actual − 1| of the live predictor in this bucket.
    pub online_err: f64,
    /// Same for the frozen baseline.
    pub frozen_err: f64,
    pub jobs: u64,
}

/// Frozen-vs-online prediction accuracy around the shift point.
#[derive(Clone, Debug, PartialEq)]
pub struct AccuracySummary {
    /// Mean relative error before the first shift.
    pub pre_shift_online: f64,
    pub pre_shift_frozen: f64,
    /// Mean relative error after the first shift, excluding the
    /// configured recovery transient.
    pub post_shift_online: f64,
    pub post_shift_frozen: f64,
    /// `post_shift_online / pre_shift_online` — ≤ 1.5 means the online
    /// model recovered.
    pub recovery_ratio: f64,
    /// `post_shift_frozen / post_shift_online` — how much worse the
    /// fit-once baseline is after the shift.
    pub frozen_vs_online: f64,
    pub curve: Vec<AccuracyBucket>,
}

/// A drift fire with the simulation time at which it was observed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftRecord {
    pub time: f64,
    pub event: DriftEvent,
}

/// Full result of one engine run.
#[derive(Clone, Debug)]
pub struct EngineTrace {
    pub metrics: EngineMetrics,
    pub accuracy: AccuracySummary,
    pub drift: Vec<DriftRecord>,
    /// Resolved absolute shift times (from [`CostShift::at_fraction`]).
    pub shift_times: Vec<f64>,
}

struct JobSpec {
    class: u32,
    servers: u32,
    submit: f64,
    /// `f64::INFINITY` when the job has no SLO.
    deadline: f64,
    /// Per-job lognormal noise factor on the actual runtime.
    noise: f64,
}

/// Accuracy set a launched job belongs to.
const ACC_PRE: u8 = 0;
const ACC_POST_SKIP: u8 = 1;
const ACC_POST: u8 = 2;

/// Runs the engine to completion (or to the configured horizon).
pub fn run_engine(cfg: &EngineConfig) -> EngineTrace {
    let classes = cfg.classes.len();
    assert!(classes >= 1, "need at least one workload class");
    assert!(cfg.servers >= 1 && cfg.max_alloc >= 1);
    let sim = Simulator::new(SimConfig { noise_sigma: 0.0, ..SimConfig::default() });

    // Pre-shift expected-runtime table: O(1) ground-truth lookups per job.
    let max_alloc = cfg.max_alloc.min(cfg.servers.max(cfg.autoscale.max_servers));
    let mut expected = vec![vec![f64::INFINITY; max_alloc + 1]; classes];
    for (c, (w, row)) in cfg.classes.iter().zip(expected.iter_mut()).enumerate() {
        for (n, slot) in row.iter_mut().enumerate().skip(1) {
            let cluster = ClusterState::homogeneous(cfg.server_class, n);
            *slot = sim
                .expected_time(w, &cluster)
                .unwrap_or_else(|e| panic!("infeasible class {c} at n={n}: {e:?}"));
        }
    }

    // Requested-allocation choices and the mean per-job work, used to
    // calibrate load-based arrival specs and autoscale watermarks.
    let req_choices: Vec<usize> =
        [1usize, 2, 4, 8].iter().copied().filter(|&n| n <= max_alloc.min(cfg.servers)).collect();
    let (mut mean_secs, mut mean_work) = (0.0f64, 0.0f64);
    for row in &expected {
        for &n in &req_choices {
            mean_secs += row[n];
            mean_work += row[n] * n as f64;
        }
    }
    let pairs = (classes * req_choices.len()) as f64;
    mean_secs /= pairs;
    mean_work /= pairs;

    let arrivals = match cfg.arrivals {
        ArrivalSpec::Explicit(p) => p,
        ArrivalSpec::PoissonLoad { rho } => {
            ArrivalProcess::Poisson { rate: rho * cfg.servers as f64 / mean_work }
        }
        ArrivalSpec::BurstLoad { rho_base, rho_burst, period_runtimes, burst_fraction } => {
            let per_rho = cfg.servers as f64 / mean_work;
            let period = period_runtimes * mean_secs;
            ArrivalProcess::Burst {
                base_rate: rho_base * per_rho,
                burst_rate: rho_burst * per_rho,
                period,
                burst_len: burst_fraction * period,
            }
        }
    };

    // Deterministic job generation from one seeded stream.
    let mut rng = Rng::new(cfg.seed);
    let submit_times = arrivals.generate(cfg.jobs, &mut rng);
    let horizon_est = submit_times.last().copied().unwrap_or(0.0).max(1e-9);
    let mut jobs = Vec::with_capacity(cfg.jobs);
    for &submit in &submit_times {
        let class = rng.below(classes);
        let servers = *rng.pick(&req_choices);
        let deadline = if rng.chance(cfg.deadline_fraction) {
            let slack =
                rng.uniform(cfg.deadline_slack.0 as f32, cfg.deadline_slack.1 as f32) as f64;
            submit + slack * expected[class][servers]
        } else {
            f64::INFINITY
        };
        let noise = rng.lognormal_factor(cfg.noise_sigma as f32) as f64;
        jobs.push(JobSpec {
            class: class as u32,
            servers: servers as u32,
            submit,
            deadline,
            noise,
        });
    }

    // Resolve shifts against the arrival horizon, sorted by time.
    let mut shift_times: Vec<(f64, f64)> = cfg
        .shifts
        .iter()
        .map(|s| (s.at_fraction * horizon_est, s.factor))
        .collect();
    shift_times.sort_by(|a, b| a.0.total_cmp(&b.0));
    let first_shift = shift_times.first().map(|&(t, _)| t);
    let shift_factor = |t: f64| -> f64 {
        shift_times.iter().take_while(|&&(at, _)| t >= at).map(|&(_, f)| f).product()
    };

    // Bootstrap both predictors on pre-shift observations, then freeze
    // one — the fit-once baseline the accuracy comparison is against.
    let mut boot_rng = Rng::new(cfg.seed ^ 0xB007_5EED);
    let mut boot = Vec::with_capacity(classes * max_alloc * cfg.pretrain_per_pair);
    for (c, row) in expected.iter().enumerate() {
        for (n, &exp_secs) in row.iter().enumerate().skip(1) {
            for _ in 0..cfg.pretrain_per_pair {
                let secs = exp_secs * boot_rng.lognormal_factor(cfg.noise_sigma as f32) as f64;
                boot.push((c, n, secs));
            }
        }
    }
    let mut live = LivePredictor::new(classes, cfg.live);
    live.pretrain(&boot);
    let frozen = live.freeze();

    // ---- Event loop state ----
    let n_jobs = jobs.len();
    let mut waiting_fifo: VecDeque<u32> = VecDeque::new();
    let mut waiting_heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut finish_heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut start = vec![f64::NAN; n_jobs];
    let mut finish = vec![f64::NAN; n_jobs];
    let mut alloc = vec![0u32; n_jobs];
    let mut pred_online = vec![0.0f64; n_jobs];
    let mut pred_frozen = vec![0.0f64; n_jobs];
    let mut actual = vec![0.0f64; n_jobs];
    let mut acc_set = vec![ACC_PRE; n_jobs];
    let mut enq_pred = vec![0.0f64; n_jobs];
    let mut waits: Vec<f64> = Vec::with_capacity(n_jobs);

    let elastic = cfg.policy == PolicyKind::AutoscalePredicted;
    let mut capacity = if elastic {
        cfg.servers.clamp(cfg.autoscale.min_servers, cfg.autoscale.max_servers)
    } else {
        cfg.servers
    };
    let mut in_use = 0usize;
    let mut backlog_pred = 0.0f64;
    let mut busy_integral = 0.0f64;
    let mut capacity_integral = 0.0f64;
    let mut now = 0.0f64;
    let mut ptr = 0usize;
    let mut completed = 0u64;
    let mut post_launches = 0u64;
    let mut deadlines_total = 0u64;
    let mut deadlines_met = 0u64;
    let mut peak_queue = 0usize;
    let mut peak_capacity = capacity;
    let mut drift: Vec<DriftRecord> = Vec::new();

    // Accuracy accumulators.
    let buckets = cfg.accuracy_buckets.max(1);
    let bucket_width = horizon_est / buckets as f64;
    let mut bucket_online = vec![0.0f64; buckets];
    let mut bucket_frozen = vec![0.0f64; buckets];
    let mut bucket_jobs = vec![0u64; buckets];
    let mut sums = [[0.0f64; 2]; 3]; // [acc_set][online|frozen]
    let mut counts = [0u64; 3];

    let telemetry = sched_telemetry();
    let uses_heap =
        matches!(cfg.policy, PolicyKind::SjfPredicted | PolicyKind::DeadlineAware);

    macro_rules! queue_len {
        () => {
            if uses_heap { waiting_heap.len() } else { waiting_fifo.len() }
        };
    }

    loop {
        let next_arrival = if ptr < n_jobs { jobs[ptr].submit } else { f64::INFINITY };
        let next_finish =
            finish_heap.peek().map_or(f64::INFINITY, |Reverse((b, _))| f64::from_bits(*b));
        let t = next_arrival.min(next_finish);
        if !t.is_finite() {
            break;
        }
        if let Some(h) = cfg.horizon {
            if t > h {
                break;
            }
        }
        busy_integral += in_use as f64 * (t - now);
        capacity_integral += capacity as f64 * (t - now);
        now = t;

        if next_finish <= next_arrival {
            // Drain every completion at this instant.
            while let Some(&Reverse((b, id))) = finish_heap.peek() {
                if f64::from_bits(b) > now {
                    break;
                }
                finish_heap.pop();
                let id = id as usize;
                in_use -= alloc[id] as usize;
                completed += 1;
                let a = actual[id];
                if jobs[id].deadline.is_finite() {
                    deadlines_total += 1;
                    if finish[id] <= jobs[id].deadline {
                        deadlines_met += 1;
                    }
                }
                // Shadow-evaluate both predictors, then feed the live one.
                let online_err = (pred_online[id] / a - 1.0).abs();
                let frozen_err = (pred_frozen[id] / a - 1.0).abs();
                let set = acc_set[id] as usize;
                sums[set][0] += online_err;
                sums[set][1] += frozen_err;
                counts[set] += 1;
                let bi = ((start[id] / bucket_width) as usize).min(buckets - 1);
                bucket_online[bi] += online_err;
                bucket_frozen[bi] += frozen_err;
                bucket_jobs[bi] += 1;
                if let Some(e) = live.observe(jobs[id].class as usize, alloc[id] as usize, a) {
                    drift.push(DriftRecord { time: now, event: e });
                }
            }
        } else {
            // One arrival (arrival times are continuous, ties vanishingly
            // rare — and handled correctly by re-entering the loop).
            let id = ptr as u32;
            let j = &jobs[ptr];
            ptr += 1;
            match cfg.policy {
                PolicyKind::Fifo | PolicyKind::AutoscalePredicted => {
                    waiting_fifo.push_back(id);
                }
                PolicyKind::SjfPredicted => {
                    let p = live.predict_secs(j.class as usize, j.servers as usize);
                    enq_pred[id as usize] = p;
                    waiting_heap.push(Reverse((p.to_bits(), id)));
                }
                PolicyKind::DeadlineAware => {
                    waiting_heap.push(Reverse((j.deadline.to_bits(), id)));
                }
            }
            if elastic {
                backlog_pred += live.predict_secs(j.class as usize, j.servers as usize);
            }
            peak_queue = peak_queue.max(queue_len!());
        }

        if elastic {
            let per_server = backlog_pred / capacity.max(1) as f64;
            let a = &cfg.autoscale;
            if per_server > a.high_watermark * mean_secs && capacity < a.max_servers {
                capacity = (capacity + a.step).min(a.max_servers);
                peak_capacity = peak_capacity.max(capacity);
            } else if per_server < a.low_watermark * mean_secs
                && capacity > a.min_servers.max(in_use)
            {
                capacity = (capacity - a.step.min(capacity)).max(a.min_servers).max(in_use);
            }
        }

        // ---- Launch phase ----
        let mut launch = |id: u32, servers: usize, now: f64| {
            let id = id as usize;
            let j = &jobs[id];
            let c = j.class as usize;
            let runtime = expected[c][servers] * shift_factor(now) * j.noise;
            start[id] = now;
            finish[id] = now + runtime;
            alloc[id] = servers as u32;
            actual[id] = runtime;
            pred_online[id] = live.predict_secs(c, servers);
            pred_frozen[id] = frozen.predict_secs(c, servers);
            acc_set[id] = match first_shift {
                Some(at) if now >= at => {
                    post_launches += 1;
                    if post_launches <= cfg.post_shift_skip as u64 {
                        ACC_POST_SKIP
                    } else {
                        ACC_POST
                    }
                }
                _ => ACC_PRE,
            };
            let wait = now - j.submit;
            waits.push(wait);
            telemetry.queue_wait.record((wait * 1e6) as u64);
            telemetry.launched.inc();
            finish_heap.push(Reverse((finish[id].to_bits(), id as u32)));
        };

        match cfg.policy {
            PolicyKind::Fifo | PolicyKind::AutoscalePredicted => {
                while let Some(&id) = waiting_fifo.front() {
                    let need = jobs[id as usize].servers as usize;
                    if in_use + need > capacity {
                        break;
                    }
                    waiting_fifo.pop_front();
                    in_use += need;
                    if elastic {
                        backlog_pred = (backlog_pred
                            - live.predict_secs(
                                jobs[id as usize].class as usize,
                                jobs[id as usize].servers as usize,
                            ))
                        .max(0.0);
                    }
                    launch(id, need, now);
                }
            }
            PolicyKind::SjfPredicted | PolicyKind::DeadlineAware => {
                let mut skipped: Vec<Reverse<(u64, u32)>> = Vec::new();
                let mut scanned = 0usize;
                while scanned < BACKFILL_SCAN && in_use < capacity {
                    let Some(Reverse((key, id))) = waiting_heap.pop() else { break };
                    let j = &jobs[id as usize];
                    let need = if cfg.policy == PolicyKind::DeadlineAware {
                        right_size(&live, j, now, max_alloc)
                    } else {
                        j.servers as usize
                    };
                    if in_use + need <= capacity {
                        in_use += need;
                        launch(id, need, now);
                    } else {
                        skipped.push(Reverse((key, id)));
                        scanned += 1;
                    }
                }
                for entry in skipped {
                    waiting_heap.push(entry);
                }
            }
        }
    }

    // ---- Metrics assembly ----
    let in_queue = queue_len!() as u64;
    let in_flight = finish_heap.len() as u64;
    let makespan = finish
        .iter()
        .filter(|f| f.is_finite())
        .fold(0.0f64, |m, &f| if f <= now || cfg.horizon.is_none() { m.max(f) } else { m });
    let mean_wait = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let mut sorted_waits = waits.clone();
    sorted_waits.sort_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if sorted_waits.is_empty() {
            return 0.0;
        }
        let idx = ((q * sorted_waits.len() as f64).ceil() as usize).max(1) - 1;
        sorted_waits[idx.min(sorted_waits.len() - 1)]
    };
    let utilization = if capacity_integral > 0.0 { busy_integral / capacity_integral } else { 0.0 };

    let mean_of = |sum: f64, n: u64| if n == 0 { 0.0 } else { sum / n as f64 };
    let pre_online = mean_of(sums[ACC_PRE as usize][0], counts[ACC_PRE as usize]);
    let pre_frozen = mean_of(sums[ACC_PRE as usize][1], counts[ACC_PRE as usize]);
    let post_online = mean_of(sums[ACC_POST as usize][0], counts[ACC_POST as usize]);
    let post_frozen = mean_of(sums[ACC_POST as usize][1], counts[ACC_POST as usize]);
    let accuracy = AccuracySummary {
        pre_shift_online: pre_online,
        pre_shift_frozen: pre_frozen,
        post_shift_online: post_online,
        post_shift_frozen: post_frozen,
        recovery_ratio: if pre_online > 0.0 { post_online / pre_online } else { 0.0 },
        frozen_vs_online: if post_online > 0.0 { post_frozen / post_online } else { 0.0 },
        curve: (0..buckets)
            .map(|i| AccuracyBucket {
                t_end: bucket_width * (i + 1) as f64,
                online_err: mean_of(bucket_online[i], bucket_jobs[i]),
                frozen_err: mean_of(bucket_frozen[i], bucket_jobs[i]),
                jobs: bucket_jobs[i],
            })
            .collect(),
    };

    EngineTrace {
        metrics: EngineMetrics {
            submitted: ptr as u64,
            completed,
            in_queue,
            in_flight,
            deadlines_total,
            deadlines_met,
            deadlines_missed: deadlines_total - deadlines_met,
            makespan,
            mean_wait,
            p50_wait: pct(0.50),
            p95_wait: pct(0.95),
            p99_wait: pct(0.99),
            utilization,
            server_seconds: busy_integral,
            capacity_seconds: capacity_integral,
            peak_queue: peak_queue as u64,
            peak_capacity: peak_capacity as u64,
            drift_events: live.drift_events(),
            refits: live.refits(),
            updates: live.observed(),
        },
        accuracy,
        drift,
        shift_times: shift_times.iter().map(|&(t, _)| t).collect(),
    }
}

/// Smallest allocation the live predictor expects to meet the deadline;
/// falls back to the requested allocation (no SLO) or the maximum (SLO
/// already hopeless — throw width at it).
fn right_size(live: &LivePredictor, j: &JobSpec, now: f64, max_alloc: usize) -> usize {
    if !j.deadline.is_finite() {
        return j.servers as usize;
    }
    let slack = j.deadline - now;
    for n in 1..=max_alloc {
        if live.predict_secs(j.class as usize, n) <= slack {
            return n;
        }
    }
    max_alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyKind) -> EngineConfig {
        let mut cfg = EngineConfig::new(policy, 3000, 17);
        cfg.servers = 32;
        cfg.pretrain_per_pair = 2;
        cfg
    }

    fn bits(m: &EngineMetrics) -> Vec<u64> {
        let mut v: Vec<u64> = m.float_fields().iter().map(|(_, f)| f.to_bits()).collect();
        v.extend(m.int_fields().iter().map(|&(_, i)| i));
        v
    }

    #[test]
    fn all_policies_complete_every_job() {
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::SjfPredicted,
            PolicyKind::DeadlineAware,
            PolicyKind::AutoscalePredicted,
        ] {
            let t = run_engine(&quick(policy));
            assert_eq!(t.metrics.completed, 3000, "{}", policy.name());
            assert_eq!(t.metrics.in_queue, 0);
            assert_eq!(t.metrics.in_flight, 0);
            assert!(t.metrics.utilization > 0.0 && t.metrics.utilization <= 1.0);
        }
    }

    #[test]
    fn fixed_seed_is_bit_deterministic() {
        let cfg = quick(PolicyKind::SjfPredicted);
        let a = run_engine(&cfg);
        let b = run_engine(&cfg);
        assert_eq!(bits(&a.metrics), bits(&b.metrics));
    }

    #[test]
    fn horizon_conserves_jobs() {
        let mut cfg = quick(PolicyKind::Fifo);
        let full = run_engine(&cfg);
        cfg.horizon = Some(full.metrics.makespan * 0.4);
        let t = run_engine(&cfg);
        let m = &t.metrics;
        assert!(m.in_queue + m.in_flight > 0, "horizon should cut mid-run");
        assert_eq!(m.completed + m.in_queue + m.in_flight, m.submitted);
    }

    #[test]
    fn shift_fires_drift_exactly_once_and_online_recovers() {
        let mut cfg = EngineConfig::new(PolicyKind::Fifo, 20_000, 23);
        cfg.servers = 32;
        cfg.arrivals = ArrivalSpec::PoissonLoad { rho: 0.45 };
        cfg.shifts = vec![CostShift { at_fraction: 0.5, factor: 2.5 }];
        cfg.post_shift_skip = 500;
        let t = run_engine(&cfg);
        assert_eq!(t.drift.len(), 1, "one shift → one drift fire: {:?}", t.drift);
        assert_eq!(t.metrics.drift_events, 1);
        assert!(t.metrics.refits >= 1);
        let a = &t.accuracy;
        assert!(a.recovery_ratio <= 1.5, "online failed to recover: {a:?}");
        assert!(a.frozen_vs_online >= 3.0, "frozen not degraded enough: {a:?}");
    }

    #[test]
    fn prediction_driven_policies_beat_fifo_in_bursts() {
        let mk = |policy| {
            let mut cfg = EngineConfig::new(policy, 12_000, 31);
            cfg.servers = 32;
            cfg.arrivals = ArrivalSpec::BurstLoad {
                rho_base: 0.5,
                rho_burst: 2.5,
                period_runtimes: 4.0,
                burst_fraction: 0.25,
            };
            cfg.deadline_fraction = 0.7;
            run_engine(&cfg).metrics
        };
        let fifo = mk(PolicyKind::Fifo);
        let aware = mk(PolicyKind::DeadlineAware);
        assert!(
            aware.missed_pct() < fifo.missed_pct(),
            "deadline-aware {:.2}% vs fifo {:.2}%",
            aware.missed_pct(),
            fifo.missed_pct()
        );
    }
}
