//! Runtime estimators the scheduler can plug in.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{Simulator, Workload};
use predictddl::PredictDdl;

/// Anything that can guess how long a workload takes on `n` servers.
pub trait RuntimeEstimator {
    /// Estimated runtime in seconds, or `None` if the configuration is
    /// infeasible / unknown.
    fn estimate(&self, w: &Workload, servers: usize) -> Option<f64>;
}

/// PredictDDL as the estimator (the intended production integration).
pub struct PredictDdlEstimator<'a> {
    pub system: &'a PredictDdl,
    pub class: ServerClass,
}

impl RuntimeEstimator for PredictDdlEstimator<'_> {
    fn estimate(&self, w: &Workload, servers: usize) -> Option<f64> {
        let cluster = ClusterState::homogeneous(self.class, servers);
        self.system
            .predict_workload(w, &cluster)
            .ok()
            .map(|p| p.seconds)
    }
}

/// Perfect-information oracle (upper bound on scheduling quality).
pub struct OracleEstimator<'a> {
    pub sim: &'a Simulator,
    pub class: ServerClass,
}

impl RuntimeEstimator for OracleEstimator<'_> {
    fn estimate(&self, w: &Workload, servers: usize) -> Option<f64> {
        let cluster = ClusterState::homogeneous(self.class, servers);
        self.sim.expected_time(w, &cluster).ok()
    }
}

/// What a scheduler without a predictor does: assume every job takes the
/// same fixed time regardless of architecture, scaled by 1/servers.
pub struct NaiveEstimator {
    /// Assumed single-server runtime for any job, seconds.
    pub assumed_secs: f64,
}

impl RuntimeEstimator for NaiveEstimator {
    fn estimate(&self, _w: &Workload, servers: usize) -> Option<f64> {
        Some(self.assumed_secs / servers.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_ddlsim::SimConfig;

    #[test]
    fn oracle_matches_simulator() {
        let sim = Simulator::new(SimConfig::default());
        let est = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
        let w = Workload::standard("resnet18", "cifar10");
        let direct = sim
            .expected_time(&w, &ClusterState::homogeneous(ServerClass::GpuP100, 4))
            .unwrap();
        assert_eq!(est.estimate(&w, 4), Some(direct));
    }

    #[test]
    fn naive_ignores_architecture() {
        let est = NaiveEstimator { assumed_secs: 100.0 };
        let a = est.estimate(&Workload::standard("vgg16", "cifar10"), 2);
        let b = est.estimate(&Workload::standard("squeezenet1_1", "cifar10"), 2);
        assert_eq!(a, b);
        assert_eq!(a, Some(50.0));
    }

    #[test]
    fn oracle_none_on_infeasible() {
        let sim = Simulator::new(SimConfig::default());
        let est = OracleEstimator { sim: &sim, class: ServerClass::GpuP100 };
        // Absurd per-worker batch OOMs the P100.
        let w = Workload::new("wide_resnet101_2", "tiny-imagenet", 100_000, 1);
        assert_eq!(est.estimate(&w, 1), None);
    }
}
