//! Error metrics used throughout the evaluation.
//!
//! The paper reports (1) the relative error `Predicted/Actual` ("closer to 1
//! is better") and its deviation `|ratio − 1|`, and (2) RMSE for the
//! black-box/gray-box motivation figures.

/// Root mean squared error.
pub fn rmse(pred: &[f32], actual: &[f32]) -> f32 {
    assert_eq!(pred.len(), actual.len());
    assert!(!pred.is_empty(), "rmse of empty slice");
    let s: f64 = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| ((p - a) as f64).powi(2))
        .sum();
    (s / pred.len() as f64).sqrt() as f32
}

/// Per-sample prediction ratios `pred/actual` (the paper's plotted metric).
pub fn ratios(pred: &[f32], actual: &[f32]) -> Vec<f32> {
    assert_eq!(pred.len(), actual.len());
    pred.iter()
        .zip(actual)
        .map(|(p, a)| {
            debug_assert!(*a != 0.0, "actual value of zero");
            p / a
        })
        .collect()
}

/// Mean `|pred/actual − 1|` — the paper's "average prediction error".
pub fn mean_relative_error(pred: &[f32], actual: &[f32]) -> f32 {
    let r = ratios(pred, actual);
    r.iter().map(|x| (x - 1.0).abs()).sum::<f32>() / r.len() as f32
}

/// Maximum `|pred/actual − 1|`.
pub fn max_relative_error(pred: &[f32], actual: &[f32]) -> f32 {
    ratios(pred, actual)
        .iter()
        .map(|x| (x - 1.0).abs())
        .fold(0.0, f32::max)
}

/// Coefficient of determination R².
pub fn r2(pred: &[f32], actual: &[f32]) -> f32 {
    assert_eq!(pred.len(), actual.len());
    let mean: f64 = actual.iter().map(|&a| a as f64).sum::<f64>() / actual.len() as f64;
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| ((a - p) as f64).powi(2))
        .sum();
    let ss_tot: f64 = actual.iter().map(|&a| (a as f64 - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { f32::NEG_INFINITY };
    }
    (1.0 - ss_res / ss_tot) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mean_relative_error(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn rmse_hand_computed() {
        // errors 1 and -1 → rmse 1.
        assert!((rmse(&[2.0, 1.0], &[1.0, 2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relative_error_scale_free() {
        let pred = [110.0, 0.11];
        let act = [100.0, 0.10];
        let e = mean_relative_error(&pred, &act);
        assert!((e - 0.1).abs() < 1e-4, "{e}");
    }

    #[test]
    fn max_relative_error_picks_worst() {
        let pred = [1.1, 3.0];
        let act = [1.0, 1.0];
        assert!((max_relative_error(&pred, &act) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let pred = [2.5; 4];
        assert!(r2(&pred, &actual).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
