//! ε-insensitive support vector regression.
//!
//! Solver: dual coordinate descent on the bias-in-kernel formulation.
//! With `K̃ = K + 1` (the constant absorbs the bias, removing the equality
//! constraint), the dual is
//!
//! ```text
//! max_β  −½ βᵀK̃β + yᵀβ − ε‖β‖₁   s.t. |β_i| ≤ C
//! ```
//!
//! which coordinate-wise has the closed-form soft-threshold update
//! `β_i ← clip( soft(r_i + K̃_ii β_i, ε) / K̃_ii, ±C )` where `r_i = y_i − f(x_i)`.
//! This is the standard liblinear-style SVR solver, kernelized.

use crate::Regressor;
use pddl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Kernel functions for [`Svr`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    Linear,
    /// `exp(−γ‖a−b‖²)`.
    Rbf { gamma: f32 },
}

impl Kernel {
    fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// ε-SVR model. Hyperparameters follow the paper's grid-search ranges
/// (`C ∈ [1, 10³]`, `γ ∈ [0.05, 0.5]`, `ε ∈ [0.05, 0.2]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Svr {
    pub kernel: Kernel,
    pub c: f32,
    pub epsilon: f32,
    /// Coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence threshold on the largest β change per sweep.
    pub tol: f32,
    beta: Vec<f32>,
    support: Matrix,
}

impl Svr {
    pub fn new(kernel: Kernel, c: f32, epsilon: f32) -> Self {
        assert!(c > 0.0 && epsilon >= 0.0);
        Self {
            kernel,
            c,
            epsilon,
            max_iter: 200,
            tol: 1e-4,
            beta: Vec::new(),
            support: Matrix::zeros(0, 0),
        }
    }

    /// Number of support vectors (|β| > 0 after fitting).
    pub fn num_support_vectors(&self) -> usize {
        self.beta.iter().filter(|b| b.abs() > 1e-7).count()
    }

    fn decision(&self, x: &[f32]) -> f32 {
        let mut f = 0.0f32;
        for (i, &b) in self.beta.iter().enumerate() {
            if b != 0.0 {
                f += b * (self.kernel.eval(self.support.row(i), x) + 1.0);
            }
        }
        f
    }
}

impl Regressor for Svr {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        let n = x.rows();
        assert_eq!(n, y.len(), "sample/target count mismatch");
        assert!(n > 0);
        // Dense kernel matrix with the +1 bias term.
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.kernel.eval(x.row(i), x.row(j)) + 1.0;
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        let mut beta = vec![0.0f32; n];
        // f_i = Σ_j K_ij β_j maintained incrementally.
        let mut f = vec![0.0f32; n];
        for _sweep in 0..self.max_iter {
            let mut max_delta = 0.0f32;
            for i in 0..n {
                let kii = k[(i, i)].max(1e-9);
                // Unconstrained minimizer along coordinate i with L1 term.
                let rho = y[i] - f[i] + kii * beta[i];
                let soft = if rho > self.epsilon {
                    rho - self.epsilon
                } else if rho < -self.epsilon {
                    rho + self.epsilon
                } else {
                    0.0
                };
                let new_beta = (soft / kii).clamp(-self.c, self.c);
                let delta = new_beta - beta[i];
                if delta != 0.0 {
                    beta[i] = new_beta;
                    for (fj, krow) in f.iter_mut().zip(k.row(i)) {
                        *fj += delta * krow;
                    }
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.beta = beta;
        self.support = x.clone();
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.beta.is_empty(), "predict before fit");
        (0..x.rows()).map(|r| self.decision(x.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use pddl_tensor::Rng;

    #[test]
    fn linear_svr_fits_line() {
        let mut rng = Rng::new(1);
        let n = 80;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = rng.uniform(-2.0, 2.0);
            x[(i, 0)] = a;
            y.push(3.0 * a + 1.0);
        }
        let mut m = Svr::new(Kernel::Linear, 100.0, 0.05);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&pred, &y) < 0.15, "rmse {}", rmse(&pred, &y));
    }

    #[test]
    fn rbf_svr_fits_sine() {
        let n = 120;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = -3.0 + 6.0 * i as f32 / n as f32;
            x[(i, 0)] = a;
            y.push(a.sin());
        }
        let mut m = Svr::new(Kernel::Rbf { gamma: 1.0 }, 100.0, 0.02);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&pred, &y) < 0.1, "rmse {}", rmse(&pred, &y));
    }

    #[test]
    fn epsilon_tube_controls_sparsity() {
        let mut rng = Rng::new(2);
        let n = 60;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            x[(i, 0)] = a;
            y.push(a + 0.01 * rng.normal());
        }
        let mut tight = Svr::new(Kernel::Linear, 10.0, 0.001);
        let mut loose = Svr::new(Kernel::Linear, 10.0, 0.3);
        tight.fit(&x, &y);
        loose.fit(&x, &y);
        assert!(
            loose.num_support_vectors() <= tight.num_support_vectors(),
            "wider tube must not increase support vectors: {} vs {}",
            loose.num_support_vectors(),
            tight.num_support_vectors()
        );
    }

    #[test]
    fn c_bounds_coefficients() {
        let mut rng = Rng::new(3);
        let n = 40;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            x[(i, 0)] = a;
            y.push(100.0 * a); // steep target forces β against the box
        }
        let mut m = Svr::new(Kernel::Rbf { gamma: 0.1 }, 0.5, 0.05);
        m.fit(&x, &y);
        assert!(m.beta.iter().all(|b| b.abs() <= 0.5 + 1e-6));
    }

    #[test]
    fn rbf_kernel_is_one_at_zero_distance() {
        let k = Kernel::Rbf { gamma: 0.3 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-7);
        assert!(k.eval(&[0.0, 0.0], &[10.0, 10.0]) < 1e-6);
    }

    #[test]
    fn generalizes_to_heldout_points() {
        let n = 100;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = -2.0 + 4.0 * i as f32 / n as f32;
            x[(i, 0)] = a;
            y.push(a * a);
        }
        let mut m = Svr::new(Kernel::Rbf { gamma: 0.5 }, 100.0, 0.02);
        m.fit(&x, &y);
        let test = Matrix::from_rows(&[&[0.5f32], &[-1.25], &[1.75]]);
        let pred = m.predict(&test);
        let expect = [0.25f32, 1.5625, 3.0625];
        for (p, e) in pred.iter().zip(&expect) {
            assert!((p - e).abs() < 0.25, "pred {p} vs {e}");
        }
    }
}
