//! Incremental (online) ridge regression for the continual-refit loop.
//!
//! The paper fits its regressor once, offline (§III-C), and never updates
//! it as the cluster cost model drifts — §VI names closing that loop as
//! future work. [`OnlineRidge`] closes it: every completed job becomes a
//! rank-1 Sherman–Morrison update of the ridge inverse (O(d²) per
//! observation, no re-solve), while a bounded sliding window of raw
//! observations supports a full re-fit ([`OnlineRidge::refit`]) whenever
//! the drift detector ([`crate::drift::PageHinkley`]) decides the world
//! changed and the accumulated history is now a liability.
//!
//! Determinism contract: all arithmetic is f64 with a fixed operation
//! order. A fixed observation sequence produces bit-identical coefficients
//! on every run and every thread count; [`OnlineRidge::refit`] re-solves
//! over the window in a *canonical* order (sorted by the raw bit patterns
//! of the observation), so the refit result is bit-identical for any
//! insertion order of the same window contents — the property pinned by
//! the `window_refit_is_order_independent` proptest.
//!
//! Telemetry: `refit.updates`, `refit.refits` and (from the drift module)
//! `refit.drift_events` counters are visible in `{"op":"metrics"}`
//! exposition wherever the loop runs.

use pddl_telemetry::Counter;
use std::collections::VecDeque;
use std::sync::OnceLock;

pub(crate) struct RefitMetrics {
    pub(crate) updates: &'static Counter,
    pub(crate) refits: &'static Counter,
    pub(crate) drift_events: &'static Counter,
}

pub(crate) fn refit_metrics() -> &'static RefitMetrics {
    static METRICS: OnceLock<RefitMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RefitMetrics {
        updates: pddl_telemetry::counter("refit.updates"),
        refits: pddl_telemetry::counter("refit.refits"),
        drift_events: pddl_telemetry::counter("refit.drift_events"),
    })
}

/// Reference batch ridge solve in f64: minimizes
/// `Σ (y − φᵀw)² + λ‖w‖²` with `φ = [1, x…]` (intercept included in the
/// penalty, matching [`OnlineRidge`]'s prior `A₀ = λI` exactly so the
/// rank-1 chain and this solve agree to floating-point accumulation
/// error). Returns the coefficient vector, intercept first.
///
/// All rows of `xs` must share one length; `ys` must match `xs`.
pub fn batch_ridge(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(lambda > 0.0, "ridge lambda must be positive");
    let features = xs.first().map_or(0, Vec::len);
    let d = features + 1;
    let mut a = vec![0.0f64; d * d];
    let mut b = vec![0.0f64; d];
    for i in 0..d {
        a[i * d + i] = lambda;
    }
    let mut phi = vec![0.0f64; d];
    for (x, &y) in xs.iter().zip(ys) {
        assert_eq!(x.len(), features, "inconsistent feature width");
        fill_phi(&mut phi, x);
        accumulate(&mut a, &mut b, &phi, y, d);
    }
    solve_spd(&mut a, &b, d)
}

fn fill_phi(phi: &mut [f64], x: &[f64]) {
    phi[0] = 1.0;
    phi[1..].copy_from_slice(x);
}

fn accumulate(a: &mut [f64], b: &mut [f64], phi: &[f64], y: f64, d: usize) {
    for i in 0..d {
        let pi = phi[i];
        for j in 0..d {
            a[i * d + j] += pi * phi[j];
        }
        b[i] += y * pi;
    }
}

/// Cholesky solve of `A w = b` for SPD `A` (destroys `a`). λ > 0 keeps the
/// ridge system strictly positive-definite, so no pivoting or jitter is
/// needed; a non-finite or non-positive pivot panics loudly rather than
/// returning garbage coefficients.
fn solve_spd(a: &mut [f64], b: &[f64], d: usize) -> Vec<f64> {
    // In-place lower-triangular factor L with A = L Lᵀ.
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a[i * d + j];
            for k in 0..j {
                sum -= a[i * d + k] * a[j * d + k];
            }
            if i == j {
                assert!(sum > 0.0 && sum.is_finite(), "ridge system not SPD (pivot {sum})");
                a[i * d + i] = sum.sqrt();
            } else {
                a[i * d + j] = sum / a[j * d + j];
            }
        }
    }
    // Forward: L z = b.
    let mut z = vec![0.0f64; d];
    for i in 0..d {
        let mut sum = b[i];
        for k in 0..i {
            sum -= a[i * d + k] * z[k];
        }
        z[i] = sum / a[i * d + i];
    }
    // Backward: Lᵀ w = z.
    let mut w = vec![0.0f64; d];
    for i in (0..d).rev() {
        let mut sum = z[i];
        for k in (i + 1)..d {
            sum -= a[k * d + i] * w[k];
        }
        w[i] = sum / a[i * d + i];
    }
    w
}

/// One buffered observation: raw features (no intercept) and target.
type Observation = (Vec<f64>, f64);

/// Canonical total order on observations: compare targets, then features,
/// by raw f64 bit pattern (`total_cmp`). Any permutation of the same
/// multiset sorts to the same sequence, which is what makes
/// [`OnlineRidge::refit`] order-independent down to the last bit.
fn canonical_cmp(a: &Observation, b: &Observation) -> std::cmp::Ordering {
    a.1.total_cmp(&b.1).then_with(|| {
        for (xa, xb) in a.0.iter().zip(&b.0) {
            let o = xa.total_cmp(xb);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    })
}

/// Online ridge regressor: rank-1 Sherman–Morrison updates on the inverse
/// normal-equation matrix, plus a sliding window of raw observations that
/// backs the full-refit fallback.
///
/// The model is `y ≈ w₀ + Σ wᵢ xᵢ` with L2 penalty `λ` on *all*
/// coefficients (prior `A₀ = λI`). [`OnlineRidge::observe`] folds one
/// `(x, y)` pair in; [`OnlineRidge::refit`] discards everything outside
/// the window and re-solves from scratch, which is how the loop sheds a
/// stale cost model after a [`crate::drift::DriftEvent`].
#[derive(Clone, Debug)]
pub struct OnlineRidge {
    features: usize,
    d: usize,
    lambda: f64,
    /// Inverse of `A = λI + Σ φφᵀ`, row-major `d × d`, kept symmetric.
    a_inv: Vec<f64>,
    /// `b = Σ y φ`.
    xty: Vec<f64>,
    /// Current coefficients `A⁻¹ b`, intercept first.
    coef: Vec<f64>,
    window: VecDeque<Observation>,
    capacity: usize,
    observations: u64,
    refits: u64,
}

impl OnlineRidge {
    /// New model over `features` raw inputs with ridge penalty `lambda`
    /// and a sliding window holding the last `window` observations.
    pub fn new(features: usize, lambda: f64, window: usize) -> Self {
        assert!(features >= 1, "need at least one feature");
        assert!(lambda > 0.0, "ridge lambda must be positive");
        assert!(window >= 1, "window capacity must be at least 1");
        let d = features + 1;
        let mut a_inv = vec![0.0f64; d * d];
        for i in 0..d {
            a_inv[i * d + i] = 1.0 / lambda;
        }
        Self {
            features,
            d,
            lambda,
            a_inv,
            xty: vec![0.0; d],
            coef: vec![0.0; d],
            window: VecDeque::with_capacity(window.min(1 << 20)),
            capacity: window,
            observations: 0,
            refits: 0,
        }
    }

    /// Raw feature width (excluding the intercept).
    pub fn features(&self) -> usize {
        self.features
    }

    /// Current coefficients, intercept first (length `features + 1`).
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Total observations folded in since construction.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Full window refits performed.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Observations currently buffered in the sliding window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Predicts `w₀ + Σ wᵢ xᵢ` for one raw feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.features, "feature width mismatch");
        let mut y = self.coef[0];
        for (w, v) in self.coef[1..].iter().zip(x) {
            y += w * v;
        }
        y
    }

    /// Folds one observation in via a rank-1 Sherman–Morrison update:
    /// `A⁻¹ ← A⁻¹ − (A⁻¹φ)(A⁻¹φ)ᵀ / (1 + φᵀA⁻¹φ)`, then refreshes the
    /// coefficients. O(d²); never re-solves. The observation is also
    /// appended to the sliding window (evicting the oldest beyond
    /// capacity) so a later [`Self::refit`] can rebuild from recent data.
    pub fn observe(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.features, "feature width mismatch");
        let d = self.d;
        let mut phi = vec![0.0f64; d];
        fill_phi(&mut phi, x);
        // k = A⁻¹ φ (A⁻¹ symmetric).
        let mut k = vec![0.0f64; d];
        for (i, ki) in k.iter_mut().enumerate() {
            let row = &self.a_inv[i * d..(i + 1) * d];
            let mut s = 0.0;
            for (aij, pj) in row.iter().zip(&phi) {
                s += aij * pj;
            }
            *ki = s;
        }
        let mut denom = 1.0;
        for (ki, pi) in k.iter().zip(&phi) {
            denom += ki * pi;
        }
        for (i, &ki) in k.iter().enumerate() {
            for (j, &kj) in k.iter().enumerate() {
                self.a_inv[i * d + j] -= ki * kj / denom;
            }
        }
        for (ti, pi) in self.xty.iter_mut().zip(&phi) {
            *ti += y * pi;
        }
        self.refresh_coef();
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back((x.to_vec(), y));
        self.observations += 1;
        refit_metrics().updates.inc();
    }

    fn refresh_coef(&mut self) {
        let d = self.d;
        for i in 0..d {
            let row = &self.a_inv[i * d..(i + 1) * d];
            let mut s = 0.0;
            for (aij, bj) in row.iter().zip(&self.xty) {
                s += aij * bj;
            }
            self.coef[i] = s;
        }
    }

    /// Discards all state outside the sliding window and re-solves the
    /// ridge system over the window contents in canonical order. After
    /// this call the model is exactly what [`batch_ridge`] would produce
    /// on the window — bit-identical for any insertion order of the same
    /// observations — and subsequent [`Self::observe`] calls chain rank-1
    /// updates on top of the fresh inverse.
    pub fn refit(&mut self) {
        let d = self.d;
        let mut ordered: Vec<&Observation> = self.window.iter().collect();
        ordered.sort_by(|a, b| canonical_cmp(a, b));
        let mut a = vec![0.0f64; d * d];
        for i in 0..d {
            a[i * d + i] = self.lambda;
        }
        let mut b = vec![0.0f64; d];
        let mut phi = vec![0.0f64; d];
        for (x, y) in ordered {
            fill_phi(&mut phi, x);
            accumulate(&mut a, &mut b, &phi, *y, d);
        }
        self.a_inv = invert_spd(&a, d);
        self.xty = b;
        self.refresh_coef();
        self.refits += 1;
        refit_metrics().refits.inc();
    }

    /// Shrinks the window to its most recent `keep` observations (the
    /// post-shift segment a [`crate::drift::DriftEvent`] identifies) and
    /// refits on what remains. `keep` is clamped to at least 1.
    pub fn retain_recent_and_refit(&mut self, keep: usize) {
        let keep = keep.max(1);
        while self.window.len() > keep {
            self.window.pop_front();
        }
        self.refit();
    }

    /// Adds `dy` to every buffered target *except* the most recent
    /// `skip_recent` observations, then refits over the full window.
    ///
    /// This is the recovery move for an abrupt *multiplicative* cost
    /// shift observed in log space: the detector fires within a handful
    /// of post-shift samples, far too few to refit a multi-coordinate
    /// model from scratch, but plenty to estimate the shift's log
    /// magnitude. Translating the pre-shift history onto the new level
    /// keeps every fitted per-feature relationship while the model jumps
    /// regimes in one step. The `skip_recent` tail (the post-shift run)
    /// is already at the new level and must not be double-shifted.
    pub fn translate_targets_and_refit(&mut self, dy: f64, skip_recent: usize) {
        assert!(dy.is_finite(), "target translation must be finite");
        let old = self.window.len().saturating_sub(skip_recent);
        for obs in self.window.iter_mut().take(old) {
            obs.1 += dy;
        }
        self.refit();
    }
}

/// Dense SPD inverse via Cholesky: solves `A z = eᵢ` column by column.
/// Fine at the dimensions the loop uses (d ≲ 32).
fn invert_spd(a: &[f64], d: usize) -> Vec<f64> {
    let mut inv = vec![0.0f64; d * d];
    let mut e = vec![0.0f64; d];
    for col in 0..d {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[col] = 1.0;
        let mut work = a.to_vec();
        let z = solve_spd(&mut work, &e, d);
        for row in 0..d {
            inv[row * d + col] = z[row];
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
        let scale = b.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs() / scale)
            .fold(0.0f64, f64::max)
    }

    fn random_stream(seed: u64, n: usize, features: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::new(seed);
        let truth: Vec<f64> = (0..=features).map(|_| rng.uniform(-2.0, 2.0) as f64).collect();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..features).map(|_| rng.uniform(-1.0, 1.0) as f64).collect();
            let mut y = truth[0];
            for (w, v) in truth[1..].iter().zip(&x) {
                y += w * v;
            }
            y += rng.normal() as f64 * 0.05;
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn rank_one_chain_matches_batch_solve() {
        let (xs, ys) = random_stream(7, 400, 4);
        let mut online = OnlineRidge::new(4, 1e-3, 1024);
        for (x, &y) in xs.iter().zip(&ys) {
            online.observe(x, y);
        }
        let batch = batch_ridge(&xs, &ys, 1e-3);
        let err = max_rel_err(online.coefficients(), &batch);
        assert!(err <= 1e-8, "rank-1 chain diverged from batch solve: rel err {err:e}");
    }

    #[test]
    fn refit_equals_batch_over_window_only() {
        let (xs, ys) = random_stream(11, 300, 3);
        let cap = 64;
        let mut online = OnlineRidge::new(3, 1e-3, cap);
        for (x, &y) in xs.iter().zip(&ys) {
            online.observe(x, y);
        }
        online.refit();
        let tail_x: Vec<Vec<f64>> = xs[xs.len() - cap..].to_vec();
        let tail_y: Vec<f64> = ys[ys.len() - cap..].to_vec();
        let batch = batch_ridge(&tail_x, &tail_y, 1e-3);
        let err = max_rel_err(online.coefficients(), &batch);
        assert!(err <= 1e-8, "window refit != batch over window: rel err {err:e}");
    }

    #[test]
    fn refit_is_bit_identical_under_permutation() {
        let (xs, ys) = random_stream(23, 48, 3);
        let mut fwd = OnlineRidge::new(3, 1e-2, 64);
        for (x, &y) in xs.iter().zip(&ys) {
            fwd.observe(x, y);
        }
        fwd.refit();
        let mut rev = OnlineRidge::new(3, 1e-2, 64);
        for (x, &y) in xs.iter().zip(&ys).rev() {
            rev.observe(x, y);
        }
        rev.refit();
        let a: Vec<u64> = fwd.coefficients().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = rev.coefficients().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "canonical-order refit must not depend on insertion order");
    }

    #[test]
    fn updates_after_refit_keep_tracking() {
        let (xs, ys) = random_stream(31, 200, 2);
        let mut online = OnlineRidge::new(2, 1e-3, 50);
        for (x, &y) in xs.iter().zip(&ys).take(100) {
            online.observe(x, y);
        }
        online.refit();
        for (x, &y) in xs.iter().zip(&ys).skip(100) {
            online.observe(x, y);
        }
        // Reference: ridge over window-at-refit + everything after.
        let mut ref_x: Vec<Vec<f64>> = xs[50..100].to_vec();
        ref_x.extend_from_slice(&xs[100..]);
        let mut ref_y: Vec<f64> = ys[50..100].to_vec();
        ref_y.extend_from_slice(&ys[100..]);
        let batch = batch_ridge(&ref_x, &ref_y, 1e-3);
        let err = max_rel_err(online.coefficients(), &batch);
        assert!(err <= 1e-8, "post-refit chain diverged: rel err {err:e}");
    }

    #[test]
    fn retain_recent_drops_stale_history() {
        let mut online = OnlineRidge::new(1, 1e-4, 256);
        // Old regime: y = x; new regime: y = 3x.
        for i in 0..100 {
            let x = (i % 10) as f64 / 10.0 + 0.1;
            online.observe(&[x], x);
        }
        for i in 0..20 {
            let x = (i % 10) as f64 / 10.0 + 0.1;
            online.observe(&[x], 3.0 * x);
        }
        online.retain_recent_and_refit(20);
        let pred = online.predict(&[0.5]);
        assert!((pred - 1.5).abs() < 0.05, "expected new-regime fit, got {pred}");
        assert_eq!(online.window_len(), 20);
        assert_eq!(online.refits(), 1);
    }

    #[test]
    fn translated_targets_match_refit_on_shifted_data() {
        let (xs, ys) = random_stream(13, 80, 3);
        // Model A: observe old-level targets, then translate them up by
        // ln 3 with the last 5 already at the new level.
        let dy = 3.0f64.ln();
        let mut a = OnlineRidge::new(3, 1e-3, 128);
        for (i, (x, &y)) in xs.iter().zip(&ys).enumerate() {
            a.observe(x, if i >= 75 { y + dy } else { y });
        }
        a.translate_targets_and_refit(dy, 5);
        // Model B: every target was at the new level all along.
        let mut b = OnlineRidge::new(3, 1e-3, 128);
        for (x, &y) in xs.iter().zip(&ys) {
            b.observe(x, y + dy);
        }
        b.refit();
        let bits = |m: &OnlineRidge| {
            m.coefficients().iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        };
        assert_eq!(bits(&a), bits(&b), "translation must land exactly on the shifted fit");
        assert_eq!(a.refits(), 1);
    }

    #[test]
    fn fixed_stream_is_bit_deterministic() {
        let (xs, ys) = random_stream(5, 150, 3);
        let run = || {
            let mut m = OnlineRidge::new(3, 1e-3, 64);
            for (x, &y) in xs.iter().zip(&ys) {
                m.observe(x, y);
            }
            m.refit();
            for (x, &y) in xs.iter().zip(&ys).take(40) {
                m.observe(x, y);
            }
            m.coefficients().iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}
