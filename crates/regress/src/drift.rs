//! Drift detection for the continual-refit loop.
//!
//! [`PageHinkley`] runs the Page–Hinkley test on standardized prediction
//! residuals: it tracks the cumulative deviation of `|z_t|` above its
//! running mean (minus a margin δ) and fires when that cumulative sum
//! rises more than a threshold λ above its historical minimum — the
//! classic sequential change-point test for a sustained mean shift. On a
//! stationary residual stream the statistic drifts *down* (each in-control
//! observation contributes ≈ −δ on average), so a well-margined detector
//! essentially never false-fires; when the cluster cost model shifts, the
//! standardized residuals jump by tens of σ and the statistic crosses λ
//! within a handful of observations.
//!
//! After firing the detector resets, which gives the
//! fires-exactly-once-per-shift behavior the sched tier pins: the
//! triggered recovery refit ([`crate::OnlineRidge::translate_targets_and_refit`]
//! or [`crate::OnlineRidge::retain_recent_and_refit`]) restores small
//! residuals, so a reset detector stays quiet until the *next* genuine
//! shift. Every fire increments the `refit.drift_events` telemetry
//! counter.

use crate::online::refit_metrics;

/// Page–Hinkley parameters. Defaults are tuned for standardized residuals
/// (`z ~ N(0,1)` in control): δ = 0.5 sits above the natural fluctuation
/// of `|z|` around its mean, and λ = 15 demands a sustained multi-σ
/// excursion — unreachable by chance on a zero-drift stream, crossed in a
/// few observations when a real cost-model shift multiplies runtimes.
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// Margin δ subtracted from each deviation; tolerated drift magnitude.
    pub delta: f64,
    /// Fire threshold λ on `m_t − min(m_t)`.
    pub threshold: f64,
    /// Observations (since the last reset) before the detector may fire.
    pub warmup: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self { delta: 0.5, threshold: 15.0, warmup: 32 }
    }
}

/// A detected change point, with enough context to size the recovery
/// window: `run_length` counts the observations since the statistic's
/// minimum, i.e. roughly how many observations belong to the new regime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftEvent {
    /// Lifetime observation index (1-based) at which the detector fired.
    pub observation: u64,
    /// Statistic value `m_t − min(m_t)` at the fire point.
    pub statistic: f64,
    /// Threshold λ that was crossed.
    pub threshold: f64,
    /// Observations since the statistic's minimum — the estimated length
    /// of the post-shift segment (sizes the recovery refit, e.g. how many
    /// recent residuals estimate the shift magnitude fed to
    /// [`crate::OnlineRidge::translate_targets_and_refit`]).
    pub run_length: u64,
}

/// Sequential Page–Hinkley change detector on standardized residuals.
#[derive(Clone, Debug)]
pub struct PageHinkley {
    cfg: DriftConfig,
    /// Observations since the last reset.
    n: u64,
    /// Lifetime observations (never reset; used for event indices).
    total: u64,
    /// Running mean of `|z|` since the last reset.
    mean: f64,
    /// Cumulative sum `m_t = Σ (|z| − mean − δ)`.
    mt: f64,
    /// Historical minimum of `m_t` since the last reset.
    min_mt: f64,
    /// Observations since `min_mt` last decreased.
    since_min: u64,
    events: u64,
}

impl PageHinkley {
    pub fn new(cfg: DriftConfig) -> Self {
        Self {
            cfg,
            n: 0,
            total: 0,
            mean: 0.0,
            mt: 0.0,
            min_mt: 0.0,
            since_min: 0,
            events: 0,
        }
    }

    /// Feeds one standardized residual. Returns a [`DriftEvent`] when the
    /// statistic crosses the threshold (after warmup); the detector then
    /// resets so it can only re-fire after a *new* sustained shift.
    pub fn observe(&mut self, z: f64) -> Option<DriftEvent> {
        let v = z.abs();
        self.n += 1;
        self.total += 1;
        self.mean += (v - self.mean) / self.n as f64;
        self.mt += v - self.mean - self.cfg.delta;
        if self.mt < self.min_mt {
            self.min_mt = self.mt;
            self.since_min = 0;
        } else {
            self.since_min += 1;
        }
        let stat = self.mt - self.min_mt;
        if self.n > self.cfg.warmup && stat > self.cfg.threshold {
            self.events += 1;
            refit_metrics().drift_events.inc();
            let event = DriftEvent {
                observation: self.total,
                statistic: stat,
                threshold: self.cfg.threshold,
                run_length: self.since_min.max(1),
            };
            self.reset_window();
            return Some(event);
        }
        None
    }

    /// Clears the test state (not the lifetime counters), as after a fire.
    pub fn reset_window(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.mt = 0.0;
        self.min_mt = 0.0;
        self.since_min = 0;
    }

    /// Current statistic `m_t − min(m_t)`.
    pub fn statistic(&self) -> f64 {
        self.mt - self.min_mt
    }

    /// Fires so far (lifetime).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Lifetime observations.
    pub fn observations(&self) -> u64 {
        self.total
    }
}

/// Robust online scale estimate for residual standardization (Welford).
///
/// The caller gates updates: during healthy operation every residual is
/// absorbed, but once a residual standardizes beyond `OUTLIER_Z` the
/// sample is *not* folded in — otherwise a cost-model shift would inflate
/// the scale estimate and mask itself before the detector fires.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResidualScale {
    n: u64,
    mean: f64,
    m2: f64,
}

/// Standardized-residual magnitude beyond which [`ResidualScale::absorb`]
/// refuses the sample (treated as a potential shift, not noise).
pub const OUTLIER_Z: f64 = 4.0;

impl ResidualScale {
    /// Samples absorbed so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean residual over absorbed samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation, floored to stay divisible. Before two
    /// samples exist the scale is 1.0 (standardization is a no-op, and
    /// the detector's warmup covers the cold start).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            1.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt().max(1e-12)
        }
    }

    /// Standardizes a residual against the current estimate.
    pub fn standardize(&self, r: f64) -> f64 {
        (r - self.mean) / self.std()
    }

    /// Absorbs `r` into the estimate unless it standardizes beyond
    /// [`OUTLIER_Z`] (always absorbs the first few samples so the
    /// estimate can bootstrap). Returns whether the sample was absorbed.
    pub fn absorb(&mut self, r: f64) -> bool {
        if self.n >= 8 && self.standardize(r).abs() > OUTLIER_Z {
            return false;
        }
        self.n += 1;
        let delta = r - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (r - self.mean);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    #[test]
    fn never_fires_on_stationary_standard_normals() {
        for seed in 0..8u64 {
            let mut rng = Rng::new(0x5EED ^ seed);
            let mut ph = PageHinkley::new(DriftConfig::default());
            for _ in 0..5000 {
                let z = rng.normal() as f64;
                assert!(
                    ph.observe(z).is_none(),
                    "false fire on zero-drift stream (seed {seed}, stat {})",
                    ph.statistic()
                );
            }
        }
    }

    #[test]
    fn fires_once_per_shift_and_resets() {
        let mut rng = Rng::new(42);
        let mut ph = PageHinkley::new(DriftConfig::default());
        let mut events = Vec::new();
        // In control, then a 12σ sustained shift, then back in control
        // (as after a successful refit), then a second shift.
        for phase in 0..4 {
            let (mu, n) = match phase {
                0 => (0.0, 500),
                1 => (12.0, 50),
                2 => (0.0, 500),
                _ => (12.0, 50),
            };
            for _ in 0..n {
                let z = mu + rng.normal() as f64;
                if let Some(e) = ph.observe(z) {
                    events.push(e);
                    // Model "refits": later phases with mu=0 model recovery.
                    break;
                }
            }
        }
        assert_eq!(events.len(), 2, "one fire per shift: {events:?}");
        assert!(events[0].run_length >= 1);
        assert_eq!(ph.events(), 2);
    }

    #[test]
    fn detects_shift_quickly_after_long_quiet_period() {
        let mut rng = Rng::new(7);
        let mut ph = PageHinkley::new(DriftConfig::default());
        for _ in 0..10_000 {
            assert!(ph.observe(rng.normal() as f64).is_none());
        }
        let mut fired_after = None;
        for i in 0..100 {
            if ph.observe(20.0 + rng.normal() as f64).is_some() {
                fired_after = Some(i + 1);
                break;
            }
        }
        let lag = fired_after.expect("detector must fire on a 20σ shift");
        assert!(lag <= 5, "detection lag {lag} too slow for a 20σ shift");
    }

    #[test]
    fn residual_scale_rejects_shift_outliers() {
        let mut rng = Rng::new(9);
        let mut scale = ResidualScale::default();
        for _ in 0..200 {
            assert!(scale.absorb(rng.normal() as f64 * 0.03));
        }
        let before = scale.std();
        // A shift-sized residual must not be absorbed into the scale.
        assert!(!scale.absorb(0.7));
        assert!((scale.std() - before).abs() < 1e-12);
        assert!(scale.standardize(0.7) > OUTLIER_Z);
    }

    #[test]
    fn event_reports_lifetime_observation_index() {
        let mut ph = PageHinkley::new(DriftConfig { delta: 0.1, threshold: 2.0, warmup: 4 });
        for _ in 0..100 {
            ph.observe(0.0);
        }
        let e = (0..20).find_map(|_| ph.observe(50.0)).expect("must fire");
        assert!(e.observation > 100);
        assert_eq!(e.threshold, 2.0);
    }
}
