//! Train/test splitting and k-fold cross-validation indices.
//!
//! The paper evaluates 80/20, 67/33 and 50/50 splits (Fig. 11); splits are
//! random but seeded for reproducibility.

use pddl_tensor::Rng;

/// Shuffled `(train, test)` index split; `train_fraction` of samples go to
/// the training set (at least one sample in each side).
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(n >= 2, "need at least two samples to split");
    assert!(
        (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
        "train fraction must be in (0,1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    Rng::new(seed).shuffle(&mut idx);
    let k = ((n as f64 * train_fraction).round() as usize).clamp(1, n - 1);
    let test = idx.split_off(k);
    (idx, test)
}

/// K-fold cross-validation: returns `k` (train, validation) index pairs.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2 && k <= n, "k must be in [2, n]");
    let mut idx: Vec<usize> = (0..n).collect();
    Rng::new(seed).shuffle(&mut idx);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = n * f / k;
        let hi = n * (f + 1) / k;
        let val: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        folds.push((train, val));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_partition() {
        let (tr, te) = train_test_split(100, 0.8, 1);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        let mut all: Vec<usize> = tr.iter().chain(&te).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_reproducible() {
        assert_eq!(train_test_split(50, 0.67, 9), train_test_split(50, 0.67, 9));
        assert_ne!(train_test_split(50, 0.67, 9).0, train_test_split(50, 0.67, 10).0);
    }

    #[test]
    fn tiny_split_keeps_both_sides_nonempty() {
        let (tr, te) = train_test_split(2, 0.99, 3);
        assert_eq!(tr.len(), 1);
        assert_eq!(te.len(), 1);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold(23, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; 23];
        for (tr, val) in &folds {
            assert_eq!(tr.len() + val.len(), 23);
            for &v in val {
                seen[v] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_fold_rejects_k_larger_than_n() {
        let _ = k_fold(3, 5, 1);
    }
}
