//! Multi-layer-perceptron regressor on the workspace autodiff engine.
//!
//! Matches the paper's configuration space: "for MLP, we use a single hidden
//! layer with 1 to 5 neurons ... to avoid over-fitting" (§IV-B2). Inputs and
//! targets are standardized internally; training is full-batch Adam.

use crate::scale::StandardScaler;
use crate::Regressor;
use pddl_autodiff::{layers::Activation, Adam, Mlp, Optimizer, ParamStore, Tape};
use pddl_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Single-hidden-layer MLP regressor.
#[derive(Serialize, Deserialize)]
pub struct MlpRegressor {
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
    state: Option<Fitted>,
}

#[derive(Serialize, Deserialize)]
struct Fitted {
    ps: ParamStore,
    net: Mlp,
    x_scaler: StandardScaler,
    y_mean: f32,
    y_std: f32,
}

impl MlpRegressor {
    pub fn new(hidden: usize, epochs: usize, lr: f32, seed: u64) -> Self {
        assert!(hidden >= 1, "need at least one hidden neuron");
        Self { hidden, epochs, lr, seed, state: None }
    }

    /// Final training loss (standardized scale), for diagnostics.
    pub fn training_loss(&self, x: &Matrix, y: &[f32]) -> f32 {
        let pred = self.predict(x);
        crate::metrics::rmse(&pred, y)
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        let x_scaler = StandardScaler::fit(x);
        let xs = x_scaler.transform(x);
        let (y_mean, y_std) = StandardScaler::fit_1d(y);
        let ys: Vec<f32> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let target = Matrix::col_vector(&ys);

        let mut rng = Rng::new(self.seed);
        let mut ps = ParamStore::new();
        let net = Mlp::new(
            &mut ps,
            "mlpreg",
            &[x.cols(), self.hidden, 1],
            Activation::Tanh,
            &mut rng,
        );
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let grads = {
                let mut tape = Tape::new(&ps);
                let xv = tape.constant(xs.clone());
                let pred = net.forward(&mut tape, xv);
                let tv = tape.constant(target.clone());
                let loss = tape.mse_loss(pred, tv);
                tape.backward(loss)
            };
            opt.step(&mut ps, &grads);
        }
        self.state = Some(Fitted { ps, net, x_scaler, y_mean, y_std });
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        let s = self.state.as_ref().expect("predict before fit");
        let xs = s.x_scaler.transform(x);
        let mut tape = Tape::new(&s.ps);
        let xv = tape.constant(xs);
        let pred = s.net.forward(&mut tape, xv);
        tape.value(pred)
            .col(0)
            .iter()
            .map(|v| v * s.y_std + s.y_mean)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    #[test]
    fn fits_linear_function() {
        let mut rng = Rng::new(1);
        let n = 150;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::new();
        for i in 0..n {
            let (a, b) = (rng.normal(), rng.normal());
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push(10.0 + 5.0 * a - 3.0 * b);
        }
        let mut m = MlpRegressor::new(4, 800, 0.02, 3);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let e = rmse(&pred, &y);
        assert!(e < 0.8, "rmse {e}");
    }

    #[test]
    fn fits_mild_nonlinearity() {
        let n = 100;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = -2.0 + 4.0 * i as f32 / n as f32;
            x[(i, 0)] = a;
            y.push(a.tanh() * 4.0);
        }
        let mut m = MlpRegressor::new(3, 1200, 0.02, 5);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&pred, &y) < 0.4, "rmse {}", rmse(&pred, &y));
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [0.0, 1.0, 2.0, 3.0];
        let mut m1 = MlpRegressor::new(2, 50, 0.05, 9);
        let mut m2 = MlpRegressor::new(2, 50, 0.05, 9);
        m1.fit(&x, &y);
        m2.fit(&x, &y);
        assert_eq!(m1.predict(&x), m2.predict(&x));
    }

    #[test]
    fn output_destandardized() {
        // Targets far from zero: predictions must land near them.
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let y = [1000.0, 1010.0];
        let mut m = MlpRegressor::new(2, 500, 0.05, 11);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!((pred[0] - 1000.0).abs() < 10.0, "{pred:?}");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn unfitted_predict_panics() {
        let m = MlpRegressor::new(2, 10, 0.01, 1);
        let _ = m.predict(&Matrix::zeros(1, 1));
    }
}
