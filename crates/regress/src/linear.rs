//! Ordinary least squares and ridge regression.

use crate::Regressor;
use pddl_tensor::linalg::{lstsq, solve_spd};
use pddl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// OLS linear regression with intercept, solved by Householder QR
/// (numerically stable for the ill-conditioned polynomial design matrices).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LinearRegression {
    /// `[intercept, w_1 … w_d]` after fitting.
    pub coef: Vec<f32>,
}

impl LinearRegression {
    pub fn new() -> Self {
        Self::default()
    }

    fn design(x: &Matrix) -> Matrix {
        let ones = Matrix::ones(x.rows(), 1);
        Matrix::hstack(&[&ones, x])
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        self.coef = lstsq(&Self::design(x), y);
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.coef.is_empty(), "predict before fit");
        assert_eq!(x.cols() + 1, self.coef.len(), "feature width changed");
        Self::design(x).matvec(&self.coef)
    }
}

/// Ridge regression `(XᵀX + λI)β = Xᵀy` via Cholesky; the intercept column
/// is not penalized.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ridge {
    pub lambda: f32,
    pub coef: Vec<f32>,
}

impl Ridge {
    pub fn new(lambda: f32) -> Self {
        assert!(lambda >= 0.0);
        Self { lambda, coef: Vec::new() }
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        let xd = LinearRegression::design(x);
        let d = xd.cols();
        let mut gram = xd.t_matmul(&xd);
        for i in 1..d {
            // skip the intercept at index 0
            gram[(i, i)] += self.lambda;
        }
        // Xᵀ·y on the packed TN kernel (y as an n×1 column).
        let ycol = Matrix::from_vec(y.len(), 1, y.to_vec());
        let xty = xd.t_matmul(&ycol).as_slice().to_vec();
        // Scale-aware diagonal jitter guarantees numerical SPD-ness for
        // rank-deficient / ill-conditioned designs (duplicated polynomial
        // columns, f32 Gram accumulation error on wide expansions). Retry
        // with growing jitter until Cholesky succeeds.
        let max_diag = (0..d).map(|i| gram[(i, i)]).fold(1e-12f32, f32::max);
        let mut jitter = 1e-7 * max_diag;
        self.coef = loop {
            let mut g = gram.clone();
            for i in 0..d {
                g[(i, i)] += jitter;
            }
            if let Some(c) = solve_spd(&g, &xty) {
                break c;
            }
            jitter *= 10.0;
            assert!(
                jitter.is_finite() && jitter < 1e6 * max_diag,
                "ridge system irreparably indefinite"
            );
        };
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.coef.is_empty(), "predict before fit");
        assert_eq!(x.cols() + 1, self.coef.len(), "feature width changed");
        LinearRegression::design(x).matvec(&self.coef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = Rng::new(seed);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let (a, b, c) = (rng.normal(), rng.normal(), rng.normal());
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            x[(i, 2)] = c;
            y.push(4.0 + 1.5 * a - 2.0 * b + 0.5 * c + 0.01 * rng.normal());
        }
        (x, y)
    }

    #[test]
    fn ols_recovers_coefficients() {
        let (x, y) = linear_data(300, 1);
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        let expect = [4.0, 1.5, -2.0, 0.5];
        for (c, e) in m.coef.iter().zip(&expect) {
            assert!((c - e).abs() < 0.02, "{:?}", m.coef);
        }
    }

    #[test]
    fn ols_predicts_heldout() {
        let (x, y) = linear_data(200, 2);
        let (xt, yt) = linear_data(50, 3);
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        let pred = m.predict(&xt);
        assert!(crate::metrics::rmse(&pred, &yt) < 0.05);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let (x, y) = linear_data(100, 4);
        let mut weak = Ridge::new(0.001);
        let mut strong = Ridge::new(1000.0);
        weak.fit(&x, &y);
        strong.fit(&x, &y);
        let norm = |c: &[f32]| c[1..].iter().map(|v| v * v).sum::<f32>();
        assert!(norm(&strong.coef) < norm(&weak.coef));
    }

    #[test]
    fn ridge_handles_duplicate_columns() {
        // Duplicated column makes OLS ill-posed; ridge must stay finite.
        let mut x = Matrix::zeros(50, 2);
        let mut rng = Rng::new(5);
        let mut y = Vec::new();
        for i in 0..50 {
            let a = rng.normal();
            x[(i, 0)] = a;
            x[(i, 1)] = a;
            y.push(3.0 * a);
        }
        let mut m = Ridge::new(0.1);
        m.fit(&x, &y);
        assert!(m.coef.iter().all(|c| c.is_finite()));
        let pred = m.predict(&x);
        assert!(crate::metrics::rmse(&pred, &y) < 0.1);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_unfitted_panics() {
        let m = LinearRegression::new();
        let _ = m.predict(&Matrix::zeros(1, 2));
    }

    #[test]
    fn ridge_zero_lambda_matches_ols_on_well_posed() {
        let (x, y) = linear_data(150, 6);
        let mut ols = LinearRegression::new();
        let mut ridge = Ridge::new(0.0);
        ols.fit(&x, &y);
        ridge.fit(&x, &y);
        for (a, b) in ols.coef.iter().zip(&ridge.coef) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }
}
