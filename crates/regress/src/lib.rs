//! Regression substrate for PredictDDL's Inference Engine.
//!
//! §III-C: "We train a representative number of regression algorithms,
//! namely linear regression, generalized linear regression with polynomial
//! terms, support vector regression, and multi-layer perceptron, and choose
//! the one that performs best." All four are implemented here from scratch:
//!
//! * [`linear::LinearRegression`] — OLS via Householder QR;
//! * [`linear::Ridge`] — L2-regularized normal equations via Cholesky;
//! * [`poly::PolyFeatures`] + OLS/ridge = the paper's second-order
//!   polynomial regression (its chosen default, §IV-B2);
//! * [`svr::Svr`] — ε-insensitive support vector regression by dual
//!   coordinate descent, linear and RBF kernels;
//! * [`mlp::MlpRegressor`] — single-hidden-layer perceptron on the
//!   workspace autodiff engine (the paper limits it to 1–5 neurons).
//!
//! Plus the supporting cast: standardization, train/test splitting, k-fold
//! cross-validation, grid search (the paper grid-searches SVR over
//! C ∈ [1, 10³], γ ∈ [0.05, 0.5], ε ∈ [0.05, 0.2]), and error metrics.
//!
//! Beyond the paper's one-shot offline fit, the crate also carries the
//! continual-refit loop (§VI future work): [`online::OnlineRidge`] applies
//! rank-1 Sherman–Morrison updates per completed job with a sliding-window
//! full-refit fallback, and [`drift::PageHinkley`] watches standardized
//! residuals for cluster cost-model shifts.

pub mod drift;
pub mod gridsearch;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod online;
pub mod poly;
pub mod scale;
pub mod split;
pub mod svr;

pub use drift::{DriftConfig, DriftEvent, PageHinkley, ResidualScale};
pub use knn::{Distance, KnnRegressor};
pub use online::{batch_ridge, OnlineRidge};
pub use linear::{LinearRegression, Ridge};
pub use metrics::{mean_relative_error, rmse};
pub use mlp::MlpRegressor;
pub use poly::PolyFeatures;
pub use scale::StandardScaler;
pub use split::train_test_split;
pub use svr::{Kernel, Svr};

use pddl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Common interface: fit on `x` (rows = samples) against targets `y`, then
/// predict new rows.
pub trait Regressor {
    fn fit(&mut self, x: &Matrix, y: &[f32]);
    fn predict(&self, x: &Matrix) -> Vec<f32>;
}

/// The paper's four regression-model choices, as one pluggable enum
/// ("PredictDDL also allows users to directly specify their preferred
/// regression model").
#[derive(Serialize, Deserialize)]
pub enum Regression {
    /// Generalized linear regression (LR in Fig. 10).
    Linear(LinearRegression),
    /// Second-order polynomial regression (PR in Fig. 10) = poly features
    /// + ridge, the combination the paper selects as its default.
    Polynomial { expand: PolyFeatures, model: Ridge },
    /// Support vector regression (SVR in Fig. 10).
    Svr(Svr),
    /// Multi-layer perceptron (MLP in Fig. 10).
    Mlp(MlpRegressor),
}

impl Regression {
    /// Paper-default: second-order polynomial regression with light ridge.
    pub fn polynomial(degree: usize, lambda: f32) -> Self {
        Regression::Polynomial {
            expand: PolyFeatures::new(degree, true),
            model: Ridge::new(lambda),
        }
    }

    /// Polynomial regression without cross terms (squares only) — the right
    /// shape when the raw feature space is already wide (e.g. a 32-d GHN
    /// embedding), where full pairwise interactions would exceed the sample
    /// count.
    pub fn polynomial_squares(degree: usize, lambda: f32) -> Self {
        Regression::Polynomial {
            expand: PolyFeatures::new(degree, false),
            model: Ridge::new(lambda),
        }
    }

    pub fn linear() -> Self {
        Regression::Linear(LinearRegression::new())
    }

    pub fn svr(kernel: Kernel, c: f32, epsilon: f32) -> Self {
        Regression::Svr(Svr::new(kernel, c, epsilon))
    }

    pub fn mlp(hidden: usize, epochs: usize, lr: f32, seed: u64) -> Self {
        Regression::Mlp(MlpRegressor::new(hidden, epochs, lr, seed))
    }

    /// Display name matching Fig. 10's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Regression::Linear(_) => "LR",
            Regression::Polynomial { .. } => "PR",
            Regression::Svr(_) => "SVR",
            Regression::Mlp(_) => "MLP",
        }
    }
}

impl Regressor for Regression {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        match self {
            Regression::Linear(m) => m.fit(x, y),
            Regression::Polynomial { expand, model } => {
                let xp = expand.transform(x);
                model.fit(&xp, y);
            }
            Regression::Svr(m) => m.fit(x, y),
            Regression::Mlp(m) => m.fit(x, y),
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        match self {
            Regression::Linear(m) => m.predict(x),
            Regression::Polynomial { expand, model } => model.predict(&expand.transform(x)),
            Regression::Svr(m) => m.predict(x),
            Regression::Mlp(m) => m.predict(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    /// All four regressors should fit a smooth quadratic reasonably.
    #[test]
    fn all_variants_fit_a_quadratic() {
        let mut rng = Rng::new(42);
        let n = 200;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            let b = rng.uniform(-1.0, 1.0);
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push(1.0 + 2.0 * a - b + 0.5 * a * b + a * a);
        }
        let configs: Vec<(Regression, f32)> = vec![
            (Regression::linear(), 0.65),            // misses curvature
            (Regression::polynomial(2, 1e-4), 0.05), // exact family
            (Regression::svr(Kernel::Rbf { gamma: 0.5 }, 10.0, 0.05), 0.30),
            (Regression::mlp(5, 600, 0.02, 7), 0.45),
        ];
        for (mut model, tol) in configs {
            model.fit(&x, &y);
            let pred = model.predict(&x);
            let err = metrics::rmse(&pred, &y);
            assert!(err < tol, "{} rmse {err} > {tol}", model.name());
        }
    }

    #[test]
    fn names_match_figure_10() {
        assert_eq!(Regression::linear().name(), "LR");
        assert_eq!(Regression::polynomial(2, 0.0).name(), "PR");
        assert_eq!(Regression::svr(Kernel::Linear, 1.0, 0.1).name(), "SVR");
        assert_eq!(Regression::mlp(3, 10, 0.01, 1).name(), "MLP");
    }
}
