//! Feature standardization (zero mean, unit variance per column).

use pddl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Column-wise standard scaler.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fits to the columns of `x`. Constant columns get σ = 1 so they map
    /// to zero instead of NaN.
    pub fn fit(x: &Matrix) -> Self {
        let (n, d) = x.shape();
        assert!(n > 0, "cannot fit scaler on empty matrix");
        let mut mean = vec![0.0f64; d];
        for r in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; d];
        for r in 0..n {
            for (j, &v) in x.row(r).iter().enumerate() {
                let dlt = v as f64 - mean[j];
                var[j] += dlt * dlt;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let s = (v / n as f64).sqrt();
                if s < 1e-9 {
                    1.0
                } else {
                    s as f32
                }
            })
            .collect();
        Self { mean: mean.iter().map(|&m| m as f32).collect(), std }
    }

    /// Standardizes rows of `x`.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let (n, d) = x.shape();
        assert_eq!(d, self.mean.len(), "scaler dimensionality mismatch");
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            for (j, &v) in x.row(r).iter().enumerate() {
                out[(r, j)] = (v - self.mean[j]) / self.std[j];
            }
        }
        out
    }

    /// Inverse transform (used on predicted targets).
    pub fn inverse(&self, x: &Matrix) -> Matrix {
        let (n, d) = x.shape();
        assert_eq!(d, self.mean.len());
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            for (j, &v) in x.row(r).iter().enumerate() {
                out[(r, j)] = v * self.std[j] + self.mean[j];
            }
        }
        out
    }

    /// Scalar helpers for 1-D targets.
    pub fn fit_1d(y: &[f32]) -> (f32, f32) {
        let n = y.len().max(1) as f64;
        let mean = y.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = y.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        (mean as f32, std as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    #[test]
    fn transformed_columns_are_standardized() {
        let mut rng = Rng::new(1);
        let mut x = Matrix::zeros(500, 3);
        for r in 0..500 {
            x[(r, 0)] = rng.normal_with(10.0, 2.0);
            x[(r, 1)] = rng.normal_with(-5.0, 0.1);
            x[(r, 2)] = rng.normal_with(0.0, 100.0);
        }
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        for j in 0..3 {
            let col = t.col(j);
            let mean: f32 = col.iter().sum::<f32>() / 500.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 500.0;
            assert!(mean.abs() < 1e-4, "col {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {j} var {var}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = Rng::new(2);
        let x = Matrix::rand_normal(20, 4, 3.0, &mut rng);
        let s = StandardScaler::fit(&x);
        let back = s.inverse(&s.transform(&x));
        assert!((&back - &x).max_abs() < 1e-4);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0], &[5.0, 3.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        for r in 0..3 {
            assert_eq!(t[(r, 0)], 0.0);
        }
    }

    #[test]
    fn fit_1d_stats() {
        let (m, s) = StandardScaler::fit_1d(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!((s - 1.0).abs() < 1e-6);
    }
}
