//! Polynomial feature expansion.
//!
//! The paper's chosen regressor is second-order polynomial regression
//! ("because of the added benefit of including both the first and second
//! powers of feature values", §IV-B2). Degree-2 expansion of `d` features
//! yields `1 + d + d(d+1)/2` columns (bias, linear terms, squares and
//! pairwise interactions).

use pddl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Polynomial expansion transformer. Degrees 1–3 are supported; degree 2 is
/// what the paper evaluates.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PolyFeatures {
    pub degree: usize,
    /// Include pairwise/triple interaction terms (not just powers).
    pub interactions: bool,
}

impl PolyFeatures {
    pub fn new(degree: usize, interactions: bool) -> Self {
        assert!((1..=3).contains(&degree), "degree must be 1..=3");
        Self { degree, interactions }
    }

    /// Output width for `d` input features.
    pub fn out_dim(&self, d: usize) -> usize {
        let mut n = 1 + d; // bias + linear
        if self.degree >= 2 {
            n += if self.interactions { d * (d + 1) / 2 } else { d };
        }
        if self.degree >= 3 {
            n += if self.interactions { d * (d + 1) * (d + 2) / 6 } else { d };
        }
        n
    }

    /// Expands each row of `x`.
    #[allow(clippy::needless_range_loop)] // triangular index pairs (i ≤ j ≤ l)
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let (n, d) = x.shape();
        let out_d = self.out_dim(d);
        let mut out = Matrix::zeros(n, out_d);
        for r in 0..n {
            let row = x.row(r);
            let o = out.row_mut(r);
            let mut k = 0;
            o[k] = 1.0;
            k += 1;
            o[k..k + d].copy_from_slice(row);
            k += d;
            if self.degree >= 2 {
                if self.interactions {
                    for i in 0..d {
                        for j in i..d {
                            o[k] = row[i] * row[j];
                            k += 1;
                        }
                    }
                } else {
                    for i in 0..d {
                        o[k] = row[i] * row[i];
                        k += 1;
                    }
                }
            }
            if self.degree >= 3 {
                if self.interactions {
                    for i in 0..d {
                        for j in i..d {
                            for l in j..d {
                                o[k] = row[i] * row[j] * row[l];
                                k += 1;
                            }
                        }
                    }
                } else {
                    for i in 0..d {
                        o[k] = row[i] * row[i] * row[i];
                        k += 1;
                    }
                }
            }
            debug_assert_eq!(k, out_d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree2_dimension_formula() {
        let p = PolyFeatures::new(2, true);
        for d in [1usize, 2, 3, 5, 10] {
            assert_eq!(p.out_dim(d), 1 + d + d * (d + 1) / 2);
        }
    }

    #[test]
    fn degree2_values_hand_checked() {
        let p = PolyFeatures::new(2, true);
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let t = p.transform(&x);
        // [1, 2, 3, 4, 6, 9]
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn no_interactions_squares_only() {
        let p = PolyFeatures::new(2, false);
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let t = p.transform(&x);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0, 4.0, 9.0]);
    }

    #[test]
    fn degree1_is_bias_plus_identity() {
        let p = PolyFeatures::new(1, true);
        let x = Matrix::from_rows(&[&[7.0, -1.0]]);
        assert_eq!(p.transform(&x).row(0), &[1.0, 7.0, -1.0]);
    }

    #[test]
    fn degree3_dimension() {
        let p = PolyFeatures::new(3, true);
        let d = 3;
        assert_eq!(p.out_dim(d), 1 + 3 + 6 + 10);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(p.transform(&x).cols(), p.out_dim(d));
    }

    #[test]
    #[should_panic(expected = "degree must be")]
    fn rejects_degree_zero() {
        let _ = PolyFeatures::new(0, true);
    }
}
