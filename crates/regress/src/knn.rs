//! k-nearest-neighbor regression.
//!
//! The paper's Fig. 5 mechanism — "the distance between a pair of vectors
//! to indicate the similarity of the corresponding DNN architectures ...
//! enables the regression algorithm to find the closest matching DNN
//! architecture" — as a literal predictor: average the targets of the k
//! closest training rows, optionally distance-weighted. Serves as an
//! interpretable extension baseline next to PR/SVR/MLP/LR.

use crate::Regressor;
use pddl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Distance metric for neighbor lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distance {
    Euclidean,
    /// 1 − cosine similarity (the paper's similarity measure).
    Cosine,
}

/// k-NN regressor with optional inverse-distance weighting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KnnRegressor {
    pub k: usize,
    pub distance: Distance,
    pub weighted: bool,
    x: Option<Matrix>,
    y: Vec<f32>,
}

impl KnnRegressor {
    pub fn new(k: usize, distance: Distance, weighted: bool) -> Self {
        assert!(k >= 1, "k must be positive");
        Self { k, distance, weighted, x: None, y: Vec::new() }
    }

    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        match self.distance {
            Distance::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt(),
            Distance::Cosine => {
                let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
                for (&x, &y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - dot / (na.sqrt() * nb.sqrt())
                }
            }
        }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        assert!(x.rows() >= 1);
        self.x = Some(x.clone());
        self.y = y.to_vec();
    }

    fn predict(&self, q: &Matrix) -> Vec<f32> {
        let x = self.x.as_ref().expect("predict before fit");
        let k = self.k.min(x.rows());
        (0..q.rows())
            .map(|r| {
                let query = q.row(r);
                let mut scored: Vec<(f32, f32)> = (0..x.rows())
                    .map(|i| (self.dist(x.row(i), query), self.y[i]))
                    .collect();
                scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let top = &scored[..k];
                if self.weighted {
                    let mut num = 0.0f64;
                    let mut den = 0.0f64;
                    for &(d, y) in top {
                        let w = 1.0 / (d as f64 + 1e-6);
                        num += w * y as f64;
                        den += w;
                    }
                    (num / den) as f32
                } else {
                    top.iter().map(|&(_, y)| y).sum::<f32>() / k as f32
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> (Matrix, Vec<f32>) {
        // y = x0 on a 1-D grid.
        let xs: Vec<f32> = (0..20).map(|i| i as f32 / 2.0).collect();
        let x = Matrix::from_vec(20, 1, xs.clone());
        (x, xs)
    }

    #[test]
    fn exact_match_returns_neighbor_value() {
        let (x, y) = grid();
        let mut m = KnnRegressor::new(1, Distance::Euclidean, false);
        m.fit(&x, &y);
        let p = m.predict(&Matrix::from_rows(&[&[3.0]]));
        assert_eq!(p[0], 3.0);
    }

    #[test]
    fn k3_smooths() {
        let (x, y) = grid();
        let mut m = KnnRegressor::new(3, Distance::Euclidean, false);
        m.fit(&x, &y);
        let p = m.predict(&Matrix::from_rows(&[&[3.0]]));
        // Neighbors 2.5, 3.0, 3.5 → mean 3.0.
        assert!((p[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_knn_respects_distance() {
        let x = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let y = [0.0, 100.0];
        let mut m = KnnRegressor::new(2, Distance::Euclidean, true);
        m.fit(&x, &y);
        let p = m.predict(&Matrix::from_rows(&[&[1.0]]));
        assert!(p[0] < 30.0, "{}", p[0]); // near 0.0's value
    }

    #[test]
    fn cosine_distance_scale_invariant() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let y = [1.0, 2.0];
        let mut m = KnnRegressor::new(1, Distance::Cosine, false);
        m.fit(&x, &y);
        // Scaled query still matches the first row's direction.
        let p = m.predict(&Matrix::from_rows(&[&[100.0, 1.0]]));
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let y = [2.0, 4.0];
        let mut m = KnnRegressor::new(10, Distance::Euclidean, false);
        m.fit(&x, &y);
        let p = m.predict(&Matrix::from_rows(&[&[0.5]]));
        assert!((p[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn unfitted_panics() {
        let m = KnnRegressor::new(1, Distance::Euclidean, false);
        let _ = m.predict(&Matrix::zeros(1, 1));
    }
}
