//! Hyperparameter grid search with k-fold cross-validation.
//!
//! The paper tunes each regressor before comparing them (§IV-B2): SVR over
//! `C ∈ [1, 10³]`, `γ ∈ [0.05, 0.5]`, `ε ∈ [0.05, 0.2]`; MLP over 1–5
//! hidden neurons.

use crate::metrics::rmse;
use crate::split::k_fold;
use crate::svr::{Kernel, Svr};
use crate::{MlpRegressor, Regressor};
use pddl_tensor::Matrix;

/// One SVR hyperparameter candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvrParams {
    pub kernel: Kernel,
    pub c: f32,
    pub epsilon: f32,
}

/// The paper's SVR search grid: radial and linear kernels, C from 1 to 10³,
/// γ from 0.05 to 0.5, ε from 0.05 to 0.2.
pub fn svr_grid() -> Vec<SvrParams> {
    let mut grid = Vec::new();
    for &c in &[1.0f32, 10.0, 100.0, 1000.0] {
        for &epsilon in &[0.05f32, 0.1, 0.2] {
            grid.push(SvrParams { kernel: Kernel::Linear, c, epsilon });
            for &gamma in &[0.05f32, 0.1, 0.25, 0.5] {
                grid.push(SvrParams { kernel: Kernel::Rbf { gamma }, c, epsilon });
            }
        }
    }
    grid
}

/// Mean k-fold validation RMSE of a model constructor.
fn cv_rmse<M: Regressor>(
    make: impl Fn() -> M + Sync,
    x: &Matrix,
    y: &[f32],
    folds: &[(Vec<usize>, Vec<usize>)],
) -> f32 {
    let mut total = 0.0f64;
    for (train, val) in folds {
        let xt = x.gather_rows(train);
        let yt: Vec<f32> = train.iter().map(|&i| y[i]).collect();
        let xv = x.gather_rows(val);
        let yv: Vec<f32> = val.iter().map(|&i| y[i]).collect();
        let mut m = make();
        m.fit(&xt, &yt);
        total += rmse(&m.predict(&xv), &yv) as f64;
    }
    (total / folds.len() as f64) as f32
}

/// Grid-searches SVR hyperparameters; returns the best params and their CV
/// RMSE. Candidates evaluate in parallel on the [`pddl_par`] work pool;
/// the argmin runs serially over the order-preserved scores, so the winner
/// is independent of thread scheduling.
pub fn grid_search_svr(x: &Matrix, y: &[f32], k: usize, seed: u64) -> (SvrParams, f32) {
    let folds = k_fold(x.rows(), k, seed);
    let grid = svr_grid();
    let scored = pddl_par::par_map(&grid, |&p| {
        let score = cv_rmse(|| Svr::new(p.kernel, p.c, p.epsilon), x, y, &folds);
        (p, score)
    });
    scored
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty grid")
}

/// Grid-searches the MLP hidden width over 1..=5 (paper's range).
pub fn grid_search_mlp(
    x: &Matrix,
    y: &[f32],
    k: usize,
    seed: u64,
    epochs: usize,
    lr: f32,
) -> (usize, f32) {
    let folds = k_fold(x.rows(), k, seed);
    let widths: Vec<usize> = (1..=5).collect();
    let scored = pddl_par::par_map(&widths, |&h| {
        let score = cv_rmse(|| MlpRegressor::new(h, epochs, lr, seed), x, y, &folds);
        (h, score)
    });
    scored
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    fn sine_data(n: usize) -> (Matrix, Vec<f32>) {
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = -3.0 + 6.0 * i as f32 / n as f32;
            x[(i, 0)] = a;
            y.push(a.sin());
        }
        (x, y)
    }

    #[test]
    fn grid_has_paper_ranges() {
        let g = svr_grid();
        assert!(g.iter().any(|p| p.c == 1.0));
        assert!(g.iter().any(|p| p.c == 1000.0));
        assert!(g.iter().any(|p| matches!(p.kernel, Kernel::Linear)));
        assert!(g
            .iter()
            .any(|p| matches!(p.kernel, Kernel::Rbf { gamma } if gamma == 0.5)));
        assert!(g.iter().any(|p| p.epsilon == 0.05));
        assert!(g.iter().any(|p| p.epsilon == 0.2));
    }

    #[test]
    fn svr_search_prefers_rbf_on_sine() {
        let (x, y) = sine_data(90);
        let (best, score) = grid_search_svr(&x, &y, 3, 1);
        assert!(matches!(best.kernel, Kernel::Rbf { .. }), "{best:?}");
        assert!(score < 0.2, "cv rmse {score}");
    }

    #[test]
    fn mlp_search_returns_in_range() {
        let mut rng = Rng::new(2);
        let n = 60;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::new();
        for i in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            x[(i, 0)] = a;
            y.push(2.0 * a + 1.0);
        }
        let (h, score) = grid_search_mlp(&x, &y, 3, 3, 150, 0.05);
        assert!((1..=5).contains(&h));
        assert!(score.is_finite());
    }
}
