//! `pddl-router` — the sharded serving plane's front door.
//!
//! A standalone router process that consistent-hashes prediction
//! requests onto a fleet of controller shards, speaking the controller
//! wire protocol on both sides (documented end to end in the repo's
//! `PROTOCOL.md`). Three layers:
//!
//! * [`ring`] — the consistent-hash ring with virtual nodes: bounded
//!   key movement on membership change, deterministic across processes.
//! * [`key`] — the routing key: a stable hash of the paper's
//!   `(architecture, dataset, training params, cluster spec)` tuple, so
//!   repeats of a workload always land on the same cache-warm shard.
//! * [`router`] — the process itself: accept loop, per-shard health
//!   probes, epoch-stamped membership, typed `shard_moved` re-routing,
//!   and pass-through of trace context (the router contributes a
//!   `route` span to each traced request's waterfall).
//!
//! Run it with the `pddl-router` binary (`serve` / `inspect`), or embed
//! a [`Router`] in tests to stand up an in-process fleet.

#![warn(missing_docs)]

pub mod key;
pub mod ring;
pub mod router;

pub use key::{frame_key, line_key, routing_key};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{Router, RouterConfig};
