//! The router process: consistent-hash request placement over a fleet
//! of controller shards.
//!
//! A [`Router`] listens on its own address, speaking the same
//! newline-delimited JSON protocol as the controller. Control ops
//! (`stats`, `trace`, `metrics`) are answered from the router's own
//! telemetry; `{"op":"route_table"}` answers the live fleet membership;
//! every prediction frame is forwarded **verbatim** to the shard owning
//! its routing key ([`crate::key::routing_key`]) and the shard's reply
//! is relayed verbatim back. Verbatim forwarding is what makes the
//! fleet transparent: trace headers, request identities, and response
//! envelopes pass through untouched, so routed results are
//! bit-identical to direct ones and the shard-side dedup cache keeps
//! exactly-once semantics across re-routes.
//!
//! ## Membership epochs and failure handling
//!
//! Membership (which shards exist, which are healthy) is guarded by one
//! mutex and stamped with an **epoch** that increments on every change.
//! A request is routed once, at admission, under the epoch current at
//! that moment — membership changes mid-flight never re-route an
//! in-flight request; it finishes (or fails) against the shard it was
//! admitted to.
//!
//! Failures split by whether the request may have executed:
//!
//! * **Connect failure** — the request never reached the shard, so the
//!   router transparently re-routes it (up to `max_reroutes` times)
//!   after marking the shard unhealthy.
//! * **Write/read failure after connect** — the shard may have executed
//!   the request before dying, so the router does *not* silently retry
//!   (a batch or bare frame re-executed elsewhere would double-count).
//!   It absorbs the death (epoch bump, ring rebuild) and answers the
//!   client with the typed
//!   `{"error":"shard_moved","epoch":…,"retry_after_ms":…}` line.
//!   Resilient clients refresh their route table and retry; enveloped
//!   retries stay exactly-once because the replacement shard's dedup
//!   cache replays any response it already computed.
//!
//! A background prober visits every shard each `probe_interval` with
//! `{"op":"stats"}`: probe failure marks a shard unhealthy (it owns no
//! ring keys until it answers again), success marks it back healthy.
//! Convergence after a shard death is therefore bounded by one probe
//! interval — or faster, when a forwarding failure observes the death
//! first.

use crate::key::{frame_key, line_key};
use crate::ring::HashRing;
use pddl_cluster::protocol::{LinePoll, LineReader, WireError, MAX_FRAME_BYTES};
use pddl_telemetry::trace::{flight_recorder, stages};
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level, SpanStatus, TraceContext};
use predictddl::protocol::{overload_line, shard_moved_line, RouteShard, RouteTable};
use predictddl::serve::WaitGroup;
use predictddl::{
    parse_frame, reload_rejected_from_line, reload_rejected_line, ParsedFrame, ReloadReply,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the router process.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: u32,
    /// How often the health prober visits every shard.
    pub probe_interval: Duration,
    /// Per-probe (and per-forward-connect) timeout.
    pub probe_timeout: Duration,
    /// Read timeout on shard connections while waiting for a reply; a
    /// shard silent past this is treated as dead. Keep it comfortably
    /// above the shards' queue deadline.
    pub forward_timeout: Duration,
    /// Maximum simultaneously connected clients; beyond it connections
    /// get a typed overload reply and are closed.
    pub max_connections: usize,
    /// Advisory pacing hint carried in typed error replies, in
    /// milliseconds.
    pub retry_after_ms: u64,
    /// Transparent re-route attempts when a shard cannot even be
    /// *connected* (the request provably never executed). Failures
    /// after a successful connect are never retried transparently —
    /// they answer `shard_moved` instead.
    pub max_reroutes: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            vnodes: crate::ring::DEFAULT_VNODES,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(250),
            forward_timeout: Duration::from_secs(10),
            max_connections: 1024,
            retry_after_ms: 25,
            max_reroutes: 3,
        }
    }
}

/// Router-side metric handles, resolved once.
struct Metrics {
    requests_total: &'static Counter,
    forwarded: &'static Counter,
    reroutes: &'static Counter,
    shard_moved_replies: &'static Counter,
    unrouteable: &'static Counter,
    malformed_pass: &'static Counter,
    stats_requests: &'static Counter,
    trace_requests: &'static Counter,
    metrics_requests: &'static Counter,
    route_table_requests: &'static Counter,
    reload_fanouts: &'static Counter,
    connections_total: &'static Counter,
    connections_shed: &'static Counter,
    disconnects: &'static Counter,
    probe_cycles: &'static Counter,
    probe_failures: &'static Counter,
    shard_deaths: &'static Counter,
    shard_revivals: &'static Counter,
    active_connections: &'static Gauge,
    healthy_shards: &'static Gauge,
    membership_epoch: &'static Gauge,
    forward_latency: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        requests_total: pddl_telemetry::counter("router.requests_total"),
        forwarded: pddl_telemetry::counter("router.forwarded"),
        reroutes: pddl_telemetry::counter("router.reroutes"),
        shard_moved_replies: pddl_telemetry::counter("router.shard_moved_replies"),
        unrouteable: pddl_telemetry::counter("router.unrouteable"),
        malformed_pass: pddl_telemetry::counter("router.malformed_pass"),
        stats_requests: pddl_telemetry::counter("router.stats_requests"),
        trace_requests: pddl_telemetry::counter("router.trace_requests"),
        metrics_requests: pddl_telemetry::counter("router.metrics_requests"),
        route_table_requests: pddl_telemetry::counter("router.route_table_requests"),
        reload_fanouts: pddl_telemetry::counter("router.reload_fanouts"),
        connections_total: pddl_telemetry::counter("router.connections_total"),
        connections_shed: pddl_telemetry::counter("router.connections_shed"),
        disconnects: pddl_telemetry::counter("router.disconnects"),
        probe_cycles: pddl_telemetry::counter("router.probe_cycles"),
        probe_failures: pddl_telemetry::counter("router.probe_failures"),
        shard_deaths: pddl_telemetry::counter("router.shard_deaths"),
        shard_revivals: pddl_telemetry::counter("router.shard_revivals"),
        active_connections: pddl_telemetry::gauge("router.active_connections"),
        healthy_shards: pddl_telemetry::gauge("router.healthy_shards"),
        membership_epoch: pddl_telemetry::gauge("router.membership_epoch"),
        forward_latency: pddl_telemetry::histogram("router.forward_latency"),
    })
}

/// Shutdown-flag poll cadence for blocking reads (mirrors the
/// controller's drain behavior).
const SHUTDOWN_POLL: Duration = Duration::from_millis(250);

struct MemberShard {
    id: u64,
    addr: SocketAddr,
    healthy: bool,
}

struct MemberState {
    epoch: u64,
    next_id: u64,
    shards: Vec<MemberShard>,
    ring: HashRing,
}

/// Epoch-stamped fleet membership behind one lock. The hash ring only
/// ever contains *healthy* shards; every mutation rebuilds it and bumps
/// the epoch.
struct Membership {
    vnodes: u32,
    inner: Mutex<MemberState>,
}

impl Membership {
    fn new(vnodes: u32, addrs: &[SocketAddr]) -> Self {
        let shards: Vec<MemberShard> = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| MemberShard { id: i as u64, addr, healthy: true })
            .collect();
        let ring =
            HashRing::with_shards(vnodes, &shards.iter().map(|s| s.id).collect::<Vec<_>>());
        let m = metrics();
        m.healthy_shards.set(shards.len() as i64);
        m.membership_epoch.set(1);
        Self {
            vnodes,
            inner: Mutex::new(MemberState {
                epoch: 1,
                next_id: shards.len() as u64,
                shards,
                ring,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemberState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn rebuild_locked(state: &mut MemberState, vnodes: u32) {
        let healthy: Vec<u64> =
            state.shards.iter().filter(|s| s.healthy).map(|s| s.id).collect();
        state.ring = HashRing::with_shards(vnodes, &healthy);
        state.epoch += 1;
        let m = metrics();
        m.membership_epoch.set(state.epoch as i64);
        m.healthy_shards.set(healthy.len() as i64);
    }

    /// Routes a key under the current epoch: `(epoch, shard id, addr)`.
    fn route(&self, key: u64) -> Option<(u64, u64, SocketAddr)> {
        let state = self.lock();
        let id = state.ring.lookup(key)?;
        let shard = state.shards.iter().find(|s| s.id == id)?;
        Some((state.epoch, shard.id, shard.addr))
    }

    fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Flips a shard's health. Returns the new epoch when the flip
    /// changed anything, `None` when it was already in that state.
    fn mark(&self, id: u64, healthy: bool) -> Option<u64> {
        let mut state = self.lock();
        let shard = state.shards.iter_mut().find(|s| s.id == id)?;
        if shard.healthy == healthy {
            return None;
        }
        shard.healthy = healthy;
        let addr = shard.addr;
        Self::rebuild_locked(&mut state, self.vnodes);
        let m = metrics();
        if healthy {
            m.shard_revivals.inc();
            tlog!(
                Level::Info,
                "router",
                "shard revived",
                shard = id,
                addr = addr.to_string(),
                epoch = state.epoch,
            );
        } else {
            m.shard_deaths.inc();
            tlog!(
                Level::Warn,
                "router",
                "shard marked dead",
                shard = id,
                addr = addr.to_string(),
                epoch = state.epoch,
            );
        }
        Some(state.epoch)
    }

    /// Adds a shard (initially healthy); returns `(id, new epoch)`.
    fn add(&self, addr: SocketAddr) -> (u64, u64) {
        let mut state = self.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.shards.push(MemberShard { id, addr, healthy: true });
        Self::rebuild_locked(&mut state, self.vnodes);
        tlog!(
            Level::Info,
            "router",
            "shard added",
            shard = id,
            addr = addr.to_string(),
            epoch = state.epoch,
        );
        (id, state.epoch)
    }

    /// Removes a shard entirely; returns the new epoch if it existed.
    fn remove(&self, id: u64) -> Option<u64> {
        let mut state = self.lock();
        let before = state.shards.len();
        state.shards.retain(|s| s.id != id);
        if state.shards.len() == before {
            return None;
        }
        Self::rebuild_locked(&mut state, self.vnodes);
        tlog!(Level::Info, "router", "shard removed", shard = id, epoch = state.epoch);
        Some(state.epoch)
    }

    fn table(&self) -> RouteTable {
        let state = self.lock();
        let mut shards: Vec<RouteShard> = state
            .shards
            .iter()
            .map(|s| RouteShard { id: s.id, addr: s.addr.to_string(), healthy: s.healthy })
            .collect();
        shards.sort_by_key(|s| s.id);
        RouteTable { epoch: state.epoch, vnodes: self.vnodes, shard: None, shards }
    }

    /// Snapshot for the prober: `(id, addr, currently-healthy)`.
    fn probe_targets(&self) -> Vec<(u64, SocketAddr, bool)> {
        self.lock().shards.iter().map(|s| (s.id, s.addr, s.healthy)).collect()
    }
}

/// A running router. Dropping the handle stops it.
pub struct Router {
    addr: SocketAddr,
    membership: Arc<Membership>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    probe_thread: Option<JoinHandle<()>>,
    readers: Arc<WaitGroup>,
}

impl Router {
    /// Starts a router on `addr` (port 0 = ephemeral) fronting `shards`
    /// (assigned ids `0..shards.len()` in order). Spawns one acceptor
    /// and one health-prober thread; each client connection gets a cheap
    /// forwarding thread.
    pub fn serve(
        addr: &str,
        shards: &[SocketAddr],
        config: RouterConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let membership = Arc::new(Membership::new(config.vnodes.max(1), shards));
        let shutdown = Arc::new(AtomicBool::new(false));
        let readers = Arc::new(WaitGroup::new());
        tlog!(
            Level::Info,
            "router",
            "listening",
            addr = local.to_string(),
            shards = shards.len() as u64,
            vnodes = config.vnodes.max(1) as u64,
        );

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let membership = Arc::clone(&membership);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || {
                let m = metrics();
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            m.connections_total.inc();
                            if readers.count() >= config.max_connections {
                                m.connections_shed.inc();
                                let mut stream = stream;
                                stream.set_nonblocking(false).ok();
                                let _ = write_line(
                                    &mut stream,
                                    &overload_line(config.retry_after_ms, "connection_limit"),
                                );
                                continue;
                            }
                            stream.set_nonblocking(false).ok();
                            stream.set_read_timeout(Some(SHUTDOWN_POLL)).ok();
                            m.active_connections.inc();
                            readers.add();
                            let membership = Arc::clone(&membership);
                            let shutdown = Arc::clone(&shutdown);
                            let readers = Arc::clone(&readers);
                            std::thread::spawn(move || {
                                if conn_loop(stream, &membership, config, &shutdown).is_err()
                                {
                                    metrics().disconnects.inc();
                                }
                                metrics().active_connections.dec();
                                readers.done();
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        let probe_thread = {
            let shutdown = Arc::clone(&shutdown);
            let membership = Arc::clone(&membership);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    probe_all(&membership, config);
                    // Sleep in slices so shutdown stays responsive.
                    let deadline = Instant::now() + config.probe_interval;
                    while Instant::now() < deadline && !shutdown.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
        };

        Ok(Self {
            addr: local,
            membership,
            shutdown,
            accept_thread: Some(accept_thread),
            probe_thread: Some(probe_thread),
            readers,
        })
    }

    /// The address the router listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live route table (what `{"op":"route_table"}` answers).
    pub fn table(&self) -> RouteTable {
        self.membership.table()
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Adds a shard to the fleet; keys re-map only onto the new shard
    /// (bounded movement). Returns the assigned shard id.
    pub fn add_shard(&self, addr: SocketAddr) -> u64 {
        self.membership.add(addr).0
    }

    /// Removes a shard from the fleet; only keys it owned re-map.
    /// Returns false when no such shard exists.
    pub fn remove_shard(&self, id: u64) -> bool {
        self.membership.remove(id).is_some()
    }

    /// Marks a shard unhealthy without waiting for the prober — test
    /// hook for deterministic death injection.
    pub fn mark_dead(&self, id: u64) -> bool {
        self.membership.mark(id, false).is_some()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
        self.readers.wait();
        tlog!(Level::Info, "router", "stopped", epoch = self.membership.epoch());
    }
}

fn write_line(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

struct ShardConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect_shard(addr: SocketAddr, config: RouterConfig) -> std::io::Result<ShardConn> {
    let stream = TcpStream::connect_timeout(&addr, config.probe_timeout.max(SHUTDOWN_POLL))?;
    stream.set_read_timeout(Some(config.forward_timeout))?;
    stream.set_write_timeout(Some(config.forward_timeout))?;
    let writer = stream.try_clone()?;
    Ok(ShardConn { writer, reader: BufReader::new(stream) })
}

/// One client connection: frame lines, answer control ops locally,
/// forward work frames to their routed shard.
fn conn_loop(
    stream: TcpStream,
    membership: &Membership,
    config: RouterConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let m = metrics();
    let mut client_writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut lines = LineReader::bounded(MAX_FRAME_BYTES);
    // Lazy per-shard connections, owned by this client connection so
    // per-connection request order is preserved end to end.
    let mut conns: HashMap<u64, ShardConn> = HashMap::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let line = match lines.poll(&mut reader) {
            Ok(LinePoll::Line(line)) => line,
            Ok(LinePoll::Eof) => break,
            Ok(LinePoll::Pending) => continue,
            Err(WireError::FrameTooLong { limit }) => {
                let _ = write_line(
                    &mut client_writer,
                    &format!(
                        "{{\"status\":\"err\",\"error\":{{\"invalid_params\":\"frame exceeds {limit} bytes\"}}}}"
                    ),
                );
                break;
            }
            Err(WireError::Malformed { .. }) => break,
            Err(WireError::Io(e)) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        m.requests_total.inc();
        match parse_frame(&line) {
            Ok(ParsedFrame::Stats) => {
                m.stats_requests.inc();
                let out = format!(
                    "{{\"status\":\"stats\",\"snapshot\":{}}}",
                    pddl_telemetry::snapshot().to_json()
                );
                write_line(&mut client_writer, &out)?;
            }
            Ok(ParsedFrame::Trace) => {
                m.trace_requests.inc();
                write_line(&mut client_writer, &flight_recorder().retained_json())?;
            }
            Ok(ParsedFrame::Metrics) => {
                m.metrics_requests.inc();
                let expo = pddl_telemetry::expo::prometheus_global();
                let mut out = String::with_capacity(expo.len() + 40);
                out.push_str("{\"status\":\"metrics\",\"exposition\":");
                pddl_telemetry::push_json_string(&mut out, &expo);
                out.push('}');
                write_line(&mut client_writer, &out)?;
            }
            Ok(ParsedFrame::RouteTable) => {
                m.route_table_requests.inc();
                write_line(&mut client_writer, &membership.table().to_line())?;
            }
            Ok(ParsedFrame::Reload { .. }) => {
                m.reload_fanouts.inc();
                let out = fan_reload(&line, membership, &mut conns, config);
                write_line(&mut client_writer, &out)?;
            }
            Ok(frame) => {
                let key = frame_key(&frame).unwrap_or_else(|| line_key(&line));
                let trace = match &frame {
                    ParsedFrame::Enveloped(env) => env.trace.map(TraceContext::from),
                    _ => None,
                };
                forward(
                    &line,
                    key,
                    trace,
                    membership,
                    &mut conns,
                    &mut client_writer,
                    config,
                )?;
            }
            Err(_) => {
                // Forward malformed lines too: the shard answers with
                // the same typed error it would on a direct connection.
                m.malformed_pass.inc();
                forward(
                    &line,
                    line_key(&line),
                    None,
                    membership,
                    &mut conns,
                    &mut client_writer,
                    config,
                )?;
            }
        }
    }
    Ok(())
}

/// Records the router's `route` span for a traced forwarded request.
fn record_route_span(trace: Option<TraceContext>, t0: Instant, status: SpanStatus) {
    let Some(ctx) = trace else { return };
    let rec = flight_recorder();
    let el = t0.elapsed();
    let start = rec.now_us().saturating_sub(el.as_micros() as u64);
    rec.record_stage(ctx, stages::ROUTE, start, el, status);
}

/// Forwards one work frame to the shard owning `key` and relays the
/// reply. See the module docs for the failure taxonomy.
fn forward(
    line: &str,
    key: u64,
    trace: Option<TraceContext>,
    membership: &Membership,
    conns: &mut HashMap<u64, ShardConn>,
    client: &mut TcpStream,
    config: RouterConfig,
) -> std::io::Result<()> {
    let m = metrics();
    let t0 = Instant::now();
    let mut reroutes = 0u32;
    loop {
        let Some((_epoch, sid, addr)) = membership.route(key) else {
            // No healthy shard owns anything: typed overload (reason
            // "unrouteable" parses as Unknown — still transient).
            m.unrouteable.inc();
            record_route_span(trace, t0, SpanStatus::Error);
            return write_line(client, &overload_line(config.retry_after_ms, "unrouteable"));
        };
        if let std::collections::hash_map::Entry::Vacant(slot) = conns.entry(sid) {
            match connect_shard(addr, config) {
                Ok(c) => {
                    slot.insert(c);
                }
                Err(_) => {
                    // The request never reached the shard — safe to
                    // re-route transparently after absorbing the death.
                    membership.mark(sid, false);
                    reroutes += 1;
                    m.reroutes.inc();
                    if reroutes > config.max_reroutes {
                        m.shard_moved_replies.inc();
                        record_route_span(trace, t0, SpanStatus::Error);
                        return write_line(
                            client,
                            &shard_moved_line(membership.epoch(), config.retry_after_ms),
                        );
                    }
                    continue;
                }
            }
        }
        let Some(conn) = conns.get_mut(&sid) else { continue };
        let exchange = write_line(&mut conn.writer, line).and_then(|()| {
            let mut resp = String::new();
            conn.reader.read_line(&mut resp)?;
            if resp.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "shard closed connection",
                ));
            }
            Ok(resp)
        });
        match exchange {
            Ok(resp) => {
                m.forwarded.inc();
                m.forward_latency.record_duration(t0.elapsed());
                record_route_span(trace, t0, SpanStatus::Ok);
                return write_line(client, resp.trim_end());
            }
            Err(_) => {
                // The frame (fully or partially) reached the shard: it
                // may have executed, so no transparent retry. Absorb
                // the death, answer the typed re-route signal.
                conns.remove(&sid);
                let epoch = membership.mark(sid, false).unwrap_or_else(|| membership.epoch());
                m.shard_moved_replies.inc();
                record_route_span(trace, t0, SpanStatus::Error);
                return write_line(
                    client,
                    &shard_moved_line(epoch, config.retry_after_ms),
                );
            }
        }
    }
}

/// Fans a `{"op":"reload"}` line out to every healthy shard and
/// aggregates the replies into one answer for the client.
///
/// All shards accepting with a consistent version answers that
/// [`ReloadReply`] (`previous`/`epoch` from the first shard to answer);
/// any rejection, unreachable shard, or version divergence answers the
/// typed rejection line, naming the shard. Shards that already accepted
/// stay swapped — the registry is versioned, so re-issuing the reload
/// after fixing the failed shard converges the fleet rather than
/// ping-ponging it.
fn fan_reload(
    line: &str,
    membership: &Membership,
    conns: &mut HashMap<u64, ShardConn>,
    config: RouterConfig,
) -> String {
    let targets: Vec<(u64, SocketAddr)> = membership
        .probe_targets()
        .into_iter()
        .filter(|&(_, _, healthy)| healthy)
        .map(|(id, addr, _)| (id, addr))
        .collect();
    if targets.is_empty() {
        return reload_rejected_line("no_healthy_shards");
    }
    let mut agreed: Option<ReloadReply> = None;
    for (sid, addr) in targets {
        if let std::collections::hash_map::Entry::Vacant(slot) = conns.entry(sid) {
            match connect_shard(addr, config) {
                Ok(c) => {
                    slot.insert(c);
                }
                Err(e) => {
                    membership.mark(sid, false);
                    return reload_rejected_line(&format!("shard {sid} unreachable: {e}"));
                }
            }
        }
        let Some(conn) = conns.get_mut(&sid) else { continue };
        let exchange = write_line(&mut conn.writer, line).and_then(|()| {
            let mut resp = String::new();
            conn.reader.read_line(&mut resp)?;
            if resp.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "shard closed connection",
                ));
            }
            Ok(resp)
        });
        let resp = match exchange {
            Ok(resp) => resp,
            Err(e) => {
                conns.remove(&sid);
                membership.mark(sid, false);
                return reload_rejected_line(&format!("shard {sid} unreachable: {e}"));
            }
        };
        if let Some(reason) = reload_rejected_from_line(&resp) {
            return reload_rejected_line(&format!("shard {sid}: {reason}"));
        }
        let reply = match ReloadReply::from_line(&resp) {
            Ok(reply) => reply,
            Err(e) => return reload_rejected_line(&format!("shard {sid}: {e}")),
        };
        match &agreed {
            None => agreed = Some(reply),
            Some(first) if first.version != reply.version => {
                return reload_rejected_line(&format!(
                    "fanout_diverged: shards report versions {} and {}",
                    first.version, reply.version
                ));
            }
            Some(_) => {}
        }
    }
    match agreed {
        Some(reply) => reply.to_line(),
        None => reload_rejected_line("no_healthy_shards"),
    }
}

/// One prober sweep: `{"op":"stats"}` to every shard, health flips on
/// state change.
fn probe_all(membership: &Membership, config: RouterConfig) {
    let m = metrics();
    m.probe_cycles.inc();
    for (id, addr, was_healthy) in membership.probe_targets() {
        let alive = probe_one(addr, config.probe_timeout);
        if !alive {
            m.probe_failures.inc();
        }
        if alive != was_healthy {
            membership.mark(id, alive);
        }
    }
}

/// True when the shard answers a stats probe within `timeout`.
fn probe_one(addr: SocketAddr, timeout: Duration) -> bool {
    let probe = || -> std::io::Result<bool> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut writer = stream.try_clone()?;
        write_line(&mut writer, "{\"op\":\"stats\"}")?;
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        reader.read_line(&mut resp)?;
        Ok(resp.contains("\"status\":\"stats\""))
    };
    probe().unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().expect("addr"))
            .collect()
    }

    #[test]
    fn membership_epochs_advance_on_every_change() {
        let m = Membership::new(16, &addrs(3));
        let e0 = m.epoch();
        assert!(m.mark(1, false).is_some());
        assert_eq!(m.epoch(), e0 + 1);
        // Idempotent: marking an already-dead shard changes nothing.
        assert!(m.mark(1, false).is_none());
        assert_eq!(m.epoch(), e0 + 1);
        assert!(m.mark(1, true).is_some());
        let (id, _) = m.add("127.0.0.1:9100".parse().expect("addr"));
        assert_eq!(id, 3);
        assert!(m.remove(id).is_some());
        assert!(m.remove(id).is_none());
    }

    #[test]
    fn dead_shards_own_no_keys() {
        let m = Membership::new(16, &addrs(3));
        m.mark(2, false);
        for k in 0..2_000u64 {
            let (_, sid, _) = m.route(k).expect("two healthy shards remain");
            assert_ne!(sid, 2, "key {k} routed to a dead shard");
        }
    }

    #[test]
    fn route_is_none_when_everything_is_dead() {
        let m = Membership::new(16, &addrs(2));
        m.mark(0, false);
        m.mark(1, false);
        assert!(m.route(42).is_none());
        let table = m.table();
        assert_eq!(table.shards.len(), 2);
        assert!(table.shards.iter().all(|s| !s.healthy));
    }

    #[test]
    fn table_reflects_membership_and_renders() {
        let m = Membership::new(8, &addrs(2));
        m.mark(0, false);
        let table = m.table();
        assert_eq!(table.vnodes, 8);
        assert!(table.shard.is_none());
        let parsed = RouteTable::from_line(&table.to_line()).expect("round trip");
        assert_eq!(parsed, table);
    }
}
