//! The routing key: which ring position a prediction request hashes to.
//!
//! PredictDDL's reusability story keys the serving plane: a prediction
//! is a pure function of `(architecture, dataset, training params,
//! cluster spec)`, so routing on exactly that tuple sends every repeat
//! of a workload to the same shard — its embedding cache and dedup
//! cache stay hot, and bit-identical results come from one place. The
//! key deliberately ignores request identity (`client`/`id`) and trace
//! context: retries of the same workload land on the same shard.

use predictddl::{ParsedFrame, PredictionRequest};

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The consistent-hash key of one prediction request: a stable 64-bit
/// hash of the architecture name, dataset, batch size, epochs, and the
/// cluster's feature vector (the paper's arch-hash × cluster-spec key).
/// Identical workloads hash identically across processes and runs.
pub fn routing_key(req: &PredictionRequest) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_bytes(h, req.model_name().as_bytes());
    h = fnv_bytes(h, &[0]); // field separator: "ab"+"c" != "a"+"bc"
    h = fnv_bytes(h, req.dataset.as_bytes());
    h = fnv_bytes(h, &[0]);
    h = fnv_bytes(h, &(req.batch_size as u64).to_le_bytes());
    h = fnv_bytes(h, &(req.epochs as u64).to_le_bytes());
    for f in req.cluster.feature_vector() {
        h = fnv_bytes(h, &f.to_bits().to_le_bytes());
    }
    h
}

/// The routing key of one classified wire frame, when it has one.
/// Control ops have no key (they are answered by whoever receives
/// them); batches route on their first request so a homogeneous batch
/// lands on its cache-warm shard. Observations route on the request
/// they report, so a workload's feedback reaches the same shard that
/// serves its predictions and that shard's calibration stays coherent.
pub fn frame_key(frame: &ParsedFrame) -> Option<u64> {
    match frame {
        ParsedFrame::Single(req) => Some(routing_key(req)),
        ParsedFrame::Enveloped(env) => Some(routing_key(&env.req)),
        ParsedFrame::Batch(reqs) => reqs.first().map(routing_key),
        ParsedFrame::Observe { req, .. } => Some(routing_key(req)),
        ParsedFrame::Stats
        | ParsedFrame::Trace
        | ParsedFrame::Metrics
        | ParsedFrame::RouteTable
        | ParsedFrame::Reload { .. } => None,
    }
}

/// Best-effort routing key for a raw request line `parse_frame`
/// rejected: hash the raw bytes. The router forwards such lines anyway
/// (the shard answers with its typed malformed-frame error, exactly as
/// it would on a direct connection), and byte-hashing keeps the
/// placement deterministic.
pub fn line_key(line: &str) -> u64 {
    fnv_bytes(FNV_OFFSET, line.trim_end().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_cluster::{ClusterState, ServerClass};
    use pddl_ddlsim::Workload;

    fn req(model: &str, servers: usize) -> PredictionRequest {
        PredictionRequest::zoo(
            Workload::standard(model, "cifar10"),
            ClusterState::homogeneous(ServerClass::CpuE5_2630, servers),
        )
    }

    #[test]
    fn key_is_stable_and_workload_sensitive() {
        assert_eq!(routing_key(&req("resnet50", 4)), routing_key(&req("resnet50", 4)));
        assert_ne!(routing_key(&req("resnet50", 4)), routing_key(&req("vgg16", 4)));
        assert_ne!(routing_key(&req("resnet50", 4)), routing_key(&req("resnet50", 8)));
    }

    #[test]
    fn key_ignores_identity_but_not_params() {
        let mut a = req("resnet50", 4);
        let b = req("resnet50", 4);
        assert_eq!(routing_key(&a), routing_key(&b));
        a.batch_size += 1;
        assert_ne!(routing_key(&a), routing_key(&b));
    }
}
