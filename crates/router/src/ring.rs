//! Consistent-hash ring with virtual nodes.
//!
//! Each shard owns `vnodes` points on a 64-bit ring; a key is served by
//! the shard owning the first point clockwise from the key's hash. The
//! properties the serving plane leans on:
//!
//! * **Bounded movement** — adding a shard to an `N`-shard ring steals
//!   keys only from the arcs the new shard's points land in: in
//!   expectation `K/(N+1)` of `K` keys move, and *only* to the new
//!   shard. Removing a shard moves only the keys it owned. Everything
//!   else stays put — no global reshuffle, so shard-local caches (the
//!   embedding cache, the dedup cache) stay warm through resizes.
//! * **Determinism** — point positions depend only on `(shard id,
//!   vnode index)`, so two routers configured with the same membership
//!   agree on every key without coordination.
//! * **Total lookup** — any non-empty ring answers every key (the ring
//!   wraps).
//!
//! The variance of per-shard load shrinks as `1/√vnodes`; the default
//! of 64 keeps the heaviest shard within a few tens of percent of the
//! mean, which is enough for a prediction fleet whose per-key cost is
//! roughly uniform.

/// Default virtual nodes per shard.
pub const DEFAULT_VNODES: u32 = 64;

/// SplitMix64 finalizer — the same mixer the trace layer uses for span
/// derivation; cheap and well distributed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Position of one `(shard, vnode)` pair on the ring.
fn point(shard: u64, vnode: u32) -> u64 {
    mix64(mix64(shard) ^ (vnode as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// A consistent-hash ring mapping 64-bit keys onto shard ids.
#[derive(Clone, Debug)]
pub struct HashRing {
    vnodes: u32,
    /// Ring points, sorted by `(position, shard)` — the shard tie-break
    /// makes the ring deterministic even under (astronomically unlikely)
    /// position collisions.
    points: Vec<(u64, u64)>,
    /// Member shard ids, sorted.
    shards: Vec<u64>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per shard (clamped ≥ 1).
    pub fn new(vnodes: u32) -> Self {
        Self { vnodes: vnodes.max(1), points: Vec::new(), shards: Vec::new() }
    }

    /// A ring populated with `shards` (duplicates ignored).
    pub fn with_shards(vnodes: u32, shards: &[u64]) -> Self {
        let mut ring = Self::new(vnodes);
        for &s in shards {
            ring.add_shard(s);
        }
        ring
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Member shard ids, sorted.
    pub fn shards(&self) -> &[u64] {
        &self.shards
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shard is a member.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// True when `shard` is a member.
    pub fn contains(&self, shard: u64) -> bool {
        self.shards.binary_search(&shard).is_ok()
    }

    /// Adds `shard`; a no-op if it is already a member.
    pub fn add_shard(&mut self, shard: u64) {
        let Err(pos) = self.shards.binary_search(&shard) else {
            return;
        };
        self.shards.insert(pos, shard);
        for v in 0..self.vnodes {
            let p = (point(shard, v), shard);
            let at = self.points.partition_point(|q| *q < p);
            self.points.insert(at, p);
        }
    }

    /// Removes `shard`; a no-op if it is not a member.
    pub fn remove_shard(&mut self, shard: u64) {
        let Ok(pos) = self.shards.binary_search(&shard) else {
            return;
        };
        self.shards.remove(pos);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// The shard owning `key`: the first ring point at or clockwise of
    /// the key's position (wrapping). `None` only on an empty ring —
    /// lookups are total otherwise.
    pub fn lookup(&self, key: u64) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let pos = mix64(key);
        let at = self.points.partition_point(|&(p, _)| p < pos);
        let (_, shard) = self.points[at % self.points.len()];
        Some(shard)
    }

    /// How many of `keys` map to a different shard on `other` — the
    /// "keys moved" cost of a membership change, as a count.
    pub fn moved_keys(&self, other: &HashRing, keys: impl Iterator<Item = u64>) -> usize {
        keys.filter(|&k| self.lookup(k) != other.lookup(k)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_total_and_deterministic() {
        let ring = HashRing::with_shards(64, &[0, 1, 2]);
        let again = HashRing::with_shards(64, &[2, 0, 1]); // insertion order irrelevant
        for k in 0..10_000u64 {
            let s = ring.lookup(k).expect("non-empty ring answers every key");
            assert!(s < 3);
            assert_eq!(again.lookup(k), Some(s));
        }
        assert_eq!(HashRing::new(64).lookup(7), None);
    }

    #[test]
    fn add_shard_moves_keys_only_to_the_new_shard() {
        let before = HashRing::with_shards(64, &[0, 1, 2]);
        let mut after = before.clone();
        after.add_shard(3);
        let mut moved = 0usize;
        for k in 0..10_000u64 {
            let a = before.lookup(k).unwrap();
            let b = after.lookup(k).unwrap();
            if a != b {
                assert_eq!(b, 3, "key {k} moved to an old shard: {a} -> {b}");
                moved += 1;
            }
        }
        // E[moved] = K/4 = 2500; vnodes=64 keeps the variance modest.
        assert!(moved > 0, "a new shard must own some keys");
        assert!(moved < 5_000, "moved {moved} of 10k keys on a 3->4 resize");
    }

    #[test]
    fn remove_shard_moves_only_its_own_keys() {
        let before = HashRing::with_shards(64, &[0, 1, 2, 3]);
        let mut after = before.clone();
        after.remove_shard(1);
        for k in 0..10_000u64 {
            let a = before.lookup(k).unwrap();
            let b = after.lookup(k).unwrap();
            if a != 1 {
                assert_eq!(a, b, "key {k} moved although its shard survived");
            } else {
                assert_ne!(b, 1, "key {k} still maps to the removed shard");
            }
        }
    }

    #[test]
    fn add_then_remove_round_trips() {
        let base = HashRing::with_shards(32, &[10, 20]);
        let mut ring = base.clone();
        ring.add_shard(30);
        ring.remove_shard(30);
        for k in 0..1_000u64 {
            assert_eq!(ring.lookup(k), base.lookup(k));
        }
        assert_eq!(ring.shards(), &[10, 20]);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::with_shards(64, &[0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        for k in 0..40_000u64 {
            counts[ring.lookup(k).unwrap() as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // Mean 10_000; 64 vnodes keeps every shard within ±50%.
            assert!((5_000..=15_000).contains(&c), "shard {s} owns {c} of 40k keys");
        }
    }

    #[test]
    fn duplicate_add_and_missing_remove_are_noops() {
        let mut ring = HashRing::with_shards(16, &[1, 2]);
        let before = ring.clone();
        ring.add_shard(1);
        ring.remove_shard(9);
        assert_eq!(ring.shards(), before.shards());
        for k in 0..500u64 {
            assert_eq!(ring.lookup(k), before.lookup(k));
        }
    }
}
