//! `pddl-router` command-line interface.
//!
//! ```text
//! pddl-router serve   --shards 127.0.0.1:7077,127.0.0.1:7078
//!                     [--addr 127.0.0.1:7070] [--vnodes 64]
//!                     [--probe-ms 500] [--max-conns 1024]
//! pddl-router inspect [--addr 127.0.0.1:7070] [--timeout-ms 5000]
//! ```
//!
//! `serve` fronts a fleet of controller shards (start them with
//! `predictddl-cli serve --shard-id N`); `inspect` prints a running
//! router's route table. Set `PDDL_LOG` (e.g. `PDDL_LOG=info,router=debug`)
//! for structured JSON logs on stderr; see `OPERATIONS.md` for the full
//! fleet runbook.

use pddl_router::{Router, RouterConfig};
use predictddl::RouteTable;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(rest);
    let result = match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        "serve" => cmd_serve(&flags),
        "inspect" => cmd_inspect(&flags),
        _ => {
            eprintln!("unknown command '{cmd}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pddl-router serve   --shards <addr,addr,...> [--addr 127.0.0.1:7070]
                      [--vnodes 64] [--probe-ms 500] [--max-conns 1024]
  pddl-router inspect [--addr 127.0.0.1:7070] [--timeout-ms 5000]
  pddl-router help | --help | -h
options:
  --shards       comma-separated controller shard addresses (required)
  --addr         serve: listen address; inspect: router to query
  --vnodes       virtual nodes per shard on the hash ring (64)
  --probe-ms     health-probe interval in milliseconds (500)
  --max-conns    simultaneous client connection cap (1024)
  --timeout-ms   inspect: connect/read timeout (5000)
  PDDL_LOG=<spec>  structured JSON logs, e.g. PDDL_LOG=info,router=debug";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

/// Set by the SIGINT/SIGTERM handler; polled by the serve loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_handler() {
    // std already links libc; declaring `signal` directly avoids a libc
    // crate dependency. The handler only does an atomic store, which is
    // async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let shards_raw = flags
        .get("shards")
        .ok_or_else(|| "missing required flag --shards".to_string())?;
    let shards: Vec<SocketAddr> = shards_raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("--shards entry '{s}' is not a socket address"))
        })
        .collect::<Result<_, _>>()?;
    if shards.is_empty() {
        return Err("--shards must list at least one controller address".to_string());
    }
    let addr = flags.get("addr").map_or("127.0.0.1:7070", |s| s.as_str());
    let mut config = RouterConfig::default();
    if let Some(v) = flags.get("vnodes") {
        config.vnodes = v.parse().map_err(|_| "--vnodes must be an integer")?;
    }
    if let Some(v) = flags.get("probe-ms") {
        let ms: u64 = v.parse().map_err(|_| "--probe-ms must be an integer")?;
        config.probe_interval = Duration::from_millis(ms.max(1));
    }
    if let Some(v) = flags.get("max-conns") {
        config.max_connections = v.parse().map_err(|_| "--max-conns must be an integer")?;
    }
    let router = Router::serve(addr, &shards, config).map_err(|e| e.to_string())?;
    println!(
        "pddl-router listening on {} fronting {} shard(s), {} vnodes each",
        router.addr(),
        shards.len(),
        config.vnodes.max(1),
    );
    println!(
        "protocol: same line-delimited JSON as a controller; \
         {{\"op\":\"route_table\"}} for the live fleet map; Ctrl-C to stop"
    );
    install_shutdown_handler();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(200));
    }
    let table = router.table();
    eprintln!(
        "shutting down at membership epoch {} ({} healthy of {} shards); final metrics snapshot:",
        table.epoch,
        table.shards.iter().filter(|s| s.healthy).count(),
        table.shards.len(),
    );
    eprintln!("{}", pddl_telemetry::snapshot_json());
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let addr = flags.get("addr").map_or("127.0.0.1:7070", |s| s.as_str());
    let timeout_ms: u64 = flags
        .get("timeout-ms")
        .map_or(Ok(5000), |s| s.parse())
        .map_err(|_| "--timeout-ms must be an integer")?;
    let sock: SocketAddr = addr
        .parse()
        .map_err(|_| format!("--addr '{addr}' is not a socket address"))?;
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| format!("connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(b"{\"op\":\"route_table\"}\n")
        .and_then(|()| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| e.to_string())?;
    let table = RouteTable::from_line(line.trim_end())?;
    println!("route table at {addr}: epoch {}, {} vnodes/shard", table.epoch, table.vnodes);
    if let Some(sid) = table.shard {
        println!("  (answered by shard {sid} directly — identity table)");
    }
    for s in &table.shards {
        let state = if s.healthy { "healthy" } else { "DEAD" };
        println!("  shard {:>3}  {:<21}  {}", s.id, s.addr, state);
    }
    Ok(())
}
