//! Request/response types of the prediction service (step ① of Fig. 7).

use pddl_cluster::ClusterState;
use pddl_ddlsim::Workload;
use pddl_graph::CompGraph;
use serde::{Deserialize, Serialize};

/// How the user supplies the DNN: a zoo name, or an explicit computational
/// graph ("Modern DL libraries automatically generate the DAG for the given
/// DL model" — the graph variant is what that export would submit).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ModelRef {
    /// A model-zoo architecture by name.
    Zoo(String),
    /// An explicit computational graph for architectures outside the zoo
    /// (e.g. NAS candidates).
    Graph(CompGraph),
}

/// A prediction request: the user's workload description plus the target
/// cluster (steps ①–② of Fig. 7).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictionRequest {
    /// The model to predict for (zoo name or explicit graph).
    pub model: ModelRef,
    /// Dataset name — the GHN-registry key.
    pub dataset: String,
    /// Per-worker batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Target cluster description (from the Cluster Resource Collector).
    pub cluster: ClusterState,
}

impl PredictionRequest {
    /// Request for a zoo workload.
    pub fn zoo(w: Workload, cluster: ClusterState) -> Self {
        Self {
            model: ModelRef::Zoo(w.model),
            dataset: w.dataset,
            batch_size: w.batch_size,
            epochs: w.epochs,
            cluster,
        }
    }

    /// Request for a custom graph.
    pub fn graph(g: CompGraph, dataset: &str, batch_size: usize, epochs: usize, cluster: ClusterState) -> Self {
        Self {
            model: ModelRef::Graph(g),
            dataset: dataset.into(),
            batch_size,
            epochs,
            cluster,
        }
    }

    /// Model display name.
    pub fn model_name(&self) -> &str {
        match &self.model {
            ModelRef::Zoo(n) => n,
            ModelRef::Graph(g) => &g.name,
        }
    }
}

/// Prediction result (step ⑥ of Fig. 7).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted training time, seconds.
    pub seconds: f64,
    /// Closest known architecture in embedding space and its cosine
    /// similarity (the Fig. 5 mechanism), when the embedding set is
    /// non-empty.
    pub nearest_architecture: Option<(String, f32)>,
    /// Embedding generation + inference wall time, seconds.
    pub inference_secs: f64,
}

/// Failure modes of request handling.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RequestError {
    /// Zoo name not found.
    UnknownModel(String),
    /// No GHN trained for this dataset → offline training required
    /// (step ④ of Fig. 7).
    NeedsOfflineTraining {
        /// The dataset with no pretrained GHN.
        dataset: String,
    },
    /// Structural validation of a submitted graph failed.
    InvalidGraph(String),
    /// Empty or malformed cluster description.
    InvalidCluster(String),
    /// Degenerate request parameters.
    InvalidParams(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownModel(m) => write!(f, "unknown model '{m}'"),
            RequestError::NeedsOfflineTraining { dataset } => {
                write!(f, "no pretrained GHN for dataset '{dataset}'; offline training required")
            }
            RequestError::InvalidGraph(e) => write!(f, "invalid computational graph: {e}"),
            RequestError::InvalidCluster(e) => write!(f, "invalid cluster: {e}"),
            RequestError::InvalidParams(e) => write!(f, "invalid parameters: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_cluster::ServerClass;

    #[test]
    fn zoo_request_round_trips_json() {
        let req = PredictionRequest::zoo(
            Workload::standard("resnet18", "cifar10"),
            ClusterState::homogeneous(ServerClass::GpuP100, 4),
        );
        let s = serde_json::to_string(&req).unwrap();
        let back: PredictionRequest = serde_json::from_str(&s).unwrap();
        assert_eq!(back.model_name(), "resnet18");
        assert_eq!(back.cluster.num_servers(), 4);
    }

    #[test]
    fn model_name_for_graph_variant() {
        let g = CompGraph::new("custom-nas-42");
        let req = PredictionRequest::graph(
            g,
            "cifar10",
            64,
            5,
            ClusterState::homogeneous(ServerClass::CpuE5_2630, 2),
        );
        assert_eq!(req.model_name(), "custom-nas-42");
    }

    #[test]
    fn errors_display() {
        let e = RequestError::NeedsOfflineTraining { dataset: "mnist".into() };
        assert!(e.to_string().contains("mnist"));
    }
}
