//! The Inference Engine (§III-C): a regression model over the unified
//! feature space [GHN embedding ‖ cluster description ‖ workload scalars].
//!
//! "PredictDDL enables different regression algorithms to be used easily in
//! the prediction model by creating a continuous space that unifies GHN-2
//! embeddings with cluster description features" — the [`Regression`] enum
//! from `pddl-regress` plugs in here, with the paper's second-order
//! polynomial regression as the default.

use pddl_cluster::{ClusterState, CLUSTER_FEATURE_DIM};
use pddl_regress::{Regression, Regressor, StandardScaler};
use pddl_tensor::Matrix;
use pddl_zoo::dataset::dataset_by_name;
use serde::{Deserialize, Serialize};

/// Number of workload scalars appended after embedding + cluster features.
pub const WORKLOAD_FEATS: usize = 3;

/// Inference-engine configuration.
#[derive(Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Regression model (the paper's PR/LR/SVR/MLP choices).
    pub regression: Regression,
    /// Regress `log10(seconds)` instead of raw seconds. Training times span
    /// orders of magnitude across the zoo; the log target keeps the
    /// *relative* error (the paper's metric) uniform across that range.
    pub log_target: bool,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        Self { regression: Regression::polynomial(2, 1e-3), log_target: true }
    }
}

/// One training sample for the engine.
pub struct EngineSample {
    /// GHN embedding of the workload's computational graph.
    pub embedding: Vec<f32>,
    /// Cluster the measurement was taken on.
    pub cluster: ClusterState,
    /// Per-worker batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Dataset name (selects the dataset indicator feature).
    pub dataset: String,
    /// Measured training time, seconds (the regression target).
    pub time_secs: f64,
}

/// The fitted inference engine.
#[derive(Serialize, Deserialize)]
pub struct InferenceEngine {
    cfg: InferenceConfig,
    scaler: Option<StandardScaler>,
    embed_dim: usize,
}

impl InferenceEngine {
    /// Creates an unfitted engine with the given configuration.
    pub fn new(cfg: InferenceConfig) -> Self {
        Self { cfg, scaler: None, embed_dim: 0 }
    }

    /// Assembles the unified feature row.
    pub fn features(
        embedding: &[f32],
        cluster: &ClusterState,
        batch_size: usize,
        epochs: usize,
        dataset: &str,
    ) -> Vec<f32> {
        let mut f = Vec::with_capacity(embedding.len() + CLUSTER_FEATURE_DIM + WORKLOAD_FEATS);
        f.extend_from_slice(embedding);
        f.extend(cluster.feature_vector().iter().map(|&v| v as f32));
        f.push((batch_size as f32).log10());
        f.push(epochs as f32 / 10.0);
        let ds_bytes = dataset_by_name(dataset).map_or(1e8, |d| d.bytes_on_disk as f64);
        f.push((ds_bytes.log10() - 8.0) as f32);
        f
    }

    /// Fits the regression on engine samples.
    pub fn fit(&mut self, samples: &[EngineSample]) {
        assert!(!samples.is_empty(), "no training samples");
        self.embed_dim = samples[0].embedding.len();
        let d = self.embed_dim + CLUSTER_FEATURE_DIM + WORKLOAD_FEATS;
        let mut x = Matrix::zeros(samples.len(), d);
        let mut y = Vec::with_capacity(samples.len());
        for (r, s) in samples.iter().enumerate() {
            assert_eq!(s.embedding.len(), self.embed_dim, "inconsistent embedding dims");
            let row = Self::features(&s.embedding, &s.cluster, s.batch_size, s.epochs, &s.dataset);
            x.set_row(r, &row);
            y.push(if self.cfg.log_target {
                (s.time_secs.max(1e-3)).log10() as f32
            } else {
                s.time_secs as f32
            });
        }
        let scaler = StandardScaler::fit(&x);
        let xs = scaler.transform(&x);
        self.scaler = Some(scaler);
        self.cfg.regression.fit(&xs, &y);
    }

    /// Predicts training time in seconds for one workload.
    pub fn predict(
        &self,
        embedding: &[f32],
        cluster: &ClusterState,
        batch_size: usize,
        epochs: usize,
        dataset: &str,
    ) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        assert_eq!(embedding.len(), self.embed_dim, "embedding width changed");
        let row = Self::features(embedding, cluster, batch_size, epochs, dataset);
        let x = Matrix::from_vec(1, row.len(), row);
        let xs = scaler.transform(&x);
        let raw = self.cfg.regression.predict(&xs)[0] as f64;
        if self.cfg.log_target {
            10f64.powf(raw.clamp(-3.0, 8.0))
        } else {
            raw.max(0.0)
        }
    }

    /// Name of the underlying regression model (Fig. 10 legend).
    pub fn regression_name(&self) -> &'static str {
        self.cfg.regression.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_cluster::ServerClass;
    use pddl_tensor::Rng;

    /// Synthetic engine samples: time = flops-ish from the embedding's first
    /// coordinate, scaled by cluster size.
    fn synth_samples(n: usize, seed: u64) -> Vec<EngineSample> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let complexity = rng.uniform(0.5, 3.0); // stands in for log-FLOPs
                let servers = 1 + rng.below(16);
                let cluster = ClusterState::homogeneous(ServerClass::GpuP100, servers);
                let time = 10f64.powf(complexity as f64) / servers as f64;
                EngineSample {
                    embedding: vec![complexity, complexity * 0.5, 1.0],
                    cluster,
                    batch_size: 128,
                    epochs: 10,
                    dataset: "cifar10".into(),
                    time_secs: time,
                }
            })
            .collect()
    }

    #[test]
    fn fits_and_predicts_within_tolerance() {
        let samples = synth_samples(300, 1);
        let mut engine = InferenceEngine::new(InferenceConfig::default());
        engine.fit(&samples);
        let test = synth_samples(50, 2);
        let mut errs = Vec::new();
        for s in &test {
            let p = engine.predict(&s.embedding, &s.cluster, s.batch_size, s.epochs, &s.dataset);
            errs.push((p / s.time_secs - 1.0).abs());
        }
        let mean: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 0.15, "mean relative error {mean}");
    }

    #[test]
    fn log_target_prevents_negative_predictions() {
        let samples = synth_samples(100, 3);
        let mut engine = InferenceEngine::new(InferenceConfig::default());
        engine.fit(&samples);
        // Extreme extrapolation cannot go below zero seconds.
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 20);
        let p = engine.predict(&[0.0, 0.0, 0.0], &cluster, 1, 1, "cifar10");
        assert!(p > 0.0);
    }

    #[test]
    fn feature_row_width_is_stable() {
        let cluster = ClusterState::homogeneous(ServerClass::CpuE5_2630, 3);
        let f = InferenceEngine::features(&[1.0; 32], &cluster, 128, 10, "cifar10");
        assert_eq!(f.len(), 32 + CLUSTER_FEATURE_DIM + WORKLOAD_FEATS);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn unfitted_engine_panics() {
        let engine = InferenceEngine::new(InferenceConfig::default());
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 1);
        let _ = engine.predict(&[1.0], &cluster, 1, 1, "cifar10");
    }

    #[test]
    fn swapping_regressors_works() {
        use pddl_regress::Kernel;
        for regression in [
            Regression::linear(),
            Regression::polynomial(2, 1e-3),
            Regression::svr(Kernel::Rbf { gamma: 0.1 }, 100.0, 0.05),
        ] {
            let mut engine =
                InferenceEngine::new(InferenceConfig { regression, log_target: true });
            let samples = synth_samples(120, 7);
            engine.fit(&samples);
            let s = &samples[0];
            let p = engine.predict(&s.embedding, &s.cluster, s.batch_size, s.epochs, &s.dataset);
            assert!(p.is_finite() && p > 0.0, "{}: {p}", engine.regression_name());
        }
    }
}
