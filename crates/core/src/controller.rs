//! The Controller (§III-D): "the entry point to train GHN models and to
//! predict the training time of a DNN architecture. The controller has a
//! listener to receive and forward incoming requests to the Task Checker."
//!
//! The Listener speaks newline-delimited JSON over TCP — the same framing
//! as the Cluster Resource Collector. Each connection may send any number
//! of requests and receives one response line per request. A line holding
//! a JSON *array* of prediction requests is a batch: the controller fans
//! the batch out across the [`pddl_par`] work pool and answers with one
//! JSON array of responses in request order. Besides prediction requests,
//! the wire protocol carries one control op: `{"op":"stats"}` returns a
//! live JSON snapshot of the telemetry registry (see the README's
//! "Observability" section for the metric catalogue).
//!
//! ## Hardening
//!
//! Frames are bounded at [`pddl_cluster::MAX_FRAME_BYTES`]; a peer that
//! never sends a newline is cut off, not buffered. Malformed frames earn a
//! typed error reply and a counter bump; over-long frames additionally
//! close the connection (line sync is lost). A request wrapped in a
//! [`RequestEnvelope`] carries a `(client, id)` identity: the controller
//! remembers recent responses per identity, so a client retrying after a
//! lost reply gets the original response back instead of a recomputation —
//! the dedup behind [`ControllerClient::connect_resilient`]'s exactly-once
//! semantics. When `PDDL_FAULT_PLAN` is set (see [`pddl_faults`]), every
//! accepted connection wears deterministic fault injectors.

use crate::offline::PredictDdl;
use crate::request::{Prediction, PredictionRequest, RequestError};
use pddl_cluster::protocol::{read_line_bounded, WireError, MAX_FRAME_BYTES};
use pddl_cluster::retry::{is_transient, Backoff, RetryPolicy};
use pddl_faults::{Direction, FaultPlan, FaultyRead, FaultyWrite};
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Wire response.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum WireResponse {
    /// Successful prediction.
    Ok {
        /// The prediction payload.
        prediction: Prediction,
    },
    /// Rejected or failed request.
    Err {
        /// Why the request failed.
        error: RequestError,
    },
}

/// A prediction request wrapped with a client-chosen identity, enabling
/// idempotent retry: the controller caches the response under
/// `(client, id)` and serves it again verbatim if the same identity
/// reappears (e.g. after the original reply was lost in transit).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client session token (unique per [`ControllerClient`] instance).
    pub client: u64,
    /// Request number within the session.
    pub id: u64,
    /// The wrapped request.
    pub req: PredictionRequest,
}

/// The response to a [`RequestEnvelope`], echoing its identity so the
/// client can match replies to requests across retries and reject frames
/// corrupted in transit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Echo of the request's client token.
    pub client: u64,
    /// Echo of the request's id.
    pub id: u64,
    /// The actual response.
    pub resp: WireResponse,
}

/// Control operations multiplexed onto the request stream. Tried before
/// [`PredictionRequest`] parsing; the `op` tag cannot collide with a
/// prediction request's fields.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
enum ControlOp {
    /// Return a JSON snapshot of the telemetry registry.
    #[allow(dead_code)] // constructed only through the derived Deserialize
    Stats,
}

/// One classified request frame (see [`parse_frame`]).
#[derive(Clone, Debug)]
pub enum ParsedFrame {
    /// `{"op":"stats"}` — telemetry snapshot request.
    Stats,
    /// A JSON array of prediction requests (a batch).
    Batch(Vec<PredictionRequest>),
    /// An id-wrapped single request (idempotent-retry path).
    Enveloped(RequestEnvelope),
    /// A bare single request.
    Single(Box<PredictionRequest>),
}

/// Classifies one request line into a [`ParsedFrame`]. This is the
/// controller's entire peer-facing parser: it must return `Err` — never
/// panic — for arbitrary bytes (enforced by `tests/wire_fuzz.rs`).
pub fn parse_frame(line: &str) -> Result<ParsedFrame, String> {
    if serde_json::from_str::<ControlOp>(line).is_ok() {
        return Ok(ParsedFrame::Stats);
    }
    if line.trim_start().starts_with('[') {
        return match serde_json::from_str::<Vec<PredictionRequest>>(line) {
            Ok(reqs) => Ok(ParsedFrame::Batch(reqs)),
            Err(e) => Err(format!("malformed batch request: {e}")),
        };
    }
    if let Ok(env) = serde_json::from_str::<RequestEnvelope>(line) {
        return Ok(ParsedFrame::Enveloped(env));
    }
    match serde_json::from_str::<PredictionRequest>(line) {
        Ok(req) => Ok(ParsedFrame::Single(Box::new(req))),
        Err(e) => Err(format!("malformed request: {e}")),
    }
}

/// Controller-side metric handles, resolved once (increments stay
/// lock-free on the request path).
struct Metrics {
    requests_total: &'static Counter,
    requests_ok: &'static Counter,
    requests_err: &'static Counter,
    stats_requests: &'static Counter,
    batch_requests: &'static Counter,
    malformed_frames: &'static Counter,
    oversize_frames: &'static Counter,
    disconnects: &'static Counter,
    dedup_hits: &'static Counter,
    connections_total: &'static Counter,
    active_connections: &'static Gauge,
    request_latency: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        requests_total: pddl_telemetry::counter("controller.requests_total"),
        requests_ok: pddl_telemetry::counter("controller.requests_ok"),
        requests_err: pddl_telemetry::counter("controller.requests_err"),
        stats_requests: pddl_telemetry::counter("controller.stats_requests"),
        batch_requests: pddl_telemetry::counter("controller.batch_requests"),
        malformed_frames: pddl_telemetry::counter("controller.malformed_frames"),
        oversize_frames: pddl_telemetry::counter("controller.oversize_frames"),
        disconnects: pddl_telemetry::counter("controller.disconnects"),
        dedup_hits: pddl_telemetry::counter("controller.request_dedups"),
        connections_total: pddl_telemetry::counter("controller.connections_total"),
        active_connections: pddl_telemetry::gauge("controller.active_connections"),
        request_latency: pddl_telemetry::histogram("controller.request_latency"),
    })
}

/// Entries kept in the idempotent-retry response cache. Sized so a burst
/// of retried requests stays deduplicated while memory stays bounded
/// (~cache-cap × response-line bytes).
const RESPONSE_CACHE_CAP: usize = 4096;

/// Bounded FIFO cache of rendered response lines keyed by request
/// identity. Shared across connections: a client may retry on a fresh
/// connection after the original died mid-reply.
#[derive(Default)]
struct ResponseCache {
    inner: Mutex<CacheInner>,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<(u64, u64), String>,
    order: VecDeque<(u64, u64)>,
}

impl ResponseCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panicked handler cannot leave the cache in a broken state (all
        // mutations are single statements), so poison is safe to clear.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, key: (u64, u64)) -> Option<String> {
        self.lock().map.get(&key).cloned()
    }

    fn put(&self, key: (u64, u64), line: String) {
        let mut inner = self.lock();
        if inner.map.insert(key, line).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > RESPONSE_CACHE_CAP {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }
}

/// A running prediction service. Dropping the handle stops the listener.
pub struct Controller {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Controller {
    /// Serves a trained system on `addr` (port 0 = ephemeral). Each
    /// connection is handled on its own thread; the system is shared
    /// read-only. Finished handler threads are reaped in the accept loop,
    /// so a long-lived controller does not accumulate dead `JoinHandle`s;
    /// the live count is exported as `controller.active_connections`.
    ///
    /// If `PDDL_FAULT_PLAN` is set, every accepted connection is wrapped
    /// in that plan's deterministic fault injectors; an unparseable plan
    /// is an `InvalidInput` error.
    pub fn serve(addr: &str, system: PredictDdl) -> std::io::Result<Self> {
        let fault_plan = FaultPlan::from_env()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let system = Arc::new(system);
        let cache = Arc::new(ResponseCache::default());
        tlog!(Level::Info, "controller", "listening", addr = local.to_string());
        if let Some(plan) = &fault_plan {
            tlog!(Level::Warn, "controller", "fault injection active", plan = plan.to_spec());
        }

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&requests_served);
            std::thread::spawn(move || {
                let m = metrics();
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                let mut next_conn: u64 = 0;
                while !shutdown.load(Ordering::Relaxed) {
                    reap_finished(&mut handlers);
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            stream.set_nonblocking(false).ok();
                            m.connections_total.inc();
                            m.active_connections.inc();
                            tlog!(
                                Level::Debug,
                                "controller",
                                "connection accepted",
                                peer = peer.to_string(),
                            );
                            let conn = next_conn;
                            next_conn += 1;
                            let system = Arc::clone(&system);
                            let served = Arc::clone(&served);
                            let cache = Arc::clone(&cache);
                            handlers.push(std::thread::spawn(move || {
                                let outcome = split_stream(stream, fault_plan.as_ref(), conn)
                                    .and_then(|(r, w)| {
                                        handle_conn(r, w, &system, &served, &cache)
                                    });
                                if outcome.is_err() {
                                    // Mid-request disconnect or transport
                                    // death: reap the connection, keep the
                                    // service alive.
                                    metrics().disconnects.inc();
                                }
                                metrics().active_connections.dec();
                            }));
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
        };

        Ok(Self {
            addr: local,
            shutdown,
            requests_served,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered by computation (deduplicated replays of a
    /// cached response are counted in `controller.request_dedups`, not
    /// here).
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Joins (and drops) every handler thread that has already finished.
fn reap_finished(handlers: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < handlers.len() {
        if handlers[i].is_finished() {
            let _ = handlers.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Splits a stream into boxed read/write halves, wearing the fault plan's
/// injectors when one is active.
fn split_stream(
    stream: TcpStream,
    plan: Option<&FaultPlan>,
    conn: u64,
) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    let writer = stream.try_clone()?;
    Ok(match plan {
        Some(p) => (
            Box::new(FaultyRead::new(stream, p.schedule(conn, Direction::Read))),
            Box::new(FaultyWrite::new(writer, p.schedule(conn, Direction::Write))),
        ),
        None => (Box::new(stream), Box::new(writer)),
    })
}

fn write_line(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn handle_conn(
    reader: Box<dyn Read + Send>,
    mut writer: Box<dyn Write + Send>,
    system: &PredictDdl,
    served: &AtomicU64,
    cache: &ResponseCache,
) -> std::io::Result<()> {
    let m = metrics();
    let mut reader = BufReader::new(reader);
    loop {
        let line = match read_line_bounded(&mut reader, MAX_FRAME_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => break, // clean EOF
            Err(WireError::FrameTooLong { limit }) => {
                // Line sync is lost: reply (best effort) and drop the peer.
                m.oversize_frames.inc();
                let response = WireResponse::Err {
                    error: RequestError::InvalidParams(format!(
                        "frame exceeds {limit} bytes"
                    )),
                };
                let _ = write_line(&mut writer, &serde_json::to_string(&response)?);
                break;
            }
            // read_line_bounded does not parse, so Malformed cannot occur
            // here; treat it like an over-long frame rather than panicking.
            Err(WireError::Malformed { .. }) => break,
            Err(WireError::Io(e)) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let frame = match parse_frame(&line) {
            Ok(frame) => frame,
            Err(detail) => {
                m.malformed_frames.inc();
                m.requests_total.inc();
                m.requests_err.inc();
                served.fetch_add(1, Ordering::Relaxed);
                let response =
                    WireResponse::Err { error: RequestError::InvalidParams(detail) };
                write_line(&mut writer, &serde_json::to_string(&response)?)?;
                continue;
            }
        };
        match frame {
            ParsedFrame::Stats => {
                m.stats_requests.inc();
                let out = format!(
                    "{{\"status\":\"stats\",\"snapshot\":{}}}",
                    pddl_telemetry::snapshot().to_json()
                );
                write_line(&mut writer, &out)?;
            }
            // Batch requests: a JSON *array* of prediction requests. The
            // per-request work fans out across the work pool via
            // [`PredictDdl::predict_many`]; the response is one JSON array
            // of wire responses, in request order.
            ParsedFrame::Batch(reqs) => {
                m.batch_requests.inc();
                m.requests_total.add(reqs.len() as u64);
                let results = system.predict_many(&reqs);
                let responses: Vec<WireResponse> = results
                    .into_iter()
                    .map(|r| match r {
                        Ok(prediction) => {
                            m.requests_ok.inc();
                            WireResponse::Ok { prediction }
                        }
                        Err(error) => {
                            m.requests_err.inc();
                            WireResponse::Err { error }
                        }
                    })
                    .collect();
                served.fetch_add(responses.len() as u64, Ordering::Relaxed);
                write_line(&mut writer, &serde_json::to_string(&responses)?)?;
                let elapsed = t0.elapsed();
                m.request_latency.record_duration(elapsed);
                tlog!(
                    Level::Debug,
                    "controller.request",
                    "served batch",
                    batch_size = responses.len() as u64,
                    latency_us = elapsed.as_micros() as u64,
                );
            }
            // Id-wrapped single request: consult the response cache first,
            // so a retried request replays the original response instead
            // of being recomputed.
            ParsedFrame::Enveloped(env) => {
                let key = (env.client, env.id);
                if let Some(cached) = cache.get(key) {
                    m.dedup_hits.inc();
                    tlog!(
                        Level::Debug,
                        "controller.request",
                        "deduplicated retry",
                        client = env.client,
                        id = env.id,
                    );
                    write_line(&mut writer, &cached)?;
                    continue;
                }
                m.requests_total.inc();
                let resp = predict_one(system, &env.req, m);
                let out = serde_json::to_string(&ResponseEnvelope {
                    client: env.client,
                    id: env.id,
                    resp,
                })?;
                cache.put(key, out.clone());
                served.fetch_add(1, Ordering::Relaxed);
                write_line(&mut writer, &out)?;
                m.request_latency.record_duration(t0.elapsed());
            }
            ParsedFrame::Single(req) => {
                m.requests_total.inc();
                let response = predict_one(system, &req, m);
                served.fetch_add(1, Ordering::Relaxed);
                write_line(&mut writer, &serde_json::to_string(&response)?)?;
                let elapsed = t0.elapsed();
                m.request_latency.record_duration(elapsed);
                match &response {
                    WireResponse::Ok { .. } => {
                        tlog!(
                            Level::Debug,
                            "controller.request",
                            "served",
                            latency_us = elapsed.as_micros() as u64,
                        );
                    }
                    WireResponse::Err { error } => {
                        tlog!(
                            Level::Warn,
                            "controller.request",
                            "request failed",
                            error = error.to_string(),
                            latency_us = elapsed.as_micros() as u64,
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs one prediction, recording ok/err counters.
fn predict_one(system: &PredictDdl, req: &PredictionRequest, m: &Metrics) -> WireResponse {
    match system.predict(req) {
        Ok(prediction) => {
            m.requests_ok.inc();
            WireResponse::Ok { prediction }
        }
        Err(error) => {
            m.requests_err.inc();
            WireResponse::Err { error }
        }
    }
}

/// Client-side metric handles.
struct ClientMetrics {
    requests: &'static Counter,
    timeouts: &'static Counter,
    retries: &'static Counter,
    reconnects: &'static Counter,
    mismatches: &'static Counter,
}

fn client_metrics() -> &'static ClientMetrics {
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ClientMetrics {
        requests: pddl_telemetry::counter("controller_client.requests"),
        timeouts: pddl_telemetry::counter("controller_client.timeouts"),
        retries: pddl_telemetry::counter("controller_client.retries"),
        reconnects: pddl_telemetry::counter("controller_client.reconnects"),
        mismatches: pddl_telemetry::counter("controller_client.response_mismatches"),
    })
}

/// A process-unique-ish session token for request identities. Collisions
/// across processes are harmless (the dedup cache would merely replay a
/// response to a client that provably sent the same session+id).
fn session_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let t = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ NEXT.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        ^ ((std::process::id() as u64) << 32)
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Blocking client for the controller protocol.
pub struct ControllerClient {
    conn: Option<Conn>,
    addr: SocketAddr,
    timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
    session: u64,
    next_id: u64,
}

impl ControllerClient {
    /// Connects without timeouts: a dead or stalled server blocks
    /// indefinitely. Prefer [`Self::connect_with_timeout`] for anything
    /// beyond tests on localhost, and [`Self::connect_resilient`] when the
    /// transport itself is unreliable.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let mut client = Self::disconnected(addr, None, None);
        client.ensure_conn()?;
        Ok(client)
    }

    /// Connects with `timeout` applied to the TCP connect and to every
    /// subsequent read and write. Timed-out requests surface as
    /// `TimedOut`/`WouldBlock` errors and are counted in the
    /// `controller_client.timeouts` counter.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let mut client = Self::disconnected(addr, Some(timeout), None);
        client.ensure_conn()?;
        Ok(client)
    }

    /// Connects under `policy`: every [`Self::predict`] is wrapped in a
    /// [`RequestEnvelope`] with a fresh `(session, id)` identity and
    /// retried with capped jittered exponential backoff on transport
    /// failures, per-attempt deadlines, and reconnection. Combined with
    /// the controller's response cache this gives exactly-once results: a
    /// retried request whose original reply was lost replays the cached
    /// response instead of recomputing.
    ///
    /// The initial TCP connect is itself retried under the policy, so a
    /// resilient client can be created before its controller is up.
    pub fn connect_resilient(addr: SocketAddr, policy: RetryPolicy) -> std::io::Result<Self> {
        let mut client =
            Self::disconnected(addr, Some(policy.attempt_timeout), Some(policy));
        let mut backoff = Backoff::new(policy);
        loop {
            match client.ensure_conn() {
                Ok(_) => return Ok(client),
                Err(e) if is_transient(&e) => match backoff.next_delay() {
                    Some(delay) => {
                        client_metrics().retries.inc();
                        std::thread::sleep(delay);
                    }
                    None => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }

    fn disconnected(
        addr: SocketAddr,
        timeout: Option<Duration>,
        retry: Option<RetryPolicy>,
    ) -> Self {
        Self { conn: None, addr, timeout, retry, session: session_token(), next_id: 1 }
    }

    /// Opens the TCP connection if none is live.
    fn ensure_conn(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = match self.timeout {
                Some(t) => {
                    let s = TcpStream::connect_timeout(&self.addr, t).inspect_err(|_| {
                        client_metrics().timeouts.inc();
                    })?;
                    s.set_read_timeout(Some(t))?;
                    s.set_write_timeout(Some(t))?;
                    s
                }
                None => TcpStream::connect(self.addr)?,
            };
            let writer = stream.try_clone()?;
            self.conn = Some(Conn { writer, reader: BufReader::new(stream) });
        }
        self.conn.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "connection unavailable")
        })
    }

    /// Sends one request and waits for the response. Under
    /// [`Self::connect_resilient`], the request is id-wrapped and retried
    /// on transport failures (see [`RequestEnvelope`]).
    pub fn predict(
        &mut self,
        req: &PredictionRequest,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        if let Some(policy) = self.retry {
            return self.predict_resilient(req, policy);
        }
        let line = serde_json::to_string(req)?;
        let resp = self.round_trip(&line)?;
        let wire: WireResponse = serde_json::from_str(resp.trim_end())?;
        Ok(match wire {
            WireResponse::Ok { prediction } => Ok(prediction),
            WireResponse::Err { error } => Err(error),
        })
    }

    /// The enveloped, retrying predict path. A response is accepted only
    /// if it parses as a [`ResponseEnvelope`] echoing this exact
    /// `(session, id)` — anything else (corrupt frame, stale reply on a
    /// resynchronized stream, the controller's un-id'd malformed-frame
    /// error) drops the connection and retries. Replays hit the
    /// controller's response cache, so results arrive exactly once.
    fn predict_resilient(
        &mut self,
        req: &PredictionRequest,
        policy: RetryPolicy,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        let cm = client_metrics();
        let id = self.next_id;
        self.next_id += 1;
        let envelope =
            RequestEnvelope { client: self.session, id, req: req.clone() };
        let line = serde_json::to_string(&envelope)?;
        // Mix the request id into the jitter stream so concurrent requests
        // back off on decorrelated schedules.
        let mut backoff = Backoff::new(RetryPolicy {
            jitter_seed: policy.jitter_seed ^ id.wrapping_mul(0xA24B_AED4_963E_E407),
            ..policy
        });
        let mut last_err: std::io::Error;
        loop {
            let was_connected = self.conn.is_some();
            match self.round_trip(&line) {
                Ok(resp) => {
                    match serde_json::from_str::<ResponseEnvelope>(resp.trim_end()) {
                        Ok(renv) if renv.client == self.session && renv.id == id => {
                            return Ok(match renv.resp {
                                WireResponse::Ok { prediction } => Ok(prediction),
                                WireResponse::Err { error } => Err(error),
                            });
                        }
                        _ => {
                            // Corrupted or mismatched reply: the stream can
                            // no longer be trusted to be in sync.
                            cm.mismatches.inc();
                            self.conn = None;
                            last_err = std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "response did not echo the request identity",
                            );
                        }
                    }
                }
                Err(e) if is_transient(&e) => {
                    self.conn = None;
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
            match backoff.next_delay() {
                Some(delay) => {
                    cm.retries.inc();
                    if was_connected {
                        cm.reconnects.inc();
                    }
                    std::thread::sleep(delay);
                }
                None => return Err(last_err),
            }
        }
    }

    /// Sends a batch of requests as one JSON-array line and waits for the
    /// JSON array of per-request responses (request order is preserved).
    /// Server-side the batch fans out across the work pool. Batch frames
    /// are not id-wrapped; under an unreliable transport, prefer repeated
    /// [`Self::predict`] calls on a resilient client.
    pub fn predict_batch(
        &mut self,
        reqs: &[PredictionRequest],
    ) -> std::io::Result<Vec<Result<Prediction, RequestError>>> {
        let line = serde_json::to_string(&reqs.to_vec())?;
        let resp = self.round_trip(&line)?;
        let wire: Vec<WireResponse> = serde_json::from_str(resp.trim_end())?;
        Ok(wire
            .into_iter()
            .map(|w| match w {
                WireResponse::Ok { prediction } => Ok(prediction),
                WireResponse::Err { error } => Err(error),
            })
            .collect())
    }

    /// Requests a live telemetry snapshot from the controller
    /// (`{"op":"stats"}` on the wire).
    pub fn stats(&mut self) -> std::io::Result<Snapshot> {
        let resp = self.round_trip("{\"op\":\"stats\"}")?;
        let doc = pddl_telemetry::JsonValue::parse(resp.trim_end())
            .map_err(invalid_data)?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("stats") {
            return Err(invalid_data("response is not a stats payload".to_string()));
        }
        let snapshot = doc.get("snapshot").ok_or_else(|| {
            invalid_data("stats response missing 'snapshot'".to_string())
        })?;
        Snapshot::from_value(snapshot).map_err(invalid_data)
    }

    /// Writes one line, reads one line; counts requests and timeouts.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        let m = client_metrics();
        m.requests.inc();
        let io = |e: std::io::Error| {
            if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
                m.timeouts.inc();
            }
            e
        };
        let conn = self.ensure_conn().map_err(io)?;
        conn.writer.write_all(line.as_bytes()).map_err(io)?;
        conn.writer.write_all(b"\n").map_err(io)?;
        conn.writer.flush().map_err(io)?;
        let mut resp = String::new();
        conn.reader.read_line(&mut resp).map_err(io)?;
        if resp.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "controller closed connection",
            ));
        }
        Ok(resp)
    }
}

fn invalid_data(e: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}
