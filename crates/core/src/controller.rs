//! The Controller (§III-D): "the entry point to train GHN models and to
//! predict the training time of a DNN architecture. The controller has a
//! listener to receive and forward incoming requests to the Task Checker."
//!
//! The Listener speaks newline-delimited JSON over TCP — the same framing
//! as the Cluster Resource Collector. Each connection may send any number
//! of requests and receives one response line per request.

use crate::offline::PredictDdl;
use crate::request::{Prediction, PredictionRequest, RequestError};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Wire response.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum WireResponse {
    Ok { prediction: Prediction },
    Err { error: RequestError },
}

/// A running prediction service. Dropping the handle stops the listener.
pub struct Controller {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Controller {
    /// Serves a trained system on `addr` (port 0 = ephemeral). Each
    /// connection is handled on its own thread; the system is shared
    /// read-only.
    pub fn serve(addr: &str, system: PredictDdl) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let system = Arc::new(system);

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&requests_served);
            std::thread::spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            let system = Arc::clone(&system);
                            let served = Arc::clone(&served);
                            handlers.push(std::thread::spawn(move || {
                                let _ = handle_conn(stream, &system, &served);
                            }));
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
        };

        Ok(Self {
            addr: local,
            shutdown,
            requests_served,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered (ok or error).
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_conn(
    stream: TcpStream,
    system: &PredictDdl,
    served: &AtomicU64,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<PredictionRequest>(&line) {
            Ok(req) => match system.predict(&req) {
                Ok(prediction) => WireResponse::Ok { prediction },
                Err(error) => WireResponse::Err { error },
            },
            Err(e) => WireResponse::Err {
                error: RequestError::InvalidParams(format!("malformed request: {e}")),
            },
        };
        served.fetch_add(1, Ordering::Relaxed);
        let mut out = serde_json::to_string(&response)?;
        out.push('\n');
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

/// Blocking client for the controller protocol.
pub struct ControllerClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ControllerClient {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Self { writer, reader: BufReader::new(stream) })
    }

    /// Sends one request and waits for the response.
    pub fn predict(
        &mut self,
        req: &PredictionRequest,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        let mut line = serde_json::to_string(req)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut resp = String::new();
        self.reader.read_line(&mut resp)?;
        if resp.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "controller closed connection",
            ));
        }
        let wire: WireResponse = serde_json::from_str(resp.trim_end())?;
        Ok(match wire {
            WireResponse::Ok { prediction } => Ok(prediction),
            WireResponse::Err { error } => Err(error),
        })
    }
}
