//! The Controller (§III-D): "the entry point to train GHN models and to
//! predict the training time of a DNN architecture. The controller has a
//! listener to receive and forward incoming requests to the Task Checker."
//!
//! The Listener speaks newline-delimited JSON over TCP — the same framing
//! as the Cluster Resource Collector. Each connection may send any number
//! of requests and receives one response line per request. A line holding
//! a JSON *array* of prediction requests is a batch: the controller fans
//! the batch out across the [`pddl_par`] work pool and answers with one
//! JSON array of responses in request order. Besides prediction requests,
//! the wire protocol carries one control op: `{"op":"stats"}` returns a
//! live JSON snapshot of the telemetry registry (see the README's
//! "Observability" section for the metric catalogue).

use crate::offline::PredictDdl;
use crate::request::{Prediction, PredictionRequest, RequestError};
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level, Snapshot};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire response.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum WireResponse {
    /// Successful prediction.
    Ok {
        /// The prediction payload.
        prediction: Prediction,
    },
    /// Rejected or failed request.
    Err {
        /// Why the request failed.
        error: RequestError,
    },
}

/// Control operations multiplexed onto the request stream. Tried before
/// [`PredictionRequest`] parsing; the `op` tag cannot collide with a
/// prediction request's fields.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
enum ControlOp {
    /// Return a JSON snapshot of the telemetry registry.
    #[allow(dead_code)] // constructed only through the derived Deserialize
    Stats,
}

/// Controller-side metric handles, resolved once (increments stay
/// lock-free on the request path).
struct Metrics {
    requests_total: &'static Counter,
    requests_ok: &'static Counter,
    requests_err: &'static Counter,
    stats_requests: &'static Counter,
    batch_requests: &'static Counter,
    connections_total: &'static Counter,
    active_connections: &'static Gauge,
    request_latency: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        requests_total: pddl_telemetry::counter("controller.requests_total"),
        requests_ok: pddl_telemetry::counter("controller.requests_ok"),
        requests_err: pddl_telemetry::counter("controller.requests_err"),
        stats_requests: pddl_telemetry::counter("controller.stats_requests"),
        batch_requests: pddl_telemetry::counter("controller.batch_requests"),
        connections_total: pddl_telemetry::counter("controller.connections_total"),
        active_connections: pddl_telemetry::gauge("controller.active_connections"),
        request_latency: pddl_telemetry::histogram("controller.request_latency"),
    })
}

/// A running prediction service. Dropping the handle stops the listener.
pub struct Controller {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Controller {
    /// Serves a trained system on `addr` (port 0 = ephemeral). Each
    /// connection is handled on its own thread; the system is shared
    /// read-only. Finished handler threads are reaped in the accept loop,
    /// so a long-lived controller does not accumulate dead `JoinHandle`s;
    /// the live count is exported as `controller.active_connections`.
    pub fn serve(addr: &str, system: PredictDdl) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let system = Arc::new(system);
        tlog!(Level::Info, "controller", "listening", addr = local.to_string());

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&requests_served);
            std::thread::spawn(move || {
                let m = metrics();
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                while !shutdown.load(Ordering::Relaxed) {
                    reap_finished(&mut handlers);
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            stream.set_nonblocking(false).ok();
                            m.connections_total.inc();
                            m.active_connections.inc();
                            tlog!(
                                Level::Debug,
                                "controller",
                                "connection accepted",
                                peer = peer.to_string(),
                            );
                            let system = Arc::clone(&system);
                            let served = Arc::clone(&served);
                            handlers.push(std::thread::spawn(move || {
                                let _ = handle_conn(stream, &system, &served);
                                metrics().active_connections.dec();
                            }));
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
        };

        Ok(Self {
            addr: local,
            shutdown,
            requests_served,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered (ok or error).
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Joins (and drops) every handler thread that has already finished.
fn reap_finished(handlers: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < handlers.len() {
        if handlers[i].is_finished() {
            let _ = handlers.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn handle_conn(
    stream: TcpStream,
    system: &PredictDdl,
    served: &AtomicU64,
) -> std::io::Result<()> {
    let m = metrics();
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let t0 = Instant::now();
        // Control ops first: `{"op":"stats"}` has no overlap with the
        // prediction-request schema.
        if let Ok(op) = serde_json::from_str::<ControlOp>(&line) {
            match op {
                ControlOp::Stats => {
                    m.stats_requests.inc();
                    let mut out = format!(
                        "{{\"status\":\"stats\",\"snapshot\":{}}}",
                        pddl_telemetry::snapshot().to_json()
                    );
                    out.push('\n');
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                }
            }
            continue;
        }
        // Batch requests: a JSON *array* of prediction requests. The
        // per-request work fans out across the work pool via
        // [`PredictDdl::predict_many`]; the response is one JSON array of
        // wire responses, in request order.
        if line.trim_start().starts_with('[') {
            match serde_json::from_str::<Vec<PredictionRequest>>(&line) {
                Ok(reqs) => {
                    m.batch_requests.inc();
                    m.requests_total.add(reqs.len() as u64);
                    let results = system.predict_many(&reqs);
                    let responses: Vec<WireResponse> = results
                        .into_iter()
                        .map(|r| match r {
                            Ok(prediction) => {
                                m.requests_ok.inc();
                                WireResponse::Ok { prediction }
                            }
                            Err(error) => {
                                m.requests_err.inc();
                                WireResponse::Err { error }
                            }
                        })
                        .collect();
                    served.fetch_add(responses.len() as u64, Ordering::Relaxed);
                    let mut out = serde_json::to_string(&responses)?;
                    out.push('\n');
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                    let elapsed = t0.elapsed();
                    m.request_latency.record_duration(elapsed);
                    tlog!(
                        Level::Debug,
                        "controller.request",
                        "served batch",
                        batch_size = responses.len() as u64,
                        latency_us = elapsed.as_micros() as u64,
                    );
                }
                Err(e) => {
                    m.requests_total.inc();
                    m.requests_err.inc();
                    served.fetch_add(1, Ordering::Relaxed);
                    let response = WireResponse::Err {
                        error: RequestError::InvalidParams(format!(
                            "malformed batch request: {e}"
                        )),
                    };
                    let mut out = serde_json::to_string(&response)?;
                    out.push('\n');
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                }
            }
            continue;
        }
        m.requests_total.inc();
        let response = match serde_json::from_str::<PredictionRequest>(&line) {
            Ok(req) => match system.predict(&req) {
                Ok(prediction) => WireResponse::Ok { prediction },
                Err(error) => WireResponse::Err { error },
            },
            Err(e) => WireResponse::Err {
                error: RequestError::InvalidParams(format!("malformed request: {e}")),
            },
        };
        served.fetch_add(1, Ordering::Relaxed);
        let mut out = serde_json::to_string(&response)?;
        out.push('\n');
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
        let elapsed = t0.elapsed();
        m.request_latency.record_duration(elapsed);
        match &response {
            WireResponse::Ok { .. } => {
                m.requests_ok.inc();
                tlog!(
                    Level::Debug,
                    "controller.request",
                    "served",
                    latency_us = elapsed.as_micros() as u64,
                );
            }
            WireResponse::Err { error } => {
                m.requests_err.inc();
                tlog!(
                    Level::Warn,
                    "controller.request",
                    "request failed",
                    error = error.to_string(),
                    latency_us = elapsed.as_micros() as u64,
                );
            }
        }
    }
    Ok(())
}

/// Client-side metric handles.
struct ClientMetrics {
    requests: &'static Counter,
    timeouts: &'static Counter,
}

fn client_metrics() -> &'static ClientMetrics {
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ClientMetrics {
        requests: pddl_telemetry::counter("controller_client.requests"),
        timeouts: pddl_telemetry::counter("controller_client.timeouts"),
    })
}

/// Blocking client for the controller protocol.
pub struct ControllerClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ControllerClient {
    /// Connects without timeouts: a dead or stalled server blocks
    /// indefinitely. Prefer [`Self::connect_with_timeout`] for anything
    /// beyond tests on localhost.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with `timeout` applied to the TCP connect and to every
    /// subsequent read and write. Timed-out requests surface as
    /// `TimedOut`/`WouldBlock` errors and are counted in the
    /// `controller_client.timeouts` counter.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout).inspect_err(|_| {
            client_metrics().timeouts.inc();
        })?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        let writer = stream.try_clone()?;
        Ok(Self { writer, reader: BufReader::new(stream) })
    }

    /// Sends one request and waits for the response.
    pub fn predict(
        &mut self,
        req: &PredictionRequest,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        let line = serde_json::to_string(req)?;
        let resp = self.round_trip(&line)?;
        let wire: WireResponse = serde_json::from_str(resp.trim_end())?;
        Ok(match wire {
            WireResponse::Ok { prediction } => Ok(prediction),
            WireResponse::Err { error } => Err(error),
        })
    }

    /// Sends a batch of requests as one JSON-array line and waits for the
    /// JSON array of per-request responses (request order is preserved).
    /// Server-side the batch fans out across the work pool.
    pub fn predict_batch(
        &mut self,
        reqs: &[PredictionRequest],
    ) -> std::io::Result<Vec<Result<Prediction, RequestError>>> {
        let line = serde_json::to_string(&reqs.to_vec())?;
        let resp = self.round_trip(&line)?;
        let wire: Vec<WireResponse> = serde_json::from_str(resp.trim_end())?;
        Ok(wire
            .into_iter()
            .map(|w| match w {
                WireResponse::Ok { prediction } => Ok(prediction),
                WireResponse::Err { error } => Err(error),
            })
            .collect())
    }

    /// Requests a live telemetry snapshot from the controller
    /// (`{"op":"stats"}` on the wire).
    pub fn stats(&mut self) -> std::io::Result<Snapshot> {
        let resp = self.round_trip("{\"op\":\"stats\"}")?;
        let doc = pddl_telemetry::JsonValue::parse(resp.trim_end())
            .map_err(invalid_data)?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("stats") {
            return Err(invalid_data("response is not a stats payload".to_string()));
        }
        let snapshot = doc.get("snapshot").ok_or_else(|| {
            invalid_data("stats response missing 'snapshot'".to_string())
        })?;
        Snapshot::from_value(snapshot).map_err(invalid_data)
    }

    /// Writes one line, reads one line; counts requests and timeouts.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        let m = client_metrics();
        m.requests.inc();
        let io = |e: std::io::Error| {
            if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
                m.timeouts.inc();
            }
            e
        };
        self.writer.write_all(line.as_bytes()).map_err(io)?;
        self.writer.write_all(b"\n").map_err(io)?;
        self.writer.flush().map_err(io)?;
        let mut resp = String::new();
        self.reader.read_line(&mut resp).map_err(io)?;
        if resp.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "controller closed connection",
            ));
        }
        Ok(resp)
    }
}

fn invalid_data(e: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}
