//! The Controller (§III-D): "the entry point to train GHN models and to
//! predict the training time of a DNN architecture. The controller has a
//! listener to receive and forward incoming requests to the Task Checker."
//!
//! The Listener speaks newline-delimited JSON over TCP — the same framing
//! as the Cluster Resource Collector. Each connection may send any number
//! of requests and receives one response line per request. A line holding
//! a JSON *array* of prediction requests is a batch: the controller fans
//! the batch out across the [`pddl_par`] work pool and answers with one
//! JSON array of responses in request order. Besides prediction requests,
//! the wire protocol carries five control ops, each answered inline by
//! the reader so they stay available during overload:
//!
//! * `{"op":"stats"}` — a live JSON snapshot of the telemetry registry
//!   (see `OPERATIONS.md` for the metric catalogue);
//! * `{"op":"metrics"}` — the same registry rendered as Prometheus text
//!   exposition, wrapped as `{"status":"metrics","exposition":"..."}`;
//! * `{"op":"trace"}` — the flight recorder's retained traces
//!   ([`pddl_telemetry::trace::FlightRecorder::retained_json`]);
//! * `{"op":"route_table"}` — the shard's one-entry identity
//!   [`RouteTable`] (the `pddl-router` process answers the same op with
//!   the live fleet membership);
//! * `{"op":"reload"}` — hot-swap the serving model to a checkpoint-
//!   registry version (see below).
//!
//! ## Hot reload
//!
//! The served system lives behind a [`LiveSystem`] slot. Every work frame
//! *pins* the current system as it is read off the socket and uses that
//! pin for its whole lifetime — queued, dispatched, and answered on the
//! model that was live when it arrived, while later frames see the new
//! one. A controller started with [`Controller::serve_live`] and a
//! [`ReloadManager`] answers `{"op":"reload"}` (optional `"version"`,
//! default latest) by loading the candidate from the registry, replaying
//! the manifest's golden probes against it, and swapping only on a pass:
//! `{"status":"reload","version":…,"previous":…,"epoch":…}`. A failed
//! candidate earns the terminal typed line
//! `{"error":"reload_rejected","reason":…}` and the old model keeps
//! serving. Controllers without a registry reject with reason
//! `no_registry`.
//!
//! The wire *shapes* themselves — envelopes, control ops, typed error
//! lines — live in [`crate::protocol`]; `PROTOCOL.md` at the repository
//! root is the op-by-op reference with captured transcripts.
//!
//! ## Sharded serving
//!
//! A controller may be started as one shard of a fleet
//! ([`ServeConfig::shard_id`]): it then echoes its shard id in enveloped
//! responses, in `{"op":"stats"}` replies, and in its identity route
//! table, so clients and the router can attribute every answer to the
//! shard that computed it ([`ControllerClient::last_shard`]). Sharding
//! changes nothing else about the serving loop — the router owns key
//! placement; the shard just declares who it is.
//!
//! ## Request tracing
//!
//! A [`RequestEnvelope`] may carry a [`TraceHeader`] minted by the client;
//! such requests are always traced and the header is echoed on the
//! [`ResponseEnvelope`]. Requests without a header are sampled: every
//! `trace_sample`-th work frame per connection gets a server-minted root
//! context (0 disables). A traced request records one child span per
//! pipeline stage — accept marker, frame decode, queue wait (in
//! [`crate::serve`]), worker dispatch, embedding-cache probe (hit/miss),
//! GHN forward pass on a miss, regression, response serialization — into
//! the process-wide lock-free flight recorder. Traces that end badly
//! (shed, expired, application error) or slowly (`trace_slow_ms`) are
//! tail-promoted into the bounded retained set served by `{"op":"trace"}`
//! and rendered by the CLI `trace` subcommand.
//!
//! ## Bounded serving core
//!
//! Connections are accepted by a single acceptor thread and read by cheap
//! per-connection reader threads (capped at `max_connections`), but the
//! *work* runs on a fixed pool of worker threads consuming a bounded FIFO
//! admission queue ([`crate::serve::ServePool`]). A full queue sheds the
//! request immediately with a typed
//! `{"error":"overloaded","retry_after_ms":...}` reply — the same reply a
//! request gets if it waits in the queue past the configured deadline, or
//! a connection gets past the connection cap. Overload replies are
//! classified as transient by [`pddl_cluster::retry::is_transient`], so
//! [`ControllerClient::connect_resilient`] retries them end-to-end,
//! honoring the server's `retry_after_ms` pacing hint. Shutdown is a
//! graceful drain: stop accepting, let readers finish their in-flight
//! frame, flush the queue, then log a final stats snapshot. Tune with
//! [`Controller::serve_with`] and [`ServeConfig`].
//!
//! ## Hardening
//!
//! Frames are bounded at [`pddl_cluster::MAX_FRAME_BYTES`]; a peer that
//! never sends a newline is cut off, not buffered. Malformed frames earn a
//! typed error reply and a counter bump; over-long frames additionally
//! close the connection (line sync is lost). A request wrapped in a
//! [`RequestEnvelope`] carries a `(client, id)` identity: the controller
//! remembers recent responses per identity, so a client retrying after a
//! lost reply gets the original response back instead of a recomputation —
//! the dedup behind [`ControllerClient::connect_resilient`]'s exactly-once
//! semantics. When `PDDL_FAULT_PLAN` is set (see [`pddl_faults`]), every
//! accepted connection wears deterministic fault injectors.

pub use crate::protocol::{
    parse_frame, ParsedFrame, RequestEnvelope, ResponseEnvelope, TraceHeader, WireResponse,
};

use crate::observe::ObservationSink;
use crate::offline::PredictDdl;
use crate::protocol::{
    observe_rejected_from_line, observe_rejected_line, overload_from_line, overload_line,
    reload_rejected_from_line, reload_rejected_line, shard_moved_from_line, ObserveReply,
    ReloadReply, RouteShard, RouteTable,
};
use crate::reload::{LiveSystem, ReloadManager, ReloadOutcome};
use crate::request::{Prediction, PredictionRequest, RequestError};
use crate::serve::{
    JobOutcome, Latch, OpenOnDrop, ServeConfig, ServePool, SubmitError, WaitGroup,
};
use pddl_cluster::protocol::{LinePoll, LineReader, WireError, MAX_FRAME_BYTES};
use pddl_cluster::retry::{
    is_transient, overload_retry_hint, shard_moved_retry_hint, Backoff, RetryPolicy,
    ShedReason,
};
use pddl_faults::{Direction, FaultPlan, FaultyRead, FaultyWrite};
use pddl_telemetry::trace::{flight_recorder, stage_id, stages};
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level, Snapshot, SpanStatus, TraceContext};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Controller-side metric handles, resolved once (increments stay
/// lock-free on the request path).
struct Metrics {
    requests_total: &'static Counter,
    requests_ok: &'static Counter,
    requests_err: &'static Counter,
    stats_requests: &'static Counter,
    trace_requests: &'static Counter,
    metrics_requests: &'static Counter,
    route_table_requests: &'static Counter,
    reload_requests: &'static Counter,
    observe_requests: &'static Counter,
    traced_requests: &'static Counter,
    shed_queue_full: &'static Counter,
    shed_deadline: &'static Counter,
    shed_connection_limit: &'static Counter,
    shed_draining: &'static Counter,
    batch_requests: &'static Counter,
    malformed_frames: &'static Counter,
    oversize_frames: &'static Counter,
    disconnects: &'static Counter,
    dedup_hits: &'static Counter,
    connections_total: &'static Counter,
    connections_shed: &'static Counter,
    active_connections: &'static Gauge,
    request_latency: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        requests_total: pddl_telemetry::counter("controller.requests_total"),
        requests_ok: pddl_telemetry::counter("controller.requests_ok"),
        requests_err: pddl_telemetry::counter("controller.requests_err"),
        stats_requests: pddl_telemetry::counter("controller.stats_requests"),
        trace_requests: pddl_telemetry::counter("controller.trace_requests"),
        metrics_requests: pddl_telemetry::counter("controller.metrics_requests"),
        route_table_requests: pddl_telemetry::counter("controller.route_table_requests"),
        reload_requests: pddl_telemetry::counter("controller.reload_requests"),
        observe_requests: pddl_telemetry::counter("controller.observe_requests"),
        traced_requests: pddl_telemetry::counter("controller.traced_requests"),
        shed_queue_full: pddl_telemetry::counter("controller.shed.queue_full"),
        shed_deadline: pddl_telemetry::counter("controller.shed.deadline"),
        shed_connection_limit: pddl_telemetry::counter("controller.shed.connection_limit"),
        shed_draining: pddl_telemetry::counter("controller.shed.draining"),
        batch_requests: pddl_telemetry::counter("controller.batch_requests"),
        malformed_frames: pddl_telemetry::counter("controller.malformed_frames"),
        oversize_frames: pddl_telemetry::counter("controller.oversize_frames"),
        disconnects: pddl_telemetry::counter("controller.disconnects"),
        dedup_hits: pddl_telemetry::counter("controller.request_dedups"),
        connections_total: pddl_telemetry::counter("controller.connections_total"),
        connections_shed: pddl_telemetry::counter("controller.connections_shed"),
        active_connections: pddl_telemetry::gauge("controller.active_connections"),
        request_latency: pddl_telemetry::histogram("controller.request_latency"),
    })
}

/// Entries kept in the idempotent-retry response cache. Sized so a burst
/// of retried requests stays deduplicated while memory stays bounded
/// (~cache-cap × response-line bytes).
const RESPONSE_CACHE_CAP: usize = 4096;

/// Bounded FIFO cache of rendered response lines keyed by request
/// identity. Shared across connections: a client may retry on a fresh
/// connection after the original died mid-reply.
#[derive(Default)]
struct ResponseCache {
    inner: Mutex<CacheInner>,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<(u64, u64), String>,
    order: VecDeque<(u64, u64)>,
}

impl ResponseCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panicked handler cannot leave the cache in a broken state (all
        // mutations are single statements), so poison is safe to clear.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, key: (u64, u64)) -> Option<String> {
        self.lock().map.get(&key).cloned()
    }

    fn put(&self, key: (u64, u64), line: String) {
        let mut inner = self.lock();
        if inner.map.insert(key, line).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > RESPONSE_CACHE_CAP {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }
}

/// How often reader threads surface from a blocking read to poll the
/// shutdown flag (via a socket read timeout). Bounds drain latency; slow
/// enough that fault-plan schedules advance only modestly on idle
/// connections.
const SHUTDOWN_POLL: Duration = Duration::from_millis(250);

/// [`overload_line`] plus accounting: every shed is attributed to its
/// cause under `controller.shed.<reason>`, so a dashboard (or the load
/// generator's report) can tell a full queue from expired deadlines.
fn shed_line(retry_after_ms: u64, reason: ShedReason) -> String {
    let m = metrics();
    match reason {
        ShedReason::QueueFull => m.shed_queue_full.inc(),
        ShedReason::Deadline => m.shed_deadline.inc(),
        ShedReason::ConnectionLimit => m.shed_connection_limit.inc(),
        ShedReason::Draining => m.shed_draining.inc(),
        ShedReason::Unknown => {} // the server always sheds for a reason
    }
    overload_line(retry_after_ms, reason.as_str())
}

/// A running prediction service. Dropping the handle drains and stops it.
pub struct Controller {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
    readers: Arc<WaitGroup>,
    pool: Arc<ServePool>,
    live: Arc<LiveSystem>,
    sink: Arc<ObservationSink>,
}

impl Controller {
    /// Serves a trained system on `addr` (port 0 = ephemeral) with the
    /// default [`ServeConfig`]. See [`Controller::serve_with`].
    pub fn serve(addr: &str, system: PredictDdl) -> std::io::Result<Self> {
        Self::serve_with(addr, system, ServeConfig::default())
    }

    /// Serves a trained system on `addr` under `config`: one acceptor
    /// thread, at most `config.max_connections` reader threads, and a
    /// fixed pool of `config.workers` workers behind a bounded admission
    /// queue (see the module docs for the overload semantics). The system
    /// is shared read-only. Connection accounting is load-independent —
    /// each reader checks itself out of the live count as it exits, so
    /// `controller.active_connections` returns to zero on an idle server
    /// with no accept traffic required.
    ///
    /// If `PDDL_FAULT_PLAN` is set, every accepted connection is wrapped
    /// in that plan's deterministic fault injectors; an unparseable plan
    /// is an `InvalidInput` error.
    pub fn serve_with(
        addr: &str,
        system: PredictDdl,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        Self::serve_live(addr, Arc::new(LiveSystem::new(system, 0)), config, None)
    }

    /// [`Controller::serve_with`] over an explicit hot-swappable
    /// [`LiveSystem`] slot, optionally answering `{"op":"reload"}` through
    /// `reload` (a controller without a manager rejects the op with reason
    /// `no_registry`). The slot may be shared — with a
    /// [`crate::reload::spawn_watcher`] poller, with the manager, or with
    /// tests asserting swap epochs.
    pub fn serve_live(
        addr: &str,
        live: Arc<LiveSystem>,
        config: ServeConfig,
        reload: Option<Arc<ReloadManager>>,
    ) -> std::io::Result<Self> {
        let fault_plan = FaultPlan::from_env()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let cache = Arc::new(ResponseCache::default());
        let sink = Arc::new(ObservationSink::new());
        let pool = Arc::new(ServePool::start(config));
        let readers = Arc::new(WaitGroup::new());
        tlog!(
            Level::Info,
            "controller",
            "listening",
            addr = local.to_string(),
            workers = pool.workers() as u64,
            queue_depth = pool.queue_capacity() as u64,
        );
        if let Some(plan) = &fault_plan {
            tlog!(Level::Warn, "controller", "fault injection active", plan = plan.to_spec());
        }

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&requests_served);
            let pool = Arc::clone(&pool);
            let readers = Arc::clone(&readers);
            let live = Arc::clone(&live);
            let reload = reload.clone();
            let sink = Arc::clone(&sink);
            std::thread::spawn(move || {
                let m = metrics();
                let mut next_conn: u64 = 0;
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            m.connections_total.inc();
                            if readers.count() >= config.max_connections {
                                // Connection-level shed: typed reply,
                                // close, no reader thread spawned.
                                m.connections_shed.inc();
                                let mut stream = stream;
                                stream.set_nonblocking(false).ok();
                                let _ = write_line(
                                    &mut stream,
                                    &shed_line(config.retry_after_ms, ShedReason::ConnectionLimit),
                                );
                                continue;
                            }
                            stream.set_nonblocking(false).ok();
                            // Readers surface from blocking reads on this
                            // cadence to poll the shutdown flag.
                            stream.set_read_timeout(Some(SHUTDOWN_POLL)).ok();
                            m.active_connections.inc();
                            readers.add();
                            tlog!(
                                Level::Debug,
                                "controller",
                                "connection accepted",
                                peer = peer.to_string(),
                            );
                            let conn = next_conn;
                            next_conn += 1;
                            let live = Arc::clone(&live);
                            let reload = reload.clone();
                            let sink = Arc::clone(&sink);
                            let served = Arc::clone(&served);
                            let cache = Arc::clone(&cache);
                            let pool = Arc::clone(&pool);
                            let readers = Arc::clone(&readers);
                            let shutdown = Arc::clone(&shutdown);
                            std::thread::spawn(move || {
                                let outcome = split_stream(stream, fault_plan.as_ref(), conn)
                                    .and_then(|(r, w)| {
                                        reader_loop(
                                            r, w, &live, reload.as_ref(), &sink, &served,
                                            &cache, &pool, &shutdown, config, local,
                                        )
                                    });
                                if outcome.is_err() {
                                    // Mid-request disconnect or transport
                                    // death: reap the connection, keep the
                                    // service alive.
                                    metrics().disconnects.inc();
                                }
                                metrics().active_connections.dec();
                                readers.done();
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(Self {
            addr: local,
            shutdown,
            requests_served,
            accept_thread: Some(accept_thread),
            readers,
            pool,
            live,
            sink,
        })
    }

    /// The address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registry version currently serving (`0` when not registry-backed).
    pub fn live_version(&self) -> u64 {
        self.live.version()
    }

    /// Hot-swap epoch of the serving slot (number of reloads applied).
    pub fn live_epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// Total requests answered by computation (deduplicated replays of a
    /// cached response are counted in `controller.request_dedups`, not
    /// here; shed and expired requests are counted in
    /// `controller.requests_shed` / `controller.requests_expired`).
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Reader threads currently attached to live connections. Returns to
    /// zero once every client disconnects, with no accept traffic needed.
    pub fn live_connections(&self) -> usize {
        self.readers.count()
    }

    /// The feedback inlet behind `{"op":"observe"}` — runtime
    /// observations accepted and drift events fired so far. Shared with
    /// every reader thread; useful for tests and for embedding callers
    /// that want [`ObservationSink::calibrate`] on top of raw predictions.
    pub fn observation_sink(&self) -> &Arc<ObservationSink> {
        &self.sink
    }

    /// High-water mark of the admission queue since startup.
    pub fn queue_peak(&self) -> usize {
        self.pool.queue_peak()
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        // Graceful drain: stop accepting, wait out the readers (they
        // observe the flag within one SHUTDOWN_POLL), flush the admission
        // queue, then leave a final stats line in the log.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.readers.wait();
        self.pool.shutdown();
        // Drain-time trace dump: the retained set outlives the server
        // handle (the recorder is process-wide), but logging it here puts
        // the interesting traces next to the final stats line.
        let rec = flight_recorder();
        let retained = rec.retained();
        if !retained.is_empty() {
            tlog!(
                Level::Info,
                "controller",
                "retained traces at drain",
                count = retained.len() as u64,
                suppressed = rec.suppressed(),
            );
            tlog!(Level::Debug, "controller", "trace dump", dump = rec.retained_json());
        }
        tlog!(
            Level::Info,
            "controller",
            "drained",
            requests_served = self.requests_served.load(Ordering::Relaxed),
            queue_depth_peak = self.pool.queue_peak() as u64,
        );
    }
}

/// Splits a stream into boxed read/write halves, wearing the fault plan's
/// injectors when one is active.
fn split_stream(
    stream: TcpStream,
    plan: Option<&FaultPlan>,
    conn: u64,
) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    let writer = stream.try_clone()?;
    Ok(match plan {
        Some(p) => (
            Box::new(FaultyRead::new(stream, p.schedule(conn, Direction::Read))),
            Box::new(FaultyWrite::new(writer, p.schedule(conn, Direction::Write))),
        ),
        None => (Box::new(stream), Box::new(writer)),
    })
}

fn write_line(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// The shared (reader ∪ worker) writer half of one connection. The
/// per-frame latch hand-off means lock contention is nil: at most one of
/// the two sides wants the writer at a time.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_shared(w: &SharedWriter, line: &str) -> std::io::Result<()> {
    let mut guard = w.lock().unwrap_or_else(|e| e.into_inner());
    write_line(&mut *guard, line)
}

/// Submits `work` to the pool and blocks until it has written its
/// response (signalled through a [`Latch`], opened by a drop guard even
/// if the handler panics). The reader never polls the next frame until
/// the latch opens, which keeps per-connection responses in request order
/// while the pool interleaves many connections. A full queue is answered
/// inline with the typed overload reply (the pool already counted the
/// shed); a closed pool means the server is draining — reply, then hang
/// up.
fn submit_and_wait(
    pool: &ServePool,
    writer: &SharedWriter,
    retry_after_ms: u64,
    trace: Option<TraceContext>,
    work: Box<dyn FnOnce(JobOutcome) + Send>,
) -> std::io::Result<()> {
    let latch = Arc::new(Latch::new());
    let guard = OpenOnDrop(Arc::clone(&latch));
    match pool.try_submit_traced(trace, move |outcome| {
        let _open = guard;
        work(outcome);
    }) {
        Ok(()) => {
            latch.wait();
            Ok(())
        }
        // The pool records the shed span and promotes the trace on both
        // rejection paths; only the wire reply happens here.
        Err(SubmitError::Full) => {
            write_shared(writer, &shed_line(retry_after_ms, ShedReason::QueueFull))
        }
        Err(SubmitError::Closed) => {
            let _ = write_shared(writer, &shed_line(retry_after_ms, ShedReason::Draining));
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "serving pool draining",
            ))
        }
    }
}

/// Per-connection reader: frames the byte stream, answers control ops and
/// protocol errors inline, and funnels every prediction frame through the
/// bounded pool. Returns on clean EOF, shutdown, or transport death.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    live: &Arc<LiveSystem>,
    reload: Option<&Arc<ReloadManager>>,
    sink: &Arc<ObservationSink>,
    served: &Arc<AtomicU64>,
    cache: &Arc<ResponseCache>,
    pool: &ServePool,
    shutdown: &AtomicBool,
    config: ServeConfig,
    local: SocketAddr,
) -> std::io::Result<()> {
    let m = metrics();
    let mut reader = BufReader::new(reader);
    let mut lines = LineReader::bounded(MAX_FRAME_BYTES);
    let writer: SharedWriter = Arc::new(Mutex::new(writer));
    let rec = flight_recorder();
    let accepted_us = rec.now_us();
    let mut accept_marked = false;
    let mut work_frames: u64 = 0;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break; // drain: stop reading new requests
        }
        let line = match lines.poll(&mut reader) {
            Ok(LinePoll::Line(line)) => line,
            Ok(LinePoll::Eof) => break,
            // The read timed out (SHUTDOWN_POLL): partial frame is kept,
            // loop back to check the shutdown flag.
            Ok(LinePoll::Pending) => continue,
            Err(WireError::FrameTooLong { limit }) => {
                // Line sync is lost: reply (best effort) and drop the peer.
                m.oversize_frames.inc();
                let response = WireResponse::Err {
                    error: RequestError::InvalidParams(format!(
                        "frame exceeds {limit} bytes"
                    )),
                };
                let _ = write_shared(&writer, &serde_json::to_string(&response)?);
                break;
            }
            // LineReader does not parse, so Malformed cannot occur here;
            // treat it like an over-long frame rather than panicking.
            Err(WireError::Malformed { .. }) => break,
            Err(WireError::Io(e)) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let decode_t0 = Instant::now();
        let frame = match parse_frame(&line) {
            Ok(frame) => frame,
            Err(detail) => {
                m.malformed_frames.inc();
                m.requests_total.inc();
                m.requests_err.inc();
                served.fetch_add(1, Ordering::Relaxed);
                let response =
                    WireResponse::Err { error: RequestError::InvalidParams(detail) };
                write_shared(&writer, &serde_json::to_string(&response)?)?;
                continue;
            }
        };
        let decode = decode_t0.elapsed();
        let retry_after = config.retry_after_ms;
        // Trace decision: an explicit client context always traces;
        // otherwise every `trace_sample`-th work frame on this connection
        // gets a server-minted root (0 disables sampling). Control ops
        // are never traced.
        let ctx = match &frame {
            ParsedFrame::Stats
            | ParsedFrame::Trace
            | ParsedFrame::Metrics
            | ParsedFrame::RouteTable
            | ParsedFrame::Reload { .. }
            | ParsedFrame::Observe { .. } => None,
            ParsedFrame::Enveloped(env) if env.trace.is_some() => {
                env.trace.map(TraceContext::from)
            }
            _ => {
                let n = work_frames;
                work_frames += 1;
                (config.trace_sample > 0 && n.is_multiple_of(config.trace_sample))
                    .then(|| TraceContext::root(next_sampled_trace_id()))
            }
        };
        // Start of this request for the root span: now, minus the frame
        // decode we just did.
        let req_start_us = rec.now_us().saturating_sub(decode.as_micros() as u64);
        if let Some(ctx) = ctx {
            m.traced_requests.inc();
            if !accept_marked {
                // Zero-length marker anchoring the waterfall at the
                // moment this connection was accepted.
                rec.record_stage(
                    ctx,
                    stages::ACCEPT,
                    accepted_us,
                    Duration::ZERO,
                    SpanStatus::Ok,
                );
                accept_marked = true;
            }
            rec.record_stage(ctx, stages::FRAME_READ, req_start_us, decode, SpanStatus::Ok);
        }
        match frame {
            // Control ops: answered inline by the reader, never queued or
            // shed — stats, traces, and metrics stay observable *during*
            // overload.
            ParsedFrame::Stats => {
                m.stats_requests.inc();
                let out = match config.shard_id {
                    Some(shard) => format!(
                        "{{\"status\":\"stats\",\"shard\":{shard},\"snapshot\":{}}}",
                        pddl_telemetry::snapshot().to_json()
                    ),
                    None => format!(
                        "{{\"status\":\"stats\",\"snapshot\":{}}}",
                        pddl_telemetry::snapshot().to_json()
                    ),
                };
                write_shared(&writer, &out)?;
            }
            // A bare controller answers the route-table op with its own
            // one-entry identity table at epoch 0: clients can always ask
            // "who am I talking to", router or not.
            ParsedFrame::RouteTable => {
                m.route_table_requests.inc();
                let id = config.shard_id.unwrap_or(0);
                let table = RouteTable {
                    epoch: 0,
                    vnodes: 0,
                    shard: config.shard_id,
                    shards: vec![RouteShard {
                        id,
                        addr: local.to_string(),
                        healthy: true,
                    }],
                };
                write_shared(&writer, &table.to_line())?;
            }
            ParsedFrame::Trace => {
                m.trace_requests.inc();
                write_shared(&writer, &rec.retained_json())?;
            }
            // Reload: answered inline like the other control ops (an
            // overloaded or draining pool cannot block a rollback). The
            // manager serializes concurrent attempts; requests pinned
            // before the swap finish on the old model.
            ParsedFrame::Reload { version } => {
                m.reload_requests.inc();
                let out = match reload {
                    Some(mgr) => match mgr.reload(version) {
                        Ok(ReloadOutcome::Swapped { version, previous, epoch }) => {
                            ReloadReply { version, previous, epoch }.to_line()
                        }
                        Ok(ReloadOutcome::AlreadyLive { version, epoch }) => {
                            ReloadReply { version, previous: version, epoch }.to_line()
                        }
                        Err(rej) => reload_rejected_line(&rej.reason),
                    },
                    None => reload_rejected_line("no_registry"),
                };
                write_shared(&writer, &out)?;
            }
            // Observe: the continual-refit feedback inlet, answered inline
            // like the other control ops (drift detection must keep
            // working while the pool is saturated — that is exactly when
            // the cost model is most likely to be wrong). The live model
            // re-predicts the request; the residual drives the sink.
            ParsedFrame::Observe { req, actual_secs } => {
                m.observe_requests.inc();
                let out = if !(actual_secs.is_finite() && actual_secs > 0.0) {
                    observe_rejected_line("non_positive_runtime")
                } else {
                    match live.pin().predict(&req) {
                        Ok(pred) if pred.seconds > 0.0 => {
                            let servers = req.cluster.servers.len();
                            sink.record(pred.seconds, actual_secs, servers).to_line()
                        }
                        Ok(_) => observe_rejected_line("non_positive_prediction"),
                        Err(e) => observe_rejected_line(&format!("prediction_failed: {e}")),
                    }
                };
                write_shared(&writer, &out)?;
            }
            ParsedFrame::Metrics => {
                m.metrics_requests.inc();
                let expo = pddl_telemetry::expo::prometheus_global();
                let mut out = String::with_capacity(expo.len() + 40);
                out.push_str("{\"status\":\"metrics\",\"exposition\":");
                pddl_telemetry::push_json_string(&mut out, &expo);
                out.push('}');
                write_shared(&writer, &out)?;
            }
            // Batch requests: a JSON *array* of prediction requests. One
            // queue slot per batch; the per-request work still fans out
            // across the work pool via [`PredictDdl::predict_many`].
            ParsedFrame::Batch(reqs) => {
                let system = live.pin();
                let served = Arc::clone(served);
                let writer_j = Arc::clone(&writer);
                let slow_ms = config.trace_slow_ms;
                submit_and_wait(
                    pool,
                    &writer,
                    retry_after,
                    ctx,
                    Box::new(move |outcome| {
                        let m = metrics();
                        if outcome == JobOutcome::Expired {
                            expire_traced(ctx, req_start_us);
                            let _ = write_shared(
                                &writer_j,
                                &shed_line(retry_after, ShedReason::Deadline),
                            );
                            return;
                        }
                        let t0 = Instant::now();
                        m.batch_requests.inc();
                        m.requests_total.add(reqs.len() as u64);
                        let results = system.predict_many(&reqs);
                        let dispatch_el = t0.elapsed();
                        let mut errored = false;
                        let responses: Vec<WireResponse> = results
                            .into_iter()
                            .map(|r| match r {
                                Ok(prediction) => {
                                    m.requests_ok.inc();
                                    WireResponse::Ok { prediction }
                                }
                                Err(error) => {
                                    m.requests_err.inc();
                                    errored = true;
                                    WireResponse::Err { error }
                                }
                            })
                            .collect();
                        if let Some(c) = ctx {
                            // One dispatch span for the whole batch; the
                            // per-request fan-out happens inside
                            // predict_many and is not traced separately.
                            let rec = flight_recorder();
                            let start = rec
                                .now_us()
                                .saturating_sub(dispatch_el.as_micros() as u64);
                            let d = c.child(stage_id(stages::DISPATCH).wrapping_add(1));
                            let status =
                                if errored { SpanStatus::Error } else { SpanStatus::Ok };
                            rec.record_span(d, stages::DISPATCH, start, dispatch_el, status);
                        }
                        served.fetch_add(responses.len() as u64, Ordering::Relaxed);
                        let s0 = Instant::now();
                        let Ok(out) = serde_json::to_string(&responses) else {
                            return;
                        };
                        let _ = write_shared(&writer_j, &out);
                        finish_traced(ctx, req_start_us, s0.elapsed(), errored, slow_ms);
                        let elapsed = t0.elapsed();
                        m.request_latency.record_duration(elapsed);
                        tlog!(
                            Level::Debug,
                            "controller.request",
                            "served batch",
                            batch_size = responses.len() as u64,
                            latency_us = elapsed.as_micros() as u64,
                        );
                    }),
                )?;
            }
            // Id-wrapped single request: the reader consults the response
            // cache first, so a retried request replays the original
            // response without consuming a queue slot.
            ParsedFrame::Enveloped(env) => {
                let key = (env.client, env.id);
                if let Some(cached) = cache.get(key) {
                    m.dedup_hits.inc();
                    tlog!(
                        Level::Debug,
                        "controller.request",
                        "deduplicated retry",
                        client = env.client,
                        id = env.id,
                    );
                    let replay_t0 = Instant::now();
                    write_shared(&writer, &cached)?;
                    if let Some(c) = ctx {
                        // The replay is its own deterministic span: a
                        // re-promotion merges it into the retained trace
                        // without duplicating the original pipeline spans.
                        let el = replay_t0.elapsed();
                        let start = rec.now_us().saturating_sub(el.as_micros() as u64);
                        rec.record_stage(
                            c,
                            stages::DEDUP_REPLAY,
                            start,
                            el,
                            SpanStatus::CacheHit,
                        );
                    }
                    continue;
                }
                let system = live.pin();
                let served = Arc::clone(served);
                let cache = Arc::clone(cache);
                let writer_j = Arc::clone(&writer);
                let slow_ms = config.trace_slow_ms;
                submit_and_wait(
                    pool,
                    &writer,
                    retry_after,
                    ctx,
                    Box::new(move |outcome| {
                        let m = metrics();
                        if outcome == JobOutcome::Expired {
                            // Not cached: the client's retry should get a
                            // real execution, not a replayed shed.
                            expire_traced(ctx, req_start_us);
                            let _ = write_shared(
                                &writer_j,
                                &shed_line(retry_after, ShedReason::Deadline),
                            );
                            return;
                        }
                        let t0 = Instant::now();
                        m.requests_total.inc();
                        let (resp, errored) = predict_one(&system, &env.req, m, ctx);
                        let s0 = Instant::now();
                        let Ok(out) = serde_json::to_string(&ResponseEnvelope {
                            client: env.client,
                            id: env.id,
                            trace: env.trace,
                            shard: config.shard_id,
                            resp,
                        }) else {
                            return;
                        };
                        cache.put(key, out.clone());
                        served.fetch_add(1, Ordering::Relaxed);
                        let _ = write_shared(&writer_j, &out);
                        finish_traced(ctx, req_start_us, s0.elapsed(), errored, slow_ms);
                        m.request_latency.record_duration(t0.elapsed());
                    }),
                )?;
            }
            ParsedFrame::Single(req) => {
                let system = live.pin();
                let served = Arc::clone(served);
                let writer_j = Arc::clone(&writer);
                let slow_ms = config.trace_slow_ms;
                submit_and_wait(
                    pool,
                    &writer,
                    retry_after,
                    ctx,
                    Box::new(move |outcome| {
                        let m = metrics();
                        if outcome == JobOutcome::Expired {
                            expire_traced(ctx, req_start_us);
                            let _ = write_shared(
                                &writer_j,
                                &shed_line(retry_after, ShedReason::Deadline),
                            );
                            return;
                        }
                        let t0 = Instant::now();
                        m.requests_total.inc();
                        let (response, errored) = predict_one(&system, &req, m, ctx);
                        served.fetch_add(1, Ordering::Relaxed);
                        let s0 = Instant::now();
                        let Ok(out) = serde_json::to_string(&response) else {
                            return;
                        };
                        let _ = write_shared(&writer_j, &out);
                        finish_traced(ctx, req_start_us, s0.elapsed(), errored, slow_ms);
                        let elapsed = t0.elapsed();
                        m.request_latency.record_duration(elapsed);
                        match &response {
                            WireResponse::Ok { .. } => {
                                tlog!(
                                    Level::Debug,
                                    "controller.request",
                                    "served",
                                    latency_us = elapsed.as_micros() as u64,
                                );
                            }
                            WireResponse::Err { error } => {
                                tlog!(
                                    Level::Warn,
                                    "controller.request",
                                    "request failed",
                                    error = error.to_string(),
                                    latency_us = elapsed.as_micros() as u64,
                                );
                            }
                        }
                    }),
                )?;
            }
        }
    }
    Ok(())
}

/// Runs one prediction, recording ok/err counters and — when traced —
/// the dispatch span wrapping the inference-stage children recorded by
/// [`PredictDdl::predict_traced`]. Returns the response plus whether it
/// was an error (the tail-sampling trigger).
fn predict_one(
    system: &PredictDdl,
    req: &PredictionRequest,
    m: &Metrics,
    ctx: Option<TraceContext>,
) -> (WireResponse, bool) {
    let dispatch = ctx.map(|c| c.child(stage_id(stages::DISPATCH).wrapping_add(1)));
    let t0 = Instant::now();
    let result = system.predict_traced(req, dispatch);
    let errored = result.is_err();
    if let Some(d) = dispatch {
        let el = t0.elapsed();
        let rec = flight_recorder();
        let start = rec.now_us().saturating_sub(el.as_micros() as u64);
        let status = if errored { SpanStatus::Error } else { SpanStatus::Ok };
        rec.record_span(d, stages::DISPATCH, start, el, status);
    }
    let resp = match result {
        Ok(prediction) => {
            m.requests_ok.inc();
            WireResponse::Ok { prediction }
        }
        Err(error) => {
            m.requests_err.inc();
            WireResponse::Err { error }
        }
    };
    (resp, errored)
}

/// Records the trailing spans of one traced request — `serialize` (whose
/// window ends now) and the root `request` span from frame arrival to
/// response write — then applies the tail-sampling verdicts: promote on
/// application error, or as `slow` past the `trace_slow_ms` threshold.
fn finish_traced(
    ctx: Option<TraceContext>,
    req_start_us: u64,
    serialize: Duration,
    errored: bool,
    slow_ms: u64,
) {
    let Some(ctx) = ctx else { return };
    let rec = flight_recorder();
    let end = rec.now_us();
    let s_start = end.saturating_sub(serialize.as_micros() as u64);
    rec.record_stage(ctx, stages::SERIALIZE, s_start, serialize, SpanStatus::Ok);
    let total = Duration::from_micros(end.saturating_sub(req_start_us));
    let status = if errored { SpanStatus::Error } else { SpanStatus::Ok };
    rec.record_span(ctx, stages::REQUEST, req_start_us, total, status);
    if errored {
        rec.promote(ctx.trace_id, "error");
    } else if slow_ms > 0 && total.as_millis() as u64 >= slow_ms {
        rec.promote(ctx.trace_id, "slow");
    }
}

/// Records the root span of a traced request that expired in the queue,
/// then re-promotes so the root merges into the already-retained trace
/// (the pool promoted `shed` when it observed the expiry).
fn expire_traced(ctx: Option<TraceContext>, req_start_us: u64) {
    let Some(ctx) = ctx else { return };
    let rec = flight_recorder();
    let total = Duration::from_micros(rec.now_us().saturating_sub(req_start_us));
    rec.record_span(ctx, stages::REQUEST, req_start_us, total, SpanStatus::Expired);
    rec.promote(ctx.trace_id, "shed");
}

/// Server-minted trace ids for sampled (context-free) requests. The top
/// bit marks them as server-minted, keeping them visually distinct from
/// client-minted ids in dumps.
fn next_sampled_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed) | (1 << 63)
}

/// Client-side metric handles.
struct ClientMetrics {
    requests: &'static Counter,
    timeouts: &'static Counter,
    retries: &'static Counter,
    reconnects: &'static Counter,
    mismatches: &'static Counter,
    overloads: &'static Counter,
    shard_moved: &'static Counter,
    route_refreshes: &'static Counter,
}

fn client_metrics() -> &'static ClientMetrics {
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ClientMetrics {
        requests: pddl_telemetry::counter("controller_client.requests"),
        timeouts: pddl_telemetry::counter("controller_client.timeouts"),
        retries: pddl_telemetry::counter("controller_client.retries"),
        reconnects: pddl_telemetry::counter("controller_client.reconnects"),
        mismatches: pddl_telemetry::counter("controller_client.response_mismatches"),
        overloads: pddl_telemetry::counter("controller_client.overloads"),
        shard_moved: pddl_telemetry::counter("controller_client.shard_moved"),
        route_refreshes: pddl_telemetry::counter("controller_client.route_refreshes"),
    })
}

/// A process-unique-ish session token for request identities. Collisions
/// across processes are harmless (the dedup cache would merely replay a
/// response to a client that provably sent the same session+id).
fn session_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let t = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ NEXT.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        ^ ((std::process::id() as u64) << 32)
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Blocking client for the controller protocol.
pub struct ControllerClient {
    conn: Option<Conn>,
    addr: SocketAddr,
    timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
    session: u64,
    next_id: u64,
    last_shard: Option<u64>,
    route: Option<RouteTable>,
}

impl ControllerClient {
    /// Connects without timeouts: a dead or stalled server blocks
    /// indefinitely. Prefer [`Self::connect_with_timeout`] for anything
    /// beyond tests on localhost, and [`Self::connect_resilient`] when the
    /// transport itself is unreliable.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let mut client = Self::disconnected(addr, None, None);
        client.ensure_conn()?;
        Ok(client)
    }

    /// Connects with `timeout` applied to the TCP connect and to every
    /// subsequent read and write. Timed-out requests surface as
    /// `TimedOut`/`WouldBlock` errors and are counted in the
    /// `controller_client.timeouts` counter.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let mut client = Self::disconnected(addr, Some(timeout), None);
        client.ensure_conn()?;
        Ok(client)
    }

    /// Connects under `policy`: every [`Self::predict`] is wrapped in a
    /// [`RequestEnvelope`] with a fresh `(session, id)` identity and
    /// retried with capped jittered exponential backoff on transport
    /// failures, per-attempt deadlines, and reconnection. Combined with
    /// the controller's response cache this gives exactly-once results: a
    /// retried request whose original reply was lost replays the cached
    /// response instead of recomputing.
    ///
    /// The initial TCP connect is itself retried under the policy, so a
    /// resilient client can be created before its controller is up.
    pub fn connect_resilient(addr: SocketAddr, policy: RetryPolicy) -> std::io::Result<Self> {
        let mut client =
            Self::disconnected(addr, Some(policy.attempt_timeout), Some(policy));
        let mut backoff = Backoff::new(policy);
        loop {
            match client.ensure_conn() {
                Ok(_) => return Ok(client),
                Err(e) if is_transient(&e) => match backoff.next_delay() {
                    Some(delay) => {
                        client_metrics().retries.inc();
                        std::thread::sleep(delay);
                    }
                    None => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }

    fn disconnected(
        addr: SocketAddr,
        timeout: Option<Duration>,
        retry: Option<RetryPolicy>,
    ) -> Self {
        Self {
            conn: None,
            addr,
            timeout,
            retry,
            session: session_token(),
            next_id: 1,
            last_shard: None,
            route: None,
        }
    }

    /// The shard id echoed by the most recent enveloped response or
    /// `{"op":"stats"}` reply, if the peer declared one. `None` against
    /// unsharded controllers or before the first answered request —
    /// previous client versions silently dropped this response field.
    pub fn last_shard(&self) -> Option<u64> {
        self.last_shard
    }

    /// The most recently fetched [`RouteTable`], if any — populated by
    /// [`Self::route_table`] and refreshed automatically when a resilient
    /// predict observes a typed `shard_moved` reply.
    pub fn cached_route(&self) -> Option<&RouteTable> {
        self.route.as_ref()
    }

    /// Fetches the peer's route table (`{"op":"route_table"}` on the
    /// wire) and caches it ([`Self::cached_route`]). Against a router
    /// this is the live fleet membership; against a bare controller it is
    /// the one-entry identity table.
    pub fn route_table(&mut self) -> std::io::Result<RouteTable> {
        let resp = self.round_trip("{\"op\":\"route_table\"}")?;
        let table = RouteTable::from_line(&resp).map_err(invalid_data)?;
        client_metrics().route_refreshes.inc();
        self.route = Some(table.clone());
        Ok(table)
    }

    /// Asks the controller to hot-swap to registry version `version`
    /// (latest when `None`) — `{"op":"reload"}` on the wire. The outer
    /// `Result` is transport failure; the inner one is the server's
    /// verdict: `Ok(reply)` when the swap committed (or the target was
    /// already live), `Err(reason)` when the candidate was rejected and
    /// the old model kept serving.
    pub fn reload(
        &mut self,
        version: Option<u64>,
    ) -> std::io::Result<Result<ReloadReply, String>> {
        let line = match version {
            Some(v) => format!("{{\"op\":\"reload\",\"version\":{v}}}"),
            None => "{\"op\":\"reload\"}".to_string(),
        };
        let resp = self.round_trip(&line)?;
        if let Some(reason) = reload_rejected_from_line(&resp) {
            return Ok(Err(reason));
        }
        ReloadReply::from_line(&resp)
            .map(Ok)
            .map_err(invalid_data)
    }

    /// Reports a completed job's measured runtime for the request it was
    /// predicted from — `{"op":"observe"}` on the wire. The outer `Result`
    /// is transport failure; the inner one is the server's verdict:
    /// `Ok(reply)` when the observation was folded into the controller's
    /// [`ObservationSink`], `Err(reason)` when it was rejected (non-finite
    /// runtime, or the live model could not re-predict the request).
    pub fn observe(
        &mut self,
        req: &PredictionRequest,
        actual_secs: f64,
    ) -> std::io::Result<Result<ObserveReply, String>> {
        let mut line = String::from("{\"op\":\"observe\",\"req\":");
        line.push_str(&serde_json::to_string(req)?);
        line.push_str(&format!(",\"actual_secs\":{actual_secs:?}}}"));
        let resp = self.round_trip(&line)?;
        if let Some(reason) = observe_rejected_from_line(&resp) {
            return Ok(Err(reason));
        }
        ObserveReply::from_line(&resp).map(Ok).map_err(invalid_data)
    }

    /// Opens the TCP connection if none is live.
    fn ensure_conn(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = match self.timeout {
                Some(t) => {
                    let s = TcpStream::connect_timeout(&self.addr, t).inspect_err(|_| {
                        client_metrics().timeouts.inc();
                    })?;
                    s.set_read_timeout(Some(t))?;
                    s.set_write_timeout(Some(t))?;
                    s
                }
                None => TcpStream::connect(self.addr)?,
            };
            let writer = stream.try_clone()?;
            self.conn = Some(Conn { writer, reader: BufReader::new(stream) });
        }
        self.conn.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "connection unavailable")
        })
    }

    /// Sends one request and waits for the response. Under
    /// [`Self::connect_resilient`], the request is id-wrapped and retried
    /// on transport failures (see [`RequestEnvelope`]).
    pub fn predict(
        &mut self,
        req: &PredictionRequest,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        if let Some(policy) = self.retry {
            return self.predict_resilient(req, policy, None);
        }
        let line = serde_json::to_string(req)?;
        let resp = self.round_trip(&line)?;
        if let Some(e) = overload_from_line(&resp) {
            // The server shed the request (transient, retryable); the
            // connection stays open. Plain clients surface the error.
            client_metrics().overloads.inc();
            return Err(e);
        }
        if let Some(e) = shard_moved_from_line(&resp) {
            // Router re-route signal; plain clients surface it (resilient
            // clients refresh the route table and retry).
            client_metrics().shard_moved.inc();
            return Err(e);
        }
        let wire: WireResponse = serde_json::from_str(resp.trim_end())?;
        Ok(match wire {
            WireResponse::Ok { prediction } => Ok(prediction),
            WireResponse::Err { error } => Err(error),
        })
    }

    /// The enveloped, retrying predict path. A response is accepted only
    /// if it parses as a [`ResponseEnvelope`] echoing this exact
    /// `(session, id)` — anything else (corrupt frame, stale reply on a
    /// resynchronized stream, the controller's un-id'd malformed-frame
    /// error) drops the connection and retries. Replays hit the
    /// controller's response cache, so results arrive exactly once.
    fn predict_resilient(
        &mut self,
        req: &PredictionRequest,
        policy: RetryPolicy,
        trace: Option<TraceContext>,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        let cm = client_metrics();
        let id = self.next_id;
        self.next_id += 1;
        let envelope = RequestEnvelope {
            client: self.session,
            id,
            trace: trace.map(TraceHeader::from),
            req: req.clone(),
        };
        let line = serde_json::to_string(&envelope)?;
        // Mix the request id into the jitter stream so concurrent requests
        // back off on decorrelated schedules.
        let mut backoff = Backoff::new(RetryPolicy {
            jitter_seed: policy.jitter_seed ^ id.wrapping_mul(0xA24B_AED4_963E_E407),
            ..policy
        });
        let mut last_err: std::io::Error;
        loop {
            let was_connected = self.conn.is_some();
            match self.round_trip(&line) {
                Ok(resp) => {
                    if let Some(e) = overload_from_line(&resp) {
                        // Typed shed: the server kept the connection open,
                        // so back off (honoring its retry_after hint
                        // below) without reconnecting.
                        cm.overloads.inc();
                        last_err = e;
                    } else if let Some(e) = shard_moved_from_line(&resp) {
                        // The routed shard died before answering. The
                        // router has already absorbed the death (the
                        // reply carries the new epoch), so refresh the
                        // cached route table — best effort; the retry
                        // itself is what must land — and go again: the
                        // retry routes to the replacement shard, whose
                        // dedup cache keeps the result exactly-once.
                        cm.shard_moved.inc();
                        let _ = self.route_table();
                        last_err = e;
                    } else {
                        match serde_json::from_str::<ResponseEnvelope>(resp.trim_end()) {
                            Ok(renv) if renv.client == self.session && renv.id == id => {
                                self.last_shard = renv.shard.or(self.last_shard);
                                return Ok(match renv.resp {
                                    WireResponse::Ok { prediction } => Ok(prediction),
                                    WireResponse::Err { error } => Err(error),
                                });
                            }
                            _ => {
                                // Corrupted or mismatched reply: the stream
                                // can no longer be trusted to be in sync.
                                cm.mismatches.inc();
                                self.conn = None;
                                last_err = std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    "response did not echo the request identity",
                                );
                            }
                        }
                    }
                }
                Err(e) if is_transient(&e) => {
                    self.conn = None;
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
            match backoff.next_delay() {
                Some(delay) => {
                    cm.retries.inc();
                    // Count a reconnect only when the connection was
                    // actually lost (an overload shed keeps it open).
                    if was_connected && self.conn.is_none() {
                        cm.reconnects.inc();
                    }
                    // The server's pacing hint is a floor under the
                    // jittered backoff, capped by the policy so a bogus
                    // hint cannot stall the client.
                    let floor = overload_retry_hint(&last_err)
                        .or_else(|| shard_moved_retry_hint(&last_err))
                        .map(|h| h.min(policy.max_delay))
                        .unwrap_or(Duration::ZERO);
                    std::thread::sleep(delay.max(floor));
                }
                None => return Err(last_err),
            }
        }
    }

    /// Sends a batch of requests as one JSON-array line and waits for the
    /// JSON array of per-request responses (request order is preserved).
    /// Server-side the batch fans out across the work pool. Batch frames
    /// are not id-wrapped; under an unreliable transport, prefer repeated
    /// [`Self::predict`] calls on a resilient client.
    pub fn predict_batch(
        &mut self,
        reqs: &[PredictionRequest],
    ) -> std::io::Result<Vec<Result<Prediction, RequestError>>> {
        let line = serde_json::to_string(&reqs.to_vec())?;
        let resp = self.round_trip(&line)?;
        if let Some(e) = overload_from_line(&resp) {
            // A shed batch is one overload frame, not an array; the whole
            // batch is retryable as a unit.
            client_metrics().overloads.inc();
            return Err(e);
        }
        let wire: Vec<WireResponse> = serde_json::from_str(resp.trim_end())?;
        Ok(wire
            .into_iter()
            .map(|w| match w {
                WireResponse::Ok { prediction } => Ok(prediction),
                WireResponse::Err { error } => Err(error),
            })
            .collect())
    }

    /// [`Self::predict`] under an explicit trace context: the request is
    /// id-wrapped with `trace` in its header, so the controller records
    /// the full pipeline span tree under the caller's root span and the
    /// response echoes the ids back. On a resilient client every retry
    /// reuses the same context — the deterministic span derivation merges
    /// the attempts into one retained trace.
    pub fn predict_with_trace(
        &mut self,
        req: &PredictionRequest,
        trace: TraceContext,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        if let Some(policy) = self.retry {
            return self.predict_resilient(req, policy, Some(trace));
        }
        let cm = client_metrics();
        let id = self.next_id;
        self.next_id += 1;
        let envelope = RequestEnvelope {
            client: self.session,
            id,
            trace: Some(TraceHeader::from(trace)),
            req: req.clone(),
        };
        let line = serde_json::to_string(&envelope)?;
        let resp = self.round_trip(&line)?;
        if let Some(e) = overload_from_line(&resp) {
            cm.overloads.inc();
            return Err(e);
        }
        if let Some(e) = shard_moved_from_line(&resp) {
            cm.shard_moved.inc();
            return Err(e);
        }
        let renv: ResponseEnvelope = serde_json::from_str(resp.trim_end())?;
        if renv.client != self.session || renv.id != id {
            cm.mismatches.inc();
            self.conn = None;
            return Err(invalid_data(
                "response did not echo the request identity".to_string(),
            ));
        }
        self.last_shard = renv.shard.or(self.last_shard);
        Ok(match renv.resp {
            WireResponse::Ok { prediction } => Ok(prediction),
            WireResponse::Err { error } => Err(error),
        })
    }

    /// Fetches the flight recorder's retained traces (`{"op":"trace"}` on
    /// the wire) as the parsed dump document; decode the trace list with
    /// [`pddl_telemetry::trace::parse_trace_dump`].
    pub fn trace_dump(&mut self) -> std::io::Result<pddl_telemetry::JsonValue> {
        let resp = self.round_trip("{\"op\":\"trace\"}")?;
        let doc = pddl_telemetry::JsonValue::parse(resp.trim_end())
            .map_err(invalid_data)?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("trace") {
            return Err(invalid_data("response is not a trace payload".to_string()));
        }
        Ok(doc)
    }

    /// Fetches the controller's metrics as Prometheus text exposition
    /// (`{"op":"metrics"}` on the wire).
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let resp = self.round_trip("{\"op\":\"metrics\"}")?;
        let doc = pddl_telemetry::JsonValue::parse(resp.trim_end())
            .map_err(invalid_data)?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("metrics") {
            return Err(invalid_data("response is not a metrics payload".to_string()));
        }
        doc.get("exposition")
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| invalid_data("metrics response missing 'exposition'".to_string()))
    }

    /// Requests a live telemetry snapshot from the controller
    /// (`{"op":"stats"}` on the wire).
    pub fn stats(&mut self) -> std::io::Result<Snapshot> {
        let resp = self.round_trip("{\"op\":\"stats\"}")?;
        let doc = pddl_telemetry::JsonValue::parse(resp.trim_end())
            .map_err(invalid_data)?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("stats") {
            return Err(invalid_data("response is not a stats payload".to_string()));
        }
        // Sharded controllers stamp their id on the stats line; surface
        // it instead of silently dropping the unknown field.
        if let Some(shard) = doc.get("shard").and_then(|v| v.as_u64()) {
            self.last_shard = Some(shard);
        }
        let snapshot = doc.get("snapshot").ok_or_else(|| {
            invalid_data("stats response missing 'snapshot'".to_string())
        })?;
        Snapshot::from_value(snapshot).map_err(invalid_data)
    }

    /// Writes one line, reads one line; counts requests and timeouts.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        let m = client_metrics();
        m.requests.inc();
        let io = |e: std::io::Error| {
            if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
                m.timeouts.inc();
            }
            e
        };
        let conn = self.ensure_conn().map_err(io)?;
        conn.writer.write_all(line.as_bytes()).map_err(io)?;
        conn.writer.write_all(b"\n").map_err(io)?;
        conn.writer.flush().map_err(io)?;
        let mut resp = String::new();
        conn.reader.read_line(&mut resp).map_err(io)?;
        if resp.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "controller closed connection",
            ));
        }
        Ok(resp)
    }
}

fn invalid_data(e: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}
