//! The Controller (§III-D): "the entry point to train GHN models and to
//! predict the training time of a DNN architecture. The controller has a
//! listener to receive and forward incoming requests to the Task Checker."
//!
//! The Listener speaks newline-delimited JSON over TCP — the same framing
//! as the Cluster Resource Collector. Each connection may send any number
//! of requests and receives one response line per request. A line holding
//! a JSON *array* of prediction requests is a batch: the controller fans
//! the batch out across the [`pddl_par`] work pool and answers with one
//! JSON array of responses in request order. Besides prediction requests,
//! the wire protocol carries one control op: `{"op":"stats"}` returns a
//! live JSON snapshot of the telemetry registry (see the README's
//! "Observability" section for the metric catalogue).
//!
//! ## Bounded serving core
//!
//! Connections are accepted by a single acceptor thread and read by cheap
//! per-connection reader threads (capped at `max_connections`), but the
//! *work* runs on a fixed pool of worker threads consuming a bounded FIFO
//! admission queue ([`crate::serve::ServePool`]). A full queue sheds the
//! request immediately with a typed
//! `{"error":"overloaded","retry_after_ms":...}` reply — the same reply a
//! request gets if it waits in the queue past the configured deadline, or
//! a connection gets past the connection cap. Overload replies are
//! classified as transient by [`pddl_cluster::retry::is_transient`], so
//! [`ControllerClient::connect_resilient`] retries them end-to-end,
//! honoring the server's `retry_after_ms` pacing hint. Shutdown is a
//! graceful drain: stop accepting, let readers finish their in-flight
//! frame, flush the queue, then log a final stats snapshot. Tune with
//! [`Controller::serve_with`] and [`ServeConfig`].
//!
//! ## Hardening
//!
//! Frames are bounded at [`pddl_cluster::MAX_FRAME_BYTES`]; a peer that
//! never sends a newline is cut off, not buffered. Malformed frames earn a
//! typed error reply and a counter bump; over-long frames additionally
//! close the connection (line sync is lost). A request wrapped in a
//! [`RequestEnvelope`] carries a `(client, id)` identity: the controller
//! remembers recent responses per identity, so a client retrying after a
//! lost reply gets the original response back instead of a recomputation —
//! the dedup behind [`ControllerClient::connect_resilient`]'s exactly-once
//! semantics. When `PDDL_FAULT_PLAN` is set (see [`pddl_faults`]), every
//! accepted connection wears deterministic fault injectors.

use crate::offline::PredictDdl;
use crate::request::{Prediction, PredictionRequest, RequestError};
use crate::serve::{
    JobOutcome, Latch, OpenOnDrop, ServeConfig, ServePool, SubmitError, WaitGroup,
};
use pddl_cluster::protocol::{LinePoll, LineReader, WireError, MAX_FRAME_BYTES};
use pddl_cluster::retry::{
    is_transient, overload_retry_hint, overloaded_error, Backoff, RetryPolicy,
};
use pddl_faults::{Direction, FaultPlan, FaultyRead, FaultyWrite};
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Wire response.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum WireResponse {
    /// Successful prediction.
    Ok {
        /// The prediction payload.
        prediction: Prediction,
    },
    /// Rejected or failed request.
    Err {
        /// Why the request failed.
        error: RequestError,
    },
}

/// A prediction request wrapped with a client-chosen identity, enabling
/// idempotent retry: the controller caches the response under
/// `(client, id)` and serves it again verbatim if the same identity
/// reappears (e.g. after the original reply was lost in transit).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client session token (unique per [`ControllerClient`] instance).
    pub client: u64,
    /// Request number within the session.
    pub id: u64,
    /// The wrapped request.
    pub req: PredictionRequest,
}

/// The response to a [`RequestEnvelope`], echoing its identity so the
/// client can match replies to requests across retries and reject frames
/// corrupted in transit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Echo of the request's client token.
    pub client: u64,
    /// Echo of the request's id.
    pub id: u64,
    /// The actual response.
    pub resp: WireResponse,
}

/// Control operations multiplexed onto the request stream. Tried before
/// [`PredictionRequest`] parsing; the `op` tag cannot collide with a
/// prediction request's fields.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
enum ControlOp {
    /// Return a JSON snapshot of the telemetry registry.
    #[allow(dead_code)] // constructed only through the derived Deserialize
    Stats,
}

/// One classified request frame (see [`parse_frame`]).
#[derive(Clone, Debug)]
pub enum ParsedFrame {
    /// `{"op":"stats"}` — telemetry snapshot request.
    Stats,
    /// A JSON array of prediction requests (a batch).
    Batch(Vec<PredictionRequest>),
    /// An id-wrapped single request (idempotent-retry path).
    Enveloped(RequestEnvelope),
    /// A bare single request.
    Single(Box<PredictionRequest>),
}

/// Classifies one request line into a [`ParsedFrame`]. This is the
/// controller's entire peer-facing parser: it must return `Err` — never
/// panic — for arbitrary bytes (enforced by `tests/wire_fuzz.rs`).
pub fn parse_frame(line: &str) -> Result<ParsedFrame, String> {
    if serde_json::from_str::<ControlOp>(line).is_ok() {
        return Ok(ParsedFrame::Stats);
    }
    if line.trim_start().starts_with('[') {
        return match serde_json::from_str::<Vec<PredictionRequest>>(line) {
            Ok(reqs) => Ok(ParsedFrame::Batch(reqs)),
            Err(e) => Err(format!("malformed batch request: {e}")),
        };
    }
    if let Ok(env) = serde_json::from_str::<RequestEnvelope>(line) {
        return Ok(ParsedFrame::Enveloped(env));
    }
    match serde_json::from_str::<PredictionRequest>(line) {
        Ok(req) => Ok(ParsedFrame::Single(Box::new(req))),
        Err(e) => Err(format!("malformed request: {e}")),
    }
}

/// Controller-side metric handles, resolved once (increments stay
/// lock-free on the request path).
struct Metrics {
    requests_total: &'static Counter,
    requests_ok: &'static Counter,
    requests_err: &'static Counter,
    stats_requests: &'static Counter,
    batch_requests: &'static Counter,
    malformed_frames: &'static Counter,
    oversize_frames: &'static Counter,
    disconnects: &'static Counter,
    dedup_hits: &'static Counter,
    connections_total: &'static Counter,
    connections_shed: &'static Counter,
    active_connections: &'static Gauge,
    request_latency: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        requests_total: pddl_telemetry::counter("controller.requests_total"),
        requests_ok: pddl_telemetry::counter("controller.requests_ok"),
        requests_err: pddl_telemetry::counter("controller.requests_err"),
        stats_requests: pddl_telemetry::counter("controller.stats_requests"),
        batch_requests: pddl_telemetry::counter("controller.batch_requests"),
        malformed_frames: pddl_telemetry::counter("controller.malformed_frames"),
        oversize_frames: pddl_telemetry::counter("controller.oversize_frames"),
        disconnects: pddl_telemetry::counter("controller.disconnects"),
        dedup_hits: pddl_telemetry::counter("controller.request_dedups"),
        connections_total: pddl_telemetry::counter("controller.connections_total"),
        connections_shed: pddl_telemetry::counter("controller.connections_shed"),
        active_connections: pddl_telemetry::gauge("controller.active_connections"),
        request_latency: pddl_telemetry::histogram("controller.request_latency"),
    })
}

/// Entries kept in the idempotent-retry response cache. Sized so a burst
/// of retried requests stays deduplicated while memory stays bounded
/// (~cache-cap × response-line bytes).
const RESPONSE_CACHE_CAP: usize = 4096;

/// Bounded FIFO cache of rendered response lines keyed by request
/// identity. Shared across connections: a client may retry on a fresh
/// connection after the original died mid-reply.
#[derive(Default)]
struct ResponseCache {
    inner: Mutex<CacheInner>,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<(u64, u64), String>,
    order: VecDeque<(u64, u64)>,
}

impl ResponseCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panicked handler cannot leave the cache in a broken state (all
        // mutations are single statements), so poison is safe to clear.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, key: (u64, u64)) -> Option<String> {
        self.lock().map.get(&key).cloned()
    }

    fn put(&self, key: (u64, u64), line: String) {
        let mut inner = self.lock();
        if inner.map.insert(key, line).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > RESPONSE_CACHE_CAP {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }
}

/// How often reader threads surface from a blocking read to poll the
/// shutdown flag (via a socket read timeout). Bounds drain latency; slow
/// enough that fault-plan schedules advance only modestly on idle
/// connections.
const SHUTDOWN_POLL: Duration = Duration::from_millis(250);

/// Renders the typed overload reply. Hand-rolled (no serde) so the exact
/// wire shape is fixed and the in-process benchmark path stays free of
/// JSON machinery; `reason` is one of `queue_full`, `deadline`,
/// `connection_limit`, `draining`.
fn overload_line(retry_after_ms: u64, reason: &str) -> String {
    format!("{{\"error\":\"overloaded\",\"retry_after_ms\":{retry_after_ms},\"reason\":\"{reason}\"}}")
}

/// Classifies a response line as a typed overload reply, mapping it to
/// the transient [`pddl_cluster::retry::Overloaded`] error the resilient
/// retry loop understands.
fn overload_from_line(resp: &str) -> Option<std::io::Error> {
    let trimmed = resp.trim_end();
    // Fast path: every overload reply carries this exact key/value.
    if !trimmed.contains("\"error\":\"overloaded\"") {
        return None;
    }
    let doc = pddl_telemetry::JsonValue::parse(trimmed).ok()?;
    if doc.get("error")?.as_str()? != "overloaded" {
        return None;
    }
    let ms = doc.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap_or(0);
    Some(overloaded_error(ms))
}

/// A running prediction service. Dropping the handle drains and stops it.
pub struct Controller {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests_served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
    readers: Arc<WaitGroup>,
    pool: Arc<ServePool>,
}

impl Controller {
    /// Serves a trained system on `addr` (port 0 = ephemeral) with the
    /// default [`ServeConfig`]. See [`Controller::serve_with`].
    pub fn serve(addr: &str, system: PredictDdl) -> std::io::Result<Self> {
        Self::serve_with(addr, system, ServeConfig::default())
    }

    /// Serves a trained system on `addr` under `config`: one acceptor
    /// thread, at most `config.max_connections` reader threads, and a
    /// fixed pool of `config.workers` workers behind a bounded admission
    /// queue (see the module docs for the overload semantics). The system
    /// is shared read-only. Connection accounting is load-independent —
    /// each reader checks itself out of the live count as it exits, so
    /// `controller.active_connections` returns to zero on an idle server
    /// with no accept traffic required.
    ///
    /// If `PDDL_FAULT_PLAN` is set, every accepted connection is wrapped
    /// in that plan's deterministic fault injectors; an unparseable plan
    /// is an `InvalidInput` error.
    pub fn serve_with(
        addr: &str,
        system: PredictDdl,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let fault_plan = FaultPlan::from_env()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let system = Arc::new(system);
        let cache = Arc::new(ResponseCache::default());
        let pool = Arc::new(ServePool::start(config));
        let readers = Arc::new(WaitGroup::new());
        tlog!(
            Level::Info,
            "controller",
            "listening",
            addr = local.to_string(),
            workers = pool.workers() as u64,
            queue_depth = pool.queue_capacity() as u64,
        );
        if let Some(plan) = &fault_plan {
            tlog!(Level::Warn, "controller", "fault injection active", plan = plan.to_spec());
        }

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let served = Arc::clone(&requests_served);
            let pool = Arc::clone(&pool);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || {
                let m = metrics();
                let mut next_conn: u64 = 0;
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            m.connections_total.inc();
                            if readers.count() >= config.max_connections {
                                // Connection-level shed: typed reply,
                                // close, no reader thread spawned.
                                m.connections_shed.inc();
                                let mut stream = stream;
                                stream.set_nonblocking(false).ok();
                                let _ = write_line(
                                    &mut stream,
                                    &overload_line(config.retry_after_ms, "connection_limit"),
                                );
                                continue;
                            }
                            stream.set_nonblocking(false).ok();
                            // Readers surface from blocking reads on this
                            // cadence to poll the shutdown flag.
                            stream.set_read_timeout(Some(SHUTDOWN_POLL)).ok();
                            m.active_connections.inc();
                            readers.add();
                            tlog!(
                                Level::Debug,
                                "controller",
                                "connection accepted",
                                peer = peer.to_string(),
                            );
                            let conn = next_conn;
                            next_conn += 1;
                            let system = Arc::clone(&system);
                            let served = Arc::clone(&served);
                            let cache = Arc::clone(&cache);
                            let pool = Arc::clone(&pool);
                            let readers = Arc::clone(&readers);
                            let shutdown = Arc::clone(&shutdown);
                            std::thread::spawn(move || {
                                let outcome = split_stream(stream, fault_plan.as_ref(), conn)
                                    .and_then(|(r, w)| {
                                        reader_loop(
                                            r, w, &system, &served, &cache, &pool,
                                            &shutdown, config,
                                        )
                                    });
                                if outcome.is_err() {
                                    // Mid-request disconnect or transport
                                    // death: reap the connection, keep the
                                    // service alive.
                                    metrics().disconnects.inc();
                                }
                                metrics().active_connections.dec();
                                readers.done();
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(Self {
            addr: local,
            shutdown,
            requests_served,
            accept_thread: Some(accept_thread),
            readers,
            pool,
        })
    }

    /// The address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered by computation (deduplicated replays of a
    /// cached response are counted in `controller.request_dedups`, not
    /// here; shed and expired requests are counted in
    /// `controller.requests_shed` / `controller.requests_expired`).
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Reader threads currently attached to live connections. Returns to
    /// zero once every client disconnects, with no accept traffic needed.
    pub fn live_connections(&self) -> usize {
        self.readers.count()
    }

    /// High-water mark of the admission queue since startup.
    pub fn queue_peak(&self) -> usize {
        self.pool.queue_peak()
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        // Graceful drain: stop accepting, wait out the readers (they
        // observe the flag within one SHUTDOWN_POLL), flush the admission
        // queue, then leave a final stats line in the log.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.readers.wait();
        self.pool.shutdown();
        tlog!(
            Level::Info,
            "controller",
            "drained",
            requests_served = self.requests_served.load(Ordering::Relaxed),
            queue_depth_peak = self.pool.queue_peak() as u64,
        );
    }
}

/// Splits a stream into boxed read/write halves, wearing the fault plan's
/// injectors when one is active.
fn split_stream(
    stream: TcpStream,
    plan: Option<&FaultPlan>,
    conn: u64,
) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    let writer = stream.try_clone()?;
    Ok(match plan {
        Some(p) => (
            Box::new(FaultyRead::new(stream, p.schedule(conn, Direction::Read))),
            Box::new(FaultyWrite::new(writer, p.schedule(conn, Direction::Write))),
        ),
        None => (Box::new(stream), Box::new(writer)),
    })
}

fn write_line(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// The shared (reader ∪ worker) writer half of one connection. The
/// per-frame latch hand-off means lock contention is nil: at most one of
/// the two sides wants the writer at a time.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_shared(w: &SharedWriter, line: &str) -> std::io::Result<()> {
    let mut guard = w.lock().unwrap_or_else(|e| e.into_inner());
    write_line(&mut *guard, line)
}

/// Submits `work` to the pool and blocks until it has written its
/// response (signalled through a [`Latch`], opened by a drop guard even
/// if the handler panics). The reader never polls the next frame until
/// the latch opens, which keeps per-connection responses in request order
/// while the pool interleaves many connections. A full queue is answered
/// inline with the typed overload reply (the pool already counted the
/// shed); a closed pool means the server is draining — reply, then hang
/// up.
fn submit_and_wait(
    pool: &ServePool,
    writer: &SharedWriter,
    retry_after_ms: u64,
    work: Box<dyn FnOnce(JobOutcome) + Send>,
) -> std::io::Result<()> {
    let latch = Arc::new(Latch::new());
    let guard = OpenOnDrop(Arc::clone(&latch));
    match pool.try_submit(move |outcome| {
        let _open = guard;
        work(outcome);
    }) {
        Ok(()) => {
            latch.wait();
            Ok(())
        }
        Err(SubmitError::Full) => {
            write_shared(writer, &overload_line(retry_after_ms, "queue_full"))
        }
        Err(SubmitError::Closed) => {
            let _ = write_shared(writer, &overload_line(retry_after_ms, "draining"));
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "serving pool draining",
            ))
        }
    }
}

/// Per-connection reader: frames the byte stream, answers control ops and
/// protocol errors inline, and funnels every prediction frame through the
/// bounded pool. Returns on clean EOF, shutdown, or transport death.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    system: &Arc<PredictDdl>,
    served: &Arc<AtomicU64>,
    cache: &Arc<ResponseCache>,
    pool: &ServePool,
    shutdown: &AtomicBool,
    config: ServeConfig,
) -> std::io::Result<()> {
    let m = metrics();
    let mut reader = BufReader::new(reader);
    let mut lines = LineReader::bounded(MAX_FRAME_BYTES);
    let writer: SharedWriter = Arc::new(Mutex::new(writer));
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break; // drain: stop reading new requests
        }
        let line = match lines.poll(&mut reader) {
            Ok(LinePoll::Line(line)) => line,
            Ok(LinePoll::Eof) => break,
            // The read timed out (SHUTDOWN_POLL): partial frame is kept,
            // loop back to check the shutdown flag.
            Ok(LinePoll::Pending) => continue,
            Err(WireError::FrameTooLong { limit }) => {
                // Line sync is lost: reply (best effort) and drop the peer.
                m.oversize_frames.inc();
                let response = WireResponse::Err {
                    error: RequestError::InvalidParams(format!(
                        "frame exceeds {limit} bytes"
                    )),
                };
                let _ = write_shared(&writer, &serde_json::to_string(&response)?);
                break;
            }
            // LineReader does not parse, so Malformed cannot occur here;
            // treat it like an over-long frame rather than panicking.
            Err(WireError::Malformed { .. }) => break,
            Err(WireError::Io(e)) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let frame = match parse_frame(&line) {
            Ok(frame) => frame,
            Err(detail) => {
                m.malformed_frames.inc();
                m.requests_total.inc();
                m.requests_err.inc();
                served.fetch_add(1, Ordering::Relaxed);
                let response =
                    WireResponse::Err { error: RequestError::InvalidParams(detail) };
                write_shared(&writer, &serde_json::to_string(&response)?)?;
                continue;
            }
        };
        let retry_after = config.retry_after_ms;
        match frame {
            // Control op: answered inline by the reader, never queued or
            // shed — stats stay observable *during* overload.
            ParsedFrame::Stats => {
                m.stats_requests.inc();
                let out = format!(
                    "{{\"status\":\"stats\",\"snapshot\":{}}}",
                    pddl_telemetry::snapshot().to_json()
                );
                write_shared(&writer, &out)?;
            }
            // Batch requests: a JSON *array* of prediction requests. One
            // queue slot per batch; the per-request work still fans out
            // across the work pool via [`PredictDdl::predict_many`].
            ParsedFrame::Batch(reqs) => {
                let system = Arc::clone(system);
                let served = Arc::clone(served);
                let writer_j = Arc::clone(&writer);
                submit_and_wait(
                    pool,
                    &writer,
                    retry_after,
                    Box::new(move |outcome| {
                        let m = metrics();
                        if outcome == JobOutcome::Expired {
                            let _ = write_shared(
                                &writer_j,
                                &overload_line(retry_after, "deadline"),
                            );
                            return;
                        }
                        let t0 = Instant::now();
                        m.batch_requests.inc();
                        m.requests_total.add(reqs.len() as u64);
                        let results = system.predict_many(&reqs);
                        let responses: Vec<WireResponse> = results
                            .into_iter()
                            .map(|r| match r {
                                Ok(prediction) => {
                                    m.requests_ok.inc();
                                    WireResponse::Ok { prediction }
                                }
                                Err(error) => {
                                    m.requests_err.inc();
                                    WireResponse::Err { error }
                                }
                            })
                            .collect();
                        served.fetch_add(responses.len() as u64, Ordering::Relaxed);
                        let Ok(out) = serde_json::to_string(&responses) else {
                            return;
                        };
                        let _ = write_shared(&writer_j, &out);
                        let elapsed = t0.elapsed();
                        m.request_latency.record_duration(elapsed);
                        tlog!(
                            Level::Debug,
                            "controller.request",
                            "served batch",
                            batch_size = responses.len() as u64,
                            latency_us = elapsed.as_micros() as u64,
                        );
                    }),
                )?;
            }
            // Id-wrapped single request: the reader consults the response
            // cache first, so a retried request replays the original
            // response without consuming a queue slot.
            ParsedFrame::Enveloped(env) => {
                let key = (env.client, env.id);
                if let Some(cached) = cache.get(key) {
                    m.dedup_hits.inc();
                    tlog!(
                        Level::Debug,
                        "controller.request",
                        "deduplicated retry",
                        client = env.client,
                        id = env.id,
                    );
                    write_shared(&writer, &cached)?;
                    continue;
                }
                let system = Arc::clone(system);
                let served = Arc::clone(served);
                let cache = Arc::clone(cache);
                let writer_j = Arc::clone(&writer);
                submit_and_wait(
                    pool,
                    &writer,
                    retry_after,
                    Box::new(move |outcome| {
                        let m = metrics();
                        if outcome == JobOutcome::Expired {
                            // Not cached: the client's retry should get a
                            // real execution, not a replayed shed.
                            let _ = write_shared(
                                &writer_j,
                                &overload_line(retry_after, "deadline"),
                            );
                            return;
                        }
                        let t0 = Instant::now();
                        m.requests_total.inc();
                        let resp = predict_one(&system, &env.req, m);
                        let Ok(out) = serde_json::to_string(&ResponseEnvelope {
                            client: env.client,
                            id: env.id,
                            resp,
                        }) else {
                            return;
                        };
                        cache.put(key, out.clone());
                        served.fetch_add(1, Ordering::Relaxed);
                        let _ = write_shared(&writer_j, &out);
                        m.request_latency.record_duration(t0.elapsed());
                    }),
                )?;
            }
            ParsedFrame::Single(req) => {
                let system = Arc::clone(system);
                let served = Arc::clone(served);
                let writer_j = Arc::clone(&writer);
                submit_and_wait(
                    pool,
                    &writer,
                    retry_after,
                    Box::new(move |outcome| {
                        let m = metrics();
                        if outcome == JobOutcome::Expired {
                            let _ = write_shared(
                                &writer_j,
                                &overload_line(retry_after, "deadline"),
                            );
                            return;
                        }
                        let t0 = Instant::now();
                        m.requests_total.inc();
                        let response = predict_one(&system, &req, m);
                        served.fetch_add(1, Ordering::Relaxed);
                        let Ok(out) = serde_json::to_string(&response) else {
                            return;
                        };
                        let _ = write_shared(&writer_j, &out);
                        let elapsed = t0.elapsed();
                        m.request_latency.record_duration(elapsed);
                        match &response {
                            WireResponse::Ok { .. } => {
                                tlog!(
                                    Level::Debug,
                                    "controller.request",
                                    "served",
                                    latency_us = elapsed.as_micros() as u64,
                                );
                            }
                            WireResponse::Err { error } => {
                                tlog!(
                                    Level::Warn,
                                    "controller.request",
                                    "request failed",
                                    error = error.to_string(),
                                    latency_us = elapsed.as_micros() as u64,
                                );
                            }
                        }
                    }),
                )?;
            }
        }
    }
    Ok(())
}

/// Runs one prediction, recording ok/err counters.
fn predict_one(system: &PredictDdl, req: &PredictionRequest, m: &Metrics) -> WireResponse {
    match system.predict(req) {
        Ok(prediction) => {
            m.requests_ok.inc();
            WireResponse::Ok { prediction }
        }
        Err(error) => {
            m.requests_err.inc();
            WireResponse::Err { error }
        }
    }
}

/// Client-side metric handles.
struct ClientMetrics {
    requests: &'static Counter,
    timeouts: &'static Counter,
    retries: &'static Counter,
    reconnects: &'static Counter,
    mismatches: &'static Counter,
    overloads: &'static Counter,
}

fn client_metrics() -> &'static ClientMetrics {
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ClientMetrics {
        requests: pddl_telemetry::counter("controller_client.requests"),
        timeouts: pddl_telemetry::counter("controller_client.timeouts"),
        retries: pddl_telemetry::counter("controller_client.retries"),
        reconnects: pddl_telemetry::counter("controller_client.reconnects"),
        mismatches: pddl_telemetry::counter("controller_client.response_mismatches"),
        overloads: pddl_telemetry::counter("controller_client.overloads"),
    })
}

/// A process-unique-ish session token for request identities. Collisions
/// across processes are harmless (the dedup cache would merely replay a
/// response to a client that provably sent the same session+id).
fn session_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let t = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ NEXT.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        ^ ((std::process::id() as u64) << 32)
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Blocking client for the controller protocol.
pub struct ControllerClient {
    conn: Option<Conn>,
    addr: SocketAddr,
    timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
    session: u64,
    next_id: u64,
}

impl ControllerClient {
    /// Connects without timeouts: a dead or stalled server blocks
    /// indefinitely. Prefer [`Self::connect_with_timeout`] for anything
    /// beyond tests on localhost, and [`Self::connect_resilient`] when the
    /// transport itself is unreliable.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let mut client = Self::disconnected(addr, None, None);
        client.ensure_conn()?;
        Ok(client)
    }

    /// Connects with `timeout` applied to the TCP connect and to every
    /// subsequent read and write. Timed-out requests surface as
    /// `TimedOut`/`WouldBlock` errors and are counted in the
    /// `controller_client.timeouts` counter.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let mut client = Self::disconnected(addr, Some(timeout), None);
        client.ensure_conn()?;
        Ok(client)
    }

    /// Connects under `policy`: every [`Self::predict`] is wrapped in a
    /// [`RequestEnvelope`] with a fresh `(session, id)` identity and
    /// retried with capped jittered exponential backoff on transport
    /// failures, per-attempt deadlines, and reconnection. Combined with
    /// the controller's response cache this gives exactly-once results: a
    /// retried request whose original reply was lost replays the cached
    /// response instead of recomputing.
    ///
    /// The initial TCP connect is itself retried under the policy, so a
    /// resilient client can be created before its controller is up.
    pub fn connect_resilient(addr: SocketAddr, policy: RetryPolicy) -> std::io::Result<Self> {
        let mut client =
            Self::disconnected(addr, Some(policy.attempt_timeout), Some(policy));
        let mut backoff = Backoff::new(policy);
        loop {
            match client.ensure_conn() {
                Ok(_) => return Ok(client),
                Err(e) if is_transient(&e) => match backoff.next_delay() {
                    Some(delay) => {
                        client_metrics().retries.inc();
                        std::thread::sleep(delay);
                    }
                    None => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }

    fn disconnected(
        addr: SocketAddr,
        timeout: Option<Duration>,
        retry: Option<RetryPolicy>,
    ) -> Self {
        Self { conn: None, addr, timeout, retry, session: session_token(), next_id: 1 }
    }

    /// Opens the TCP connection if none is live.
    fn ensure_conn(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = match self.timeout {
                Some(t) => {
                    let s = TcpStream::connect_timeout(&self.addr, t).inspect_err(|_| {
                        client_metrics().timeouts.inc();
                    })?;
                    s.set_read_timeout(Some(t))?;
                    s.set_write_timeout(Some(t))?;
                    s
                }
                None => TcpStream::connect(self.addr)?,
            };
            let writer = stream.try_clone()?;
            self.conn = Some(Conn { writer, reader: BufReader::new(stream) });
        }
        self.conn.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "connection unavailable")
        })
    }

    /// Sends one request and waits for the response. Under
    /// [`Self::connect_resilient`], the request is id-wrapped and retried
    /// on transport failures (see [`RequestEnvelope`]).
    pub fn predict(
        &mut self,
        req: &PredictionRequest,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        if let Some(policy) = self.retry {
            return self.predict_resilient(req, policy);
        }
        let line = serde_json::to_string(req)?;
        let resp = self.round_trip(&line)?;
        if let Some(e) = overload_from_line(&resp) {
            // The server shed the request (transient, retryable); the
            // connection stays open. Plain clients surface the error.
            client_metrics().overloads.inc();
            return Err(e);
        }
        let wire: WireResponse = serde_json::from_str(resp.trim_end())?;
        Ok(match wire {
            WireResponse::Ok { prediction } => Ok(prediction),
            WireResponse::Err { error } => Err(error),
        })
    }

    /// The enveloped, retrying predict path. A response is accepted only
    /// if it parses as a [`ResponseEnvelope`] echoing this exact
    /// `(session, id)` — anything else (corrupt frame, stale reply on a
    /// resynchronized stream, the controller's un-id'd malformed-frame
    /// error) drops the connection and retries. Replays hit the
    /// controller's response cache, so results arrive exactly once.
    fn predict_resilient(
        &mut self,
        req: &PredictionRequest,
        policy: RetryPolicy,
    ) -> std::io::Result<Result<Prediction, RequestError>> {
        let cm = client_metrics();
        let id = self.next_id;
        self.next_id += 1;
        let envelope =
            RequestEnvelope { client: self.session, id, req: req.clone() };
        let line = serde_json::to_string(&envelope)?;
        // Mix the request id into the jitter stream so concurrent requests
        // back off on decorrelated schedules.
        let mut backoff = Backoff::new(RetryPolicy {
            jitter_seed: policy.jitter_seed ^ id.wrapping_mul(0xA24B_AED4_963E_E407),
            ..policy
        });
        let mut last_err: std::io::Error;
        loop {
            let was_connected = self.conn.is_some();
            match self.round_trip(&line) {
                Ok(resp) => {
                    if let Some(e) = overload_from_line(&resp) {
                        // Typed shed: the server kept the connection open,
                        // so back off (honoring its retry_after hint
                        // below) without reconnecting.
                        cm.overloads.inc();
                        last_err = e;
                    } else {
                        match serde_json::from_str::<ResponseEnvelope>(resp.trim_end()) {
                            Ok(renv) if renv.client == self.session && renv.id == id => {
                                return Ok(match renv.resp {
                                    WireResponse::Ok { prediction } => Ok(prediction),
                                    WireResponse::Err { error } => Err(error),
                                });
                            }
                            _ => {
                                // Corrupted or mismatched reply: the stream
                                // can no longer be trusted to be in sync.
                                cm.mismatches.inc();
                                self.conn = None;
                                last_err = std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    "response did not echo the request identity",
                                );
                            }
                        }
                    }
                }
                Err(e) if is_transient(&e) => {
                    self.conn = None;
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
            match backoff.next_delay() {
                Some(delay) => {
                    cm.retries.inc();
                    // Count a reconnect only when the connection was
                    // actually lost (an overload shed keeps it open).
                    if was_connected && self.conn.is_none() {
                        cm.reconnects.inc();
                    }
                    // The server's pacing hint is a floor under the
                    // jittered backoff, capped by the policy so a bogus
                    // hint cannot stall the client.
                    let floor = overload_retry_hint(&last_err)
                        .map(|h| h.min(policy.max_delay))
                        .unwrap_or(Duration::ZERO);
                    std::thread::sleep(delay.max(floor));
                }
                None => return Err(last_err),
            }
        }
    }

    /// Sends a batch of requests as one JSON-array line and waits for the
    /// JSON array of per-request responses (request order is preserved).
    /// Server-side the batch fans out across the work pool. Batch frames
    /// are not id-wrapped; under an unreliable transport, prefer repeated
    /// [`Self::predict`] calls on a resilient client.
    pub fn predict_batch(
        &mut self,
        reqs: &[PredictionRequest],
    ) -> std::io::Result<Vec<Result<Prediction, RequestError>>> {
        let line = serde_json::to_string(&reqs.to_vec())?;
        let resp = self.round_trip(&line)?;
        if let Some(e) = overload_from_line(&resp) {
            // A shed batch is one overload frame, not an array; the whole
            // batch is retryable as a unit.
            client_metrics().overloads.inc();
            return Err(e);
        }
        let wire: Vec<WireResponse> = serde_json::from_str(resp.trim_end())?;
        Ok(wire
            .into_iter()
            .map(|w| match w {
                WireResponse::Ok { prediction } => Ok(prediction),
                WireResponse::Err { error } => Err(error),
            })
            .collect())
    }

    /// Requests a live telemetry snapshot from the controller
    /// (`{"op":"stats"}` on the wire).
    pub fn stats(&mut self) -> std::io::Result<Snapshot> {
        let resp = self.round_trip("{\"op\":\"stats\"}")?;
        let doc = pddl_telemetry::JsonValue::parse(resp.trim_end())
            .map_err(invalid_data)?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("stats") {
            return Err(invalid_data("response is not a stats payload".to_string()));
        }
        let snapshot = doc.get("snapshot").ok_or_else(|| {
            invalid_data("stats response missing 'snapshot'".to_string())
        })?;
        Snapshot::from_value(snapshot).map_err(invalid_data)
    }

    /// Writes one line, reads one line; counts requests and timeouts.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        let m = client_metrics();
        m.requests.inc();
        let io = |e: std::io::Error| {
            if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
                m.timeouts.inc();
            }
            e
        };
        let conn = self.ensure_conn().map_err(io)?;
        conn.writer.write_all(line.as_bytes()).map_err(io)?;
        conn.writer.write_all(b"\n").map_err(io)?;
        conn.writer.flush().map_err(io)?;
        let mut resp = String::new();
        conn.reader.read_line(&mut resp).map_err(io)?;
        if resp.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "controller closed connection",
            ));
        }
        Ok(resp)
    }
}

fn invalid_data(e: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}
