//! # PredictDDL
//!
//! End-to-end reproduction of *“PredictDDL: Reusable Workload Performance
//! Prediction for Distributed Deep Learning”* (Assogba, Lima, Rafique, Kwon
//! — IEEE CLUSTER 2023), built entirely in Rust on the workspace substrates.
//!
//! PredictDDL predicts the training time of a deep-learning workload
//! (model × dataset × cluster) from:
//!
//! 1. a fixed-size **GHN-2 embedding** of the DNN's computational graph
//!    ([`pddl_ghn`]), trained **once per dataset** and reused across
//!    arbitrary architectures — no retraining when the workload changes;
//! 2. **cluster-description features** (servers, cores, FLOPS, RAM, GPUs)
//!    from the Cluster Resource Collector ([`pddl_cluster`]);
//! 3. a pluggable **regression model** ([`pddl_regress`]), defaulting to the
//!    paper's second-order polynomial regression.
//!
//! ## Quick start
//!
//! ```no_run
//! use predictddl::{OfflineTrainer, PredictionRequest};
//! use pddl_cluster::{ClusterState, ServerClass};
//! use pddl_ddlsim::Workload;
//!
//! // One-time offline training (GHN + regressor) on the CIFAR-10 trace.
//! let system = OfflineTrainer::default().train_full();
//!
//! // Reusable predictions for any zoo model, no retraining:
//! let req = PredictionRequest::zoo(
//!     Workload::standard("resnet50", "cifar10"),
//!     ClusterState::homogeneous(ServerClass::GpuP100, 8),
//! );
//! let pred = system.predict(&req).unwrap();
//! println!("predicted training time: {:.1}s", pred.seconds);
//! ```
//!
//! The architecture mirrors Fig. 7 of the paper: a [`controller`] with a
//! Listener accepts requests, the [`task_checker`] validates them and routes
//! unknown datasets to the [`offline`] trainer, the [`embeddings`] generator
//! turns computational graphs into vectors, and the [`inference`] engine
//! regresses training time. See `ARCHITECTURE.md` at the repository root
//! for the full paper-section-to-module map.
//!
//! ## Wire protocol
//!
//! The controller speaks newline-delimited JSON over TCP. The wire
//! shapes live in the [`protocol`] module and are documented op-by-op,
//! with captured transcripts, in `PROTOCOL.md` at the repository root.
//! Nine request shapes share the stream:
//!
//! * a single [`PredictionRequest`] object → one [`Prediction`] (or error)
//!   response line;
//! * a [`RequestEnvelope`] (`{"client":…,"id":…,"req":{…}}`) → the same,
//!   wrapped in a [`ResponseEnvelope`] echoing the identity; retried ids
//!   replay the cached response, giving resilient clients exactly-once
//!   results (see [`ControllerClient::connect_resilient`]); an optional
//!   `"trace"` member (a [`TraceHeader`] — `trace_id`/`span_id`/
//!   `parent_id`) propagates a client-minted trace context through every
//!   pipeline stage and is echoed back on the response;
//! * a JSON **array** of prediction requests → a batch, fanned out across
//!   the [`pddl_par`] work pool, answered as one JSON array in request
//!   order;
//! * `{"op":"stats"}` → a live snapshot of every telemetry counter, gauge,
//!   and histogram (including the `embed_cache.*` hit/miss/eviction
//!   counters), as `{"status":"stats","snapshot":{...}}`;
//! * `{"op":"trace"}` → the flight recorder's retained trace dump
//!   (`{"status":"trace","suppressed":…,"retained":[…]}`) — see
//!   [`pddl_telemetry::trace`] and `ARCHITECTURE.md`'s observability
//!   section for the span model;
//! * `{"op":"metrics"}` → the full metric registry rendered as Prometheus
//!   text exposition, as `{"status":"metrics","exposition":"…"}`;
//! * `{"op":"route_table"}` → the serving plane's membership as a
//!   [`RouteTable`] (`{"status":"route_table","epoch":…,"shards":[…]}`).
//!   A bare controller answers with its one-entry identity table; the
//!   `pddl-router` process answers with the live fleet membership;
//! * `{"op":"observe"}` (`{"op":"observe","req":{…},"actual_secs":…}`) →
//!   feed a completed job's measured runtime back into the controller's
//!   [`observe::ObservationSink`]: the live model re-predicts the request,
//!   the log-space residual drives Page–Hinkley drift detection and the
//!   online calibration model, and the reply
//!   (`{"status":"observe","observations":…,"drift_events":…,
//!   "residual_z":…,"drifted":…}`) reports the standardized residual and
//!   whether this observation fired a drift event. Non-finite or
//!   non-positive runtimes get the typed
//!   `{"error":"observe_rejected","reason":…}` line;
//! * `{"op":"reload"}` (optional `"version"`) → hot-swap the serving
//!   model to a checkpoint-registry version (latest when unspecified)
//!   after replaying the manifest's golden probes against the candidate.
//!   Success answers `{"status":"reload","version":…,"previous":…,
//!   "epoch":…}`; a refused candidate answers the typed
//!   `{"error":"reload_rejected","reason":…}` line and the old model
//!   keeps serving (see the [`reload`] and [`checkpoint`] modules and
//!   the `pddl-registry` crate).
//!
//! The `op` frames are answered inline by the connection reader — they
//! bypass the worker pool, so stats, traces, metrics, and the route
//! table stay observable while the service is overloaded or draining.
//!
//! When controllers serve as shards of a router-fronted fleet (see
//! `crates/router` and `ARCHITECTURE.md` §7), responses additionally
//! echo the computing shard's id, and the router may answer a request
//! whose shard died with the typed
//! `{"error":"shard_moved","epoch":…,"retry_after_ms":…}` line —
//! transient, like the overload shed, so resilient clients refresh their
//! route table and retry.
//!
//! Frames are bounded at [`pddl_cluster::MAX_FRAME_BYTES`]; malformed
//! frames get typed error replies; and when `PDDL_FAULT_PLAN` is set the
//! listener injects deterministic wire faults for chaos testing (see the
//! [`pddl_faults`] crate and `TESTING.md`).
//!
//! Logging verbosity is controlled by the `PDDL_LOG` environment variable
//! (see [`pddl_telemetry`] for the `level[,target=level]*` filter syntax,
//! e.g. `PDDL_LOG=info,controller=debug`).

#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod controller;
pub mod embeddings;
pub mod inference;
pub mod observe;
pub mod offline;
pub mod persist;
pub mod protocol;
pub mod registry;
pub mod reload;
pub mod request;
pub mod serve;
pub mod task_checker;

pub use batch::{compare_batch, compare_batch_serial, BatchComparison, BatchJob};
pub use checkpoint::{
    load_checkpoint, probe_records, probe_requests, save_checkpoint, validate_probes,
    validate_probes_with, CheckpointError, ProbeTolerance, CACHE_ARTIFACT, SYSTEM_ARTIFACT,
};
pub use controller::{Controller, ControllerClient};
pub use observe::ObservationSink;
pub use protocol::{
    observe_rejected_from_line, observe_rejected_line, parse_frame, reload_rejected_from_line,
    reload_rejected_line, ObserveReply, ParsedFrame, ReloadReply, RequestEnvelope,
    ResponseEnvelope, RouteShard, RouteTable, TraceHeader, WireResponse, WIRE_OPS,
};
pub use reload::{spawn_watcher, LiveSystem, ReloadManager, ReloadOutcome, ReloadRejected};
pub use embeddings::{CacheStats, EmbeddingCache, EmbeddingsGenerator};
pub use inference::{InferenceEngine, InferenceConfig};
pub use offline::{OfflineTrainer, PredictDdl};
pub use registry::GhnRegistry;
pub use request::{ModelRef, Prediction, PredictionRequest, RequestError};
pub use serve::{JobOutcome, ServeConfig, ServePool, SubmitError};
pub use task_checker::{TaskChecker, TaskDecision};
