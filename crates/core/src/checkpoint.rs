//! Checkpoint format on top of the versioned registry.
//!
//! A checkpoint version holds two artifacts: the serialized trained system
//! ([`SYSTEM_ARTIFACT`], same JSON document `persist` writes) and a
//! snapshot of the service-level embedding cache ([`CACHE_ARTIFACT`]) so a
//! warm restart starts with the cache already populated instead of paying
//! cold misses for every resident workload.
//!
//! Each version's manifest also carries *validation probes*: a small,
//! deterministically chosen set of prediction requests replayed from the
//! system's own training trace, with the prediction recorded as exact
//! `f64` bit patterns at publish time. A reload candidate must reproduce
//! those predictions within tolerance before it is swapped live — an
//! unchanged model must reproduce them bit-identically.

use crate::embeddings::EmbeddingCache;
use crate::offline::PredictDdl;
use crate::request::PredictionRequest;
use pddl_registry::{Manifest, ProbeRecord, Registry, RegistryError};
use pddl_tensor::Precision;
use serde::{Deserialize, Serialize};

/// Artifact name of the serialized trained system inside a version.
pub const SYSTEM_ARTIFACT: &str = "system.json";
/// Artifact name of the embedding-cache snapshot inside a version.
pub const CACHE_ARTIFACT: &str = "embed_cache.json";
/// Default number of validation probes stamped into a manifest.
pub const DEFAULT_PROBES: usize = 4;

/// Failures while writing or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Registry-level failure (I/O, corruption, missing version/artifact).
    Registry(RegistryError),
    /// The system or cache payload failed to (de)serialize.
    Serde(serde_json::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Registry(e) => write!(f, "registry: {e}"),
            CheckpointError::Serde(e) => write!(f, "serialization: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<RegistryError> for CheckpointError {
    fn from(e: RegistryError) -> Self {
        CheckpointError::Registry(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Serde(e)
    }
}

/// Serialized form of the embedding cache: the completed entries, in
/// deterministic order, small enough to rehydrate with [`EmbeddingCache::preload`].
#[derive(Serialize, Deserialize)]
struct CacheSnapshot {
    entries: Vec<CacheEntry>,
}

#[derive(Serialize, Deserialize)]
struct CacheEntry {
    dataset: String,
    fingerprint: u64,
    embedding: Vec<f32>,
}

fn snapshot_cache(cache: &EmbeddingCache) -> CacheSnapshot {
    CacheSnapshot {
        entries: cache
            .snapshot_entries()
            .into_iter()
            .map(|(dataset, fingerprint, embedding)| CacheEntry { dataset, fingerprint, embedding })
            .collect(),
    }
}

/// Derives the validation-probe request set from the system's own training
/// trace: the first `max` distinct `(model, dataset, batch, epochs,
/// cluster)` combinations, each with a stable display key. Deterministic
/// for a given system, so publish-time and reload-time derivations agree.
pub fn probe_requests(system: &PredictDdl, max: usize) -> Vec<(String, PredictionRequest)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for rec in &system.records {
        if out.len() >= max {
            break;
        }
        let key = format!(
            "{}|{}|b{}|e{}|{:?}x{}",
            rec.workload.model,
            rec.workload.dataset,
            rec.workload.batch_size,
            rec.workload.epochs,
            rec.server_class,
            rec.num_servers
        );
        if !seen.insert(key.clone()) {
            continue;
        }
        out.push((key, PredictionRequest::zoo(rec.workload.clone(), rec.cluster())));
    }
    out
}

/// Runs the probe set against `system` and records each prediction as
/// exact bits. A probe whose prediction *errors* is skipped — it cannot
/// gate reloads it can't reproduce deterministically.
pub fn probe_records(system: &PredictDdl, max: usize) -> Vec<ProbeRecord> {
    probe_requests(system, max)
        .into_iter()
        .filter_map(|(key, req)| {
            system
                .predict(&req)
                .ok()
                .map(|p| ProbeRecord::from_seconds(&key, p.seconds))
        })
        .collect()
}

/// How far a replayed probe prediction may land from its recorded value.
///
/// Absolute tolerance is the right gate for bit-faithful paths (an
/// unchanged f32 model reproduces its probes bit-identically; a few nano-
/// seconds of slack covers nothing real). Relative tolerance is the right
/// gate when the serving precision differs from the publish precision —
/// bf16 quantization shifts each weight by up to 2⁻⁸ relative, so the
/// prediction drifts proportionally to its magnitude, not by a fixed
/// number of seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeTolerance {
    /// `|got - want| <= secs`.
    AbsoluteSecs(f64),
    /// `|got - want| <= rel * max(|want|, 1.0)` — the `max` keeps the gate
    /// meaningful for near-zero predictions.
    Relative(f64),
}

impl ProbeTolerance {
    fn admits(self, want: f64, got: f64) -> bool {
        let diff = (got - want).abs();
        if !diff.is_finite() {
            return false;
        }
        match self {
            ProbeTolerance::AbsoluteSecs(secs) => diff <= secs,
            ProbeTolerance::Relative(rel) => diff <= rel * want.abs().max(1.0),
        }
    }
}

/// Replays `manifest`'s probes against `candidate` and checks each
/// prediction lands within `tolerance` seconds of the recorded value
/// (bit-equal always passes, so `tolerance == 0.0` demands exactness).
///
/// Returns the first mismatch as a human-readable reason. A manifest with
/// no probes passes vacuously — old checkpoints stay loadable.
pub fn validate_probes(
    candidate: &PredictDdl,
    manifest: &Manifest,
    tolerance: f64,
) -> Result<(), String> {
    validate_probes_with(candidate, manifest, ProbeTolerance::AbsoluteSecs(tolerance))
}

/// [`validate_probes`] with an explicit [`ProbeTolerance`] — the entry
/// point for precision-crossing reloads, where the gate must scale with
/// the prediction's magnitude instead of being a fixed number of seconds.
pub fn validate_probes_with(
    candidate: &PredictDdl,
    manifest: &Manifest,
    tolerance: ProbeTolerance,
) -> Result<(), String> {
    if manifest.probes.is_empty() {
        return Ok(());
    }
    let replayed: std::collections::BTreeMap<String, u64> =
        probe_records(candidate, manifest.probes.len())
            .into_iter()
            .map(|p| (p.key, p.seconds_bits))
            .collect();
    for probe in &manifest.probes {
        let bits = match replayed.get(&probe.key) {
            Some(bits) => *bits,
            None => return Err(format!("probe {:?} not reproducible by candidate", probe.key)),
        };
        if bits == probe.seconds_bits {
            continue;
        }
        let want = probe.seconds();
        let got = f64::from_bits(bits);
        if !tolerance.admits(want, got) {
            return Err(format!(
                "probe {:?} drifted: recorded {:016x}, candidate {:016x}",
                probe.key, probe.seconds_bits, bits
            ));
        }
    }
    Ok(())
}

/// Publishes `system` (plus its current embedding-cache contents and a
/// fresh probe set) as a new registry version. Returns the version number.
///
/// The system's serving precision is stamped into the manifest, and the
/// probe predictions are recorded at that precision — so a bf16 system's
/// golden probes gate a bf16 reload bit-exactly, not within a fudge.
pub fn save_checkpoint(
    registry: &Registry,
    system: &PredictDdl,
    label: &str,
) -> Result<u64, CheckpointError> {
    let mut system_json = Vec::new();
    system
        .save_to(&mut system_json)
        .map_err(|e| match e {
            crate::persist::PersistError::Io(io) => CheckpointError::Registry(io.into()),
            crate::persist::PersistError::Serde(s) => CheckpointError::Serde(s),
        })?;
    let cache_json = serde_json::to_string(&snapshot_cache(&system.cache))?.into_bytes();
    let probes = probe_records(system, DEFAULT_PROBES);
    let artifacts = vec![
        (SYSTEM_ARTIFACT.to_string(), system_json),
        (CACHE_ARTIFACT.to_string(), cache_json),
    ];
    Ok(registry.publish_precision(label, system.precision().as_str(), &artifacts, &probes)?)
}

/// Loads the system stored at `version`, rehydrating its embedding cache
/// from the snapshot artifact and re-applying the manifest's serving
/// precision (weights are always serialized as f32 masters; bf16 panels
/// are re-frozen here). Content hashes are re-verified by the registry on
/// every read, so a torn or bit-flipped artifact surfaces here as an
/// error instead of as a silently wrong model.
pub fn load_checkpoint(registry: &Registry, version: u64) -> Result<PredictDdl, CheckpointError> {
    // Content hashes were verified by read_artifact, so the bytes are the
    // published ones — which were valid UTF-8 JSON by construction.
    let system_json = registry.read_artifact(version, SYSTEM_ARTIFACT)?;
    let mut system: PredictDdl = serde_json::from_str(&String::from_utf8_lossy(&system_json))?;
    // Unknown spellings (a future precision this build predates) fall back
    // to f32 masters rather than failing the load; so does a version whose
    // manifest is unreadable (read_artifact already proved it committed).
    let precision = registry
        .manifest(version)
        .and_then(|m| Precision::parse(&m.precision))
        .unwrap_or(Precision::F32);
    if precision != Precision::F32 {
        system.set_precision(precision);
    }
    match registry.read_artifact(version, CACHE_ARTIFACT) {
        Ok(cache_json) => {
            let snap: CacheSnapshot = serde_json::from_str(&String::from_utf8_lossy(&cache_json))?;
            for entry in snap.entries {
                system.cache.preload(&entry.dataset, entry.fingerprint, entry.embedding);
            }
        }
        // A version written by an external tool may omit the cache
        // snapshot; the system still serves, just cold.
        Err(RegistryError::NoSuchArtifact { .. }) => {}
        Err(e) => return Err(e.into()),
    }
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineTrainer;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn unique_root(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "pddl-core-ckpt-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_round_trip_preserves_predictions_bit_exactly() {
        let system = OfflineTrainer::tiny().train_full();
        let root = unique_root("roundtrip");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let v = save_checkpoint(&registry, &system, "test").unwrap();
        let loaded = load_checkpoint(&registry, v).unwrap();

        for (key, req) in probe_requests(&system, DEFAULT_PROBES) {
            let a = system.predict(&req).unwrap().seconds;
            let b = loaded.predict(&req).unwrap().seconds;
            assert_eq!(a.to_bits(), b.to_bits(), "probe {key} drifted through checkpoint");
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn probes_are_deterministic_and_validate_against_self() {
        let system = OfflineTrainer::tiny().train_full();
        let a = probe_records(&system, DEFAULT_PROBES);
        let b = probe_records(&system, DEFAULT_PROBES);
        assert!(!a.is_empty(), "tiny trainer yields at least one probe");
        assert_eq!(a, b, "probe derivation is deterministic");

        let root = unique_root("validate");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let v = save_checkpoint(&registry, &system, "test").unwrap();
        let manifest = registry.manifest(v).unwrap();
        let loaded = load_checkpoint(&registry, v).unwrap();
        validate_probes(&loaded, &manifest, 0.0).expect("unchanged model passes at zero tolerance");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn tampered_probe_is_rejected() {
        let system = OfflineTrainer::tiny().train_full();
        let root = unique_root("tamper");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let v = save_checkpoint(&registry, &system, "test").unwrap();
        let mut manifest = registry.manifest(v).unwrap();
        let probe = &mut manifest.probes[0];
        probe.seconds_bits = ProbeRecord::from_seconds("x", probe.seconds() * 2.0 + 1.0).seconds_bits;
        let loaded = load_checkpoint(&registry, v).unwrap();
        let err = validate_probes(&loaded, &manifest, 1e-9).unwrap_err();
        assert!(err.contains("drifted"), "got: {err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cache_snapshot_rehydrates_on_load() {
        let system = OfflineTrainer::tiny().train_full();
        // Warm the cache through a real prediction, then checkpoint.
        let (_, req) = probe_requests(&system, 1).pop().expect("one probe");
        system.predict(&req).unwrap();
        assert!(!system.cache.snapshot_entries().is_empty(), "prediction warmed the cache");

        let root = unique_root("cache");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let v = save_checkpoint(&registry, &system, "test").unwrap();
        let loaded = load_checkpoint(&registry, v).unwrap();
        assert_eq!(
            loaded.cache.snapshot_entries(),
            system.cache.snapshot_entries(),
            "warm restart starts with the publisher's cache contents"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn bf16_checkpoint_round_trips_at_published_precision() {
        let mut system = OfflineTrainer::tiny().train_full();
        system.set_precision(Precision::Bf16);
        let root = unique_root("bf16");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let v = save_checkpoint(&registry, &system, "bf16-test").unwrap();
        assert_eq!(registry.manifest(v).unwrap().precision, "bf16");

        // The loader reads the manifest stamp and re-freezes the f32
        // masters to bf16, so predictions — and the probes recorded at
        // publish time — are bit-exact against the publisher.
        let loaded = load_checkpoint(&registry, v).unwrap();
        assert_eq!(loaded.precision(), Precision::Bf16);
        for (key, req) in probe_requests(&system, DEFAULT_PROBES) {
            let a = system.predict(&req).unwrap().seconds;
            let b = loaded.predict(&req).unwrap().seconds;
            assert_eq!(a.to_bits(), b.to_bits(), "probe {key} drifted through bf16 checkpoint");
        }
        let manifest = registry.manifest(v).unwrap();
        validate_probes(&loaded, &manifest, 0.0)
            .expect("bf16 reload of a bf16 publish passes at zero tolerance");
        std::fs::remove_dir_all(&root).ok();
    }
}
