//! The controller-plane wire protocol: every type that crosses the TCP
//! boundary between clients, the router, and controller shards.
//!
//! The protocol is newline-delimited JSON over TCP, frames bounded at
//! [`pddl_cluster::MAX_FRAME_BYTES`]. This module owns the *shapes* —
//! request/response envelopes, control ops, typed error lines — while
//! [`crate::controller`] owns the serving loop that speaks them and
//! `pddl-router` forwards them between processes. `PROTOCOL.md` at the
//! repository root is the operator-facing reference: it documents every
//! op in [`WIRE_OPS`] with a captured transcript, and a grep-driven
//! doc-coverage gate (`scripts/offline_check.sh gate-protocol-docs`)
//! fails the build when an op listed here is missing from that file.
//!
//! ## Frame taxonomy
//!
//! A request line is classified by [`parse_frame`] into one of:
//!
//! * a bare [`PredictionRequest`] object (`predict`);
//! * a JSON array of requests (`predict_batch`);
//! * a [`RequestEnvelope`] with a `(client, id)` identity and optional
//!   [`TraceHeader`] (`predict_envelope` — the idempotent-retry path);
//! * a control op: `{"op":"stats"}`, `{"op":"trace"}`, `{"op":"metrics"}`
//!   or `{"op":"route_table"}`, answered inline by the connection reader
//!   so they stay available during overload.
//!
//! ## Typed error lines
//!
//! Two error replies are typed so resilient clients can classify them
//! without string matching: the overload shed
//! (`{"error":"overloaded","retry_after_ms":…,"reason":…}`, rendered by
//! [`overload_line`] and recognised by [`overload_from_line`]) and the
//! router's re-route signal
//! (`{"error":"shard_moved","epoch":…,"retry_after_ms":…}`, rendered by
//! [`shard_moved_line`] and recognised by [`shard_moved_from_line`]).
//! Both map onto transient [`std::io::Error`]s that
//! [`pddl_cluster::retry::is_transient`] approves for retry.

use crate::request::PredictionRequest;
use pddl_cluster::retry::{
    overloaded_error_with_reason, shard_moved_error, ShedReason,
};
use pddl_telemetry::{push_json_string, JsonValue, TraceContext};
use serde::{Deserialize, Serialize};

/// Every operation the controller-plane wire protocol carries, in the
/// order PROTOCOL.md documents them. The first three are the prediction
/// frame shapes (no `"op"` tag on the wire — they are distinguished
/// structurally); the middle five are the `{"op":…}` control frames; the
/// last three are the Cluster Resource Collector's registration protocol
/// (see [`pddl_cluster::protocol`]). The doc-coverage gate in
/// `scripts/offline_check.sh` greps this list and requires a
/// ``### `<op>` `` heading in PROTOCOL.md for each entry.
pub const WIRE_OPS: &[&str] = &[
    "predict",
    "predict_batch",
    "predict_envelope",
    "stats",
    "trace",
    "metrics",
    "route_table",
    "reload",
    "observe",
    "register",
    "heartbeat",
    "leave",
];

/// Wire response.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum WireResponse {
    /// Successful prediction.
    Ok {
        /// The prediction payload.
        prediction: crate::request::Prediction,
    },
    /// Rejected or failed request.
    Err {
        /// Why the request failed.
        error: crate::request::RequestError,
    },
}

/// A prediction request wrapped with a client-chosen identity, enabling
/// idempotent retry: the controller caches the response under
/// `(client, id)` and serves it again verbatim if the same identity
/// reappears (e.g. after the original reply was lost in transit).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client session token (unique per [`crate::ControllerClient`]
    /// instance).
    pub client: u64,
    /// Request number within the session.
    pub id: u64,
    /// Client-minted trace context. When present the request is always
    /// traced (sampling applies only to context-free requests) and the
    /// same ids are echoed on the response. Absent on the wire for
    /// clients that predate tracing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceHeader>,
    /// The wrapped request.
    pub req: PredictionRequest,
}

/// The response to a [`RequestEnvelope`], echoing its identity so the
/// client can match replies to requests across retries and reject frames
/// corrupted in transit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Echo of the request's client token.
    pub client: u64,
    /// Echo of the request's id.
    pub id: u64,
    /// Echo of the request's trace context, if it carried one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceHeader>,
    /// Id of the controller shard that computed this response. Absent
    /// from unsharded controllers (no `--shard-id`) and from responses
    /// predating the fleet protocol; surfaced by
    /// [`crate::ControllerClient::last_shard`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard: Option<u64>,
    /// The actual response.
    pub resp: WireResponse,
}

/// Wire form of a [`TraceContext`], carried as the optional `trace` field
/// of the request/response envelopes. Ids stay plain u64s here —
/// serde_json round-trips them exactly; only the hand-rolled trace dump
/// (parsed with the in-tree f64-backed [`pddl_telemetry::JsonValue`])
/// needs hex strings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Logical request id, stable across retries and reconnects.
    pub trace_id: u64,
    /// The client's root span id.
    pub span_id: u64,
    /// Enclosing span id (0 when the client's span is the root).
    pub parent_id: u64,
}

impl From<TraceContext> for TraceHeader {
    fn from(c: TraceContext) -> TraceHeader {
        TraceHeader { trace_id: c.trace_id, span_id: c.span_id, parent_id: c.parent_id }
    }
}

impl From<TraceHeader> for TraceContext {
    fn from(h: TraceHeader) -> TraceContext {
        TraceContext { trace_id: h.trace_id, span_id: h.span_id, parent_id: h.parent_id }
    }
}

/// Control operations multiplexed onto the request stream. Tried before
/// [`PredictionRequest`] parsing; the `op` tag cannot collide with a
/// prediction request's fields.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
#[allow(dead_code)] // constructed only through the derived Deserialize
enum ControlOp {
    /// Return a JSON snapshot of the telemetry registry.
    Stats,
    /// Return the flight recorder's retained traces.
    Trace,
    /// Return the registry as Prometheus text exposition.
    Metrics,
    /// Return the serving plane's route table (see [`RouteTable`]). A
    /// bare controller answers with its one-shard identity table; the
    /// router answers with the live fleet membership.
    RouteTable,
    /// Hot-swap the serving model from the checkpoint registry (to
    /// `version`, or the registry's latest when absent). Success answers
    /// with a [`ReloadReply`] line; a failed validation probe (or a
    /// controller without a registry) answers with the typed
    /// [`reload_rejected_line`] and keeps the old model live.
    Reload {
        /// Target registry version; `None` selects the latest.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        version: Option<u64>,
    },
    /// Feed one completed job back into the continual-refit loop: the
    /// workload/cluster it ran as (`req`) and the wall-clock seconds it
    /// actually took. The controller re-predicts against the live model,
    /// folds the residual into the observation sink's online calibration
    /// and drift detector, and answers with an [`ObserveReply`] line (or
    /// the typed [`observe_rejected_line`] if the request cannot be
    /// predicted).
    Observe {
        /// The workload + cluster the observation was measured on.
        req: Box<PredictionRequest>,
        /// Measured training time, seconds. Must be positive and finite.
        actual_secs: f64,
    },
}

/// One classified request frame (see [`parse_frame`]).
#[derive(Clone, Debug)]
pub enum ParsedFrame {
    /// `{"op":"stats"}` — telemetry snapshot request.
    Stats,
    /// `{"op":"trace"}` — retained-trace dump request.
    Trace,
    /// `{"op":"metrics"}` — Prometheus exposition request.
    Metrics,
    /// `{"op":"route_table"}` — serving-plane membership request.
    RouteTable,
    /// `{"op":"reload"}` — hot-swap to a checkpoint-registry version
    /// (latest when `version` is absent).
    Reload {
        /// Target registry version; `None` selects the latest.
        version: Option<u64>,
    },
    /// `{"op":"observe"}` — feed a completed job's measured runtime back
    /// into the continual-refit loop.
    Observe {
        /// The workload + cluster the observation was measured on.
        req: Box<PredictionRequest>,
        /// Measured training time, seconds.
        actual_secs: f64,
    },
    /// A JSON array of prediction requests (a batch).
    Batch(Vec<PredictionRequest>),
    /// An id-wrapped single request (idempotent-retry path).
    Enveloped(RequestEnvelope),
    /// A bare single request.
    Single(Box<PredictionRequest>),
}

/// Classifies one request line into a [`ParsedFrame`]. This is the
/// controller's entire peer-facing parser: it must return `Err` — never
/// panic — for arbitrary bytes (enforced by `tests/wire_fuzz.rs`).
pub fn parse_frame(line: &str) -> Result<ParsedFrame, String> {
    if let Ok(op) = serde_json::from_str::<ControlOp>(line) {
        return Ok(match op {
            ControlOp::Stats => ParsedFrame::Stats,
            ControlOp::Trace => ParsedFrame::Trace,
            ControlOp::Metrics => ParsedFrame::Metrics,
            ControlOp::RouteTable => ParsedFrame::RouteTable,
            ControlOp::Reload { version } => ParsedFrame::Reload { version },
            ControlOp::Observe { req, actual_secs } => {
                ParsedFrame::Observe { req, actual_secs }
            }
        });
    }
    if line.trim_start().starts_with('[') {
        return match serde_json::from_str::<Vec<PredictionRequest>>(line) {
            Ok(reqs) => Ok(ParsedFrame::Batch(reqs)),
            Err(e) => Err(format!("malformed batch request: {e}")),
        };
    }
    if let Ok(env) = serde_json::from_str::<RequestEnvelope>(line) {
        return Ok(ParsedFrame::Enveloped(env));
    }
    match serde_json::from_str::<PredictionRequest>(line) {
        Ok(req) => Ok(ParsedFrame::Single(Box::new(req))),
        Err(e) => Err(format!("malformed request: {e}")),
    }
}

/// Renders the typed overload reply. Hand-rolled (no serde) so the exact
/// wire shape is fixed and the in-process benchmark path stays free of
/// JSON machinery; `reason` is one of `queue_full`, `deadline`,
/// `connection_limit`, `draining`.
pub fn overload_line(retry_after_ms: u64, reason: &str) -> String {
    format!("{{\"error\":\"overloaded\",\"retry_after_ms\":{retry_after_ms},\"reason\":\"{reason}\"}}")
}

/// Classifies a response line as a typed overload reply, mapping it to
/// the transient [`pddl_cluster::retry::Overloaded`] error the resilient
/// retry loop understands.
pub fn overload_from_line(resp: &str) -> Option<std::io::Error> {
    let trimmed = resp.trim_end();
    // Fast path: every overload reply carries this exact key/value.
    if !trimmed.contains("\"error\":\"overloaded\"") {
        return None;
    }
    let doc = JsonValue::parse(trimmed).ok()?;
    if doc.get("error")?.as_str()? != "overloaded" {
        return None;
    }
    let ms = doc.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap_or(0);
    let reason = doc
        .get("reason")
        .and_then(|v| v.as_str())
        .map(ShedReason::parse)
        .unwrap_or(ShedReason::Unknown);
    Some(overloaded_error_with_reason(ms, reason))
}

/// Renders the typed re-route reply the router sends when the shard a
/// request was routed to died before answering. `epoch` is the membership
/// epoch *after* the death was absorbed, so a client that refreshes its
/// route table can tell whether it already saw the new topology.
pub fn shard_moved_line(epoch: u64, retry_after_ms: u64) -> String {
    format!("{{\"error\":\"shard_moved\",\"epoch\":{epoch},\"retry_after_ms\":{retry_after_ms}}}")
}

/// Classifies a response line as a typed `shard_moved` reply, mapping it
/// to the transient [`pddl_cluster::retry::ShardMoved`] error. Resilient
/// clients react by refreshing their route table and retrying — the
/// request itself was *not* executed twice (the reply is only sent when
/// the routed shard died without answering, and the dedup cache on the
/// replacement shard absorbs any replay the shard did answer).
pub fn shard_moved_from_line(resp: &str) -> Option<std::io::Error> {
    let trimmed = resp.trim_end();
    if !trimmed.contains("\"error\":\"shard_moved\"") {
        return None;
    }
    let doc = JsonValue::parse(trimmed).ok()?;
    if doc.get("error")?.as_str()? != "shard_moved" {
        return None;
    }
    let epoch = doc.get("epoch").and_then(|v| v.as_u64()).unwrap_or(0);
    let ms = doc.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap_or(0);
    Some(shard_moved_error(epoch, ms))
}

/// Reply to a successful `{"op":"reload"}`: the version now live, the
/// version it replaced (equal when the target was already live — the
/// reload was a no-op), and the live slot's swap epoch.
///
/// Rendered and parsed by hand (no serde at runtime) like the other
/// control-plane lines, so the CLI and offline harness can speak it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReloadReply {
    /// Registry version now live.
    pub version: u64,
    /// Registry version that was live before the swap.
    pub previous: u64,
    /// The live slot's epoch after the swap (increments once per swap;
    /// unchanged when `version == previous`).
    pub epoch: u64,
}

impl ReloadReply {
    /// Renders the `{"status":"reload",…}` response line.
    pub fn to_line(&self) -> String {
        format!(
            "{{\"status\":\"reload\",\"version\":{},\"previous\":{},\"epoch\":{}}}",
            self.version, self.previous, self.epoch
        )
    }

    /// Parses a `{"status":"reload",…}` response line.
    pub fn from_line(line: &str) -> Result<ReloadReply, String> {
        let doc = JsonValue::parse(line.trim_end()).map_err(|e| e.to_string())?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("reload") {
            return Err("response is not a reload payload".to_string());
        }
        let field = |k: &str| {
            doc.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("reload reply missing '{k}'"))
        };
        Ok(ReloadReply {
            version: field("version")?,
            previous: field("previous")?,
            epoch: field("epoch")?,
        })
    }
}

/// Renders the typed rejection reply for a `{"op":"reload"}` that did not
/// swap: the candidate failed to load or failed its validation probe, the
/// registry is empty, or the controller has no registry at all. The old
/// model stays live — rejection is a *rollback*, not an outage — so the
/// reply is terminal for the attempt, not transient like the overload
/// shed.
pub fn reload_rejected_line(reason: &str) -> String {
    let mut out = String::with_capacity(40 + reason.len());
    out.push_str("{\"error\":\"reload_rejected\",\"reason\":");
    push_json_string(&mut out, reason);
    out.push('}');
    out
}

/// Classifies a response line as a typed `reload_rejected` reply,
/// returning the rejection reason.
pub fn reload_rejected_from_line(resp: &str) -> Option<String> {
    let trimmed = resp.trim_end();
    if !trimmed.contains("\"error\":\"reload_rejected\"") {
        return None;
    }
    let doc = JsonValue::parse(trimmed).ok()?;
    if doc.get("error")?.as_str()? != "reload_rejected" {
        return None;
    }
    Some(
        doc.get("reason")
            .and_then(|v| v.as_str())
            .unwrap_or("unknown")
            .to_string(),
    )
}

/// Reply to a successful `{"op":"observe"}`: the sink's lifetime
/// observation count, how many drift events have fired, the standardized
/// residual of *this* observation against the live model, and whether it
/// tripped the drift detector.
///
/// Rendered and parsed by hand (no serde at runtime) like the other
/// control-plane lines, so the CLI and offline harness can speak it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObserveReply {
    /// Observations accepted by this controller's sink (lifetime).
    pub observations: u64,
    /// Drift events fired by the sink's detector (lifetime).
    pub drift_events: u64,
    /// This observation's log-space residual, standardized against the
    /// sink's healthy-noise scale estimate.
    pub residual_z: f64,
    /// True when this observation fired the drift detector.
    pub drifted: bool,
}

impl ObserveReply {
    /// Renders the `{"status":"observe",…}` response line. The residual
    /// uses the shortest round-trip f64 form, so `from_line` recovers the
    /// exact value.
    pub fn to_line(&self) -> String {
        format!(
            "{{\"status\":\"observe\",\"observations\":{},\"drift_events\":{},\"residual_z\":{:?},\"drifted\":{}}}",
            self.observations, self.drift_events, self.residual_z, self.drifted
        )
    }

    /// Parses a `{"status":"observe",…}` response line.
    pub fn from_line(line: &str) -> Result<ObserveReply, String> {
        let doc = JsonValue::parse(line.trim_end()).map_err(|e| e.to_string())?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("observe") {
            return Err("response is not an observe payload".to_string());
        }
        let int = |k: &str| {
            doc.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("observe reply missing '{k}'"))
        };
        Ok(ObserveReply {
            observations: int("observations")?,
            drift_events: int("drift_events")?,
            residual_z: doc
                .get("residual_z")
                .and_then(|v| v.as_f64())
                .ok_or("observe reply missing 'residual_z'")?,
            drifted: doc
                .get("drifted")
                .and_then(|v| v.as_bool())
                .ok_or("observe reply missing 'drifted'")?,
        })
    }
}

/// Renders the typed rejection reply for an `{"op":"observe"}` the
/// controller could not absorb: the measured runtime was non-positive or
/// non-finite, or the live model could not predict the request (unknown
/// dataset, infeasible cluster). The observation is dropped; the model is
/// unchanged. Terminal for the attempt, not transient.
pub fn observe_rejected_line(reason: &str) -> String {
    let mut out = String::with_capacity(42 + reason.len());
    out.push_str("{\"error\":\"observe_rejected\",\"reason\":");
    push_json_string(&mut out, reason);
    out.push('}');
    out
}

/// Classifies a response line as a typed `observe_rejected` reply,
/// returning the rejection reason.
pub fn observe_rejected_from_line(resp: &str) -> Option<String> {
    let trimmed = resp.trim_end();
    if !trimmed.contains("\"error\":\"observe_rejected\"") {
        return None;
    }
    let doc = JsonValue::parse(trimmed).ok()?;
    if doc.get("error")?.as_str()? != "observe_rejected" {
        return None;
    }
    Some(
        doc.get("reason")
            .and_then(|v| v.as_str())
            .unwrap_or("unknown")
            .to_string(),
    )
}

/// One shard entry in a [`RouteTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteShard {
    /// Stable shard id — what responses echo in their `shard` field.
    pub id: u64,
    /// The shard's listener address, `host:port`.
    pub addr: String,
    /// False once the health prober has marked the shard dead; unhealthy
    /// shards stay listed (so operators see them) but own no ring keys.
    pub healthy: bool,
}

/// The serving plane's membership, answered for `{"op":"route_table"}`.
///
/// Rendered and parsed by hand (no serde at runtime) so the route table
/// stays introspectable from the offline benchmark harness and the CLI.
/// The `epoch` increments on every membership change (shard added,
/// removed, or marked unhealthy); in-flight requests finish against the
/// shard they were routed to under their admission epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTable {
    /// Membership epoch — bumped on every shard add/remove/health flip.
    pub epoch: u64,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: u32,
    /// Set when a single controller shard answered for itself (its own
    /// id); `None` when the router answered for the whole fleet.
    pub shard: Option<u64>,
    /// Every known shard, healthy or not, in id order.
    pub shards: Vec<RouteShard>,
}

impl RouteTable {
    /// Renders the `{"status":"route_table",…}` response line.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.shards.len() * 48);
        out.push_str("{\"status\":\"route_table\",\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"vnodes\":");
        out.push_str(&self.vnodes.to_string());
        if let Some(shard) = self.shard {
            out.push_str(",\"shard\":");
            out.push_str(&shard.to_string());
        }
        out.push_str(",\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&s.id.to_string());
            out.push_str(",\"addr\":");
            push_json_string(&mut out, &s.addr);
            out.push_str(",\"healthy\":");
            out.push_str(if s.healthy { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a `{"status":"route_table",…}` response line.
    pub fn from_line(line: &str) -> Result<RouteTable, String> {
        let doc = JsonValue::parse(line.trim_end()).map_err(|e| e.to_string())?;
        if doc.get("status").and_then(|s| s.as_str()) != Some("route_table") {
            return Err("response is not a route_table payload".to_string());
        }
        let epoch = doc
            .get("epoch")
            .and_then(|v| v.as_u64())
            .ok_or("route_table missing 'epoch'")?;
        let vnodes = doc
            .get("vnodes")
            .and_then(|v| v.as_u64())
            .ok_or("route_table missing 'vnodes'")? as u32;
        let shard = doc.get("shard").and_then(|v| v.as_u64());
        let mut shards = Vec::new();
        let list = doc
            .get("shards")
            .and_then(|v| v.as_array())
            .ok_or("route_table missing 'shards'")?;
        for entry in list {
            let id = entry
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or("route_table shard missing 'id'")?;
            let addr = entry
                .get("addr")
                .and_then(|v| v.as_str())
                .ok_or("route_table shard missing 'addr'")?
                .to_string();
            let healthy = entry
                .get("healthy")
                .and_then(|v| v.as_bool())
                .unwrap_or(true);
            shards.push(RouteShard { id, addr, healthy });
        }
        Ok(RouteTable { epoch, vnodes, shard, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_table_op_parses() {
        assert!(matches!(
            parse_frame("{\"op\":\"route_table\"}"),
            Ok(ParsedFrame::RouteTable)
        ));
    }

    #[test]
    fn route_table_line_round_trips() {
        let table = RouteTable {
            epoch: 7,
            vnodes: 64,
            shard: Some(2),
            shards: vec![
                RouteShard { id: 0, addr: "127.0.0.1:7071".into(), healthy: true },
                RouteShard { id: 2, addr: "127.0.0.1:7072".into(), healthy: false },
            ],
        };
        let line = table.to_line();
        assert_eq!(RouteTable::from_line(&line).unwrap(), table);

        let fleet = RouteTable { shard: None, ..table };
        assert_eq!(RouteTable::from_line(&fleet.to_line()).unwrap(), fleet);
    }

    #[test]
    fn shard_moved_line_classifies() {
        let line = shard_moved_line(9, 15);
        let err = shard_moved_from_line(&line).expect("typed shard_moved");
        assert!(pddl_cluster::retry::is_transient(&err));
        assert_eq!(pddl_cluster::retry::shard_moved_epoch(&err), Some(9));
        assert!(shard_moved_from_line("{\"status\":\"ok\"}").is_none());
        assert!(overload_from_line(&line).is_none());
    }

    #[test]
    fn overload_line_classifies() {
        let line = overload_line(25, "queue_full");
        let err = overload_from_line(&line).expect("typed overload");
        assert!(pddl_cluster::retry::is_transient(&err));
        assert!(shard_moved_from_line(&line).is_none());
    }

    #[test]
    fn reload_op_parses_with_and_without_version() {
        assert!(matches!(
            parse_frame("{\"op\":\"reload\"}"),
            Ok(ParsedFrame::Reload { version: None })
        ));
        assert!(matches!(
            parse_frame("{\"op\":\"reload\",\"version\":7}"),
            Ok(ParsedFrame::Reload { version: Some(7) })
        ));
    }

    #[test]
    fn reload_reply_round_trips() {
        let reply = ReloadReply { version: 4, previous: 3, epoch: 9 };
        assert_eq!(ReloadReply::from_line(&reply.to_line()).unwrap(), reply);
        assert!(ReloadReply::from_line("{\"status\":\"ok\"}").is_err());
    }

    #[test]
    fn reload_rejected_line_classifies() {
        let line = reload_rejected_line("probe_mismatch: \"w0\" drifted");
        assert_eq!(
            reload_rejected_from_line(&line).as_deref(),
            Some("probe_mismatch: \"w0\" drifted")
        );
        assert!(reload_rejected_from_line("{\"status\":\"reload\"}").is_none());
        assert!(overload_from_line(&line).is_none());
        assert!(shard_moved_from_line(&line).is_none());
    }

    #[test]
    fn observe_op_parses() {
        let req = PredictionRequest::zoo(
            pddl_ddlsim::Workload::standard("resnet18", "cifar10"),
            pddl_cluster::ClusterState::homogeneous(pddl_cluster::ServerClass::GpuP100, 4),
        );
        let line = format!(
            "{{\"op\":\"observe\",\"actual_secs\":123.5,\"req\":{}}}",
            serde_json::to_string(&req).unwrap()
        );
        match parse_frame(&line) {
            Ok(ParsedFrame::Observe { req, actual_secs }) => {
                assert_eq!(req.dataset, "cifar10");
                assert_eq!(actual_secs, 123.5);
            }
            other => panic!("expected observe frame, got {other:?}"),
        }
    }

    #[test]
    fn observe_reply_round_trips() {
        let reply = ObserveReply {
            observations: 41,
            drift_events: 2,
            residual_z: -0.037_251,
            drifted: false,
        };
        assert_eq!(ObserveReply::from_line(&reply.to_line()).unwrap(), reply);
        assert!(ObserveReply::from_line("{\"status\":\"reload\"}").is_err());
    }

    #[test]
    fn observe_rejected_line_classifies() {
        let line = observe_rejected_line("actual_secs must be positive");
        assert_eq!(
            observe_rejected_from_line(&line).as_deref(),
            Some("actual_secs must be positive")
        );
        assert!(observe_rejected_from_line("{\"status\":\"observe\"}").is_none());
        assert!(reload_rejected_from_line(&line).is_none());
        assert!(overload_from_line(&line).is_none());
    }

    #[test]
    fn wire_ops_list_is_unique_and_nonempty() {
        assert!(!WIRE_OPS.is_empty());
        let mut seen = std::collections::HashSet::new();
        for op in WIRE_OPS {
            assert!(seen.insert(op), "duplicate wire op {op}");
        }
    }
}
